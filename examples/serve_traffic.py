#!/usr/bin/env python
"""Serving a trained EDSR under diurnal traffic, with a mid-run failure.

Drives the :mod:`repro.serve` simulator through a day-shaped (diurnal)
arrival trace of mixed SR requests while one replica dies mid-run.  The
heartbeat watchdog declares the failure, every orphaned request fails
over through the router, and the autoscaler grows the pool back —
keeping tail latency within the configured SLO end to end:

1. a seeded diurnal workload ramps from trough to peak and back;
2. replica 0 is killed at t=40 s via an ordinary ``FaultPlan``;
3. the run completes with every request accounted for (completed or
   shed — none silently dropped), p99 within the SLO, and the report
   itemizing cold starts, detections, and failover retries.

Run:  python examples/serve_traffic.py [--duration 90] [--seed 11]
"""

from __future__ import annotations

import argparse

from repro.faults import FaultPlan, RankFailure
from repro.serve import (
    AutoscalerConfig,
    ServeScenario,
    SLOConfig,
    WorkloadConfig,
    simulate_serve,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--fail-at", type=float, default=40.0)
    args = parser.parse_args()

    scenario = ServeScenario(
        name="diurnal-demo",
        routing="jsq",
        initial_replicas=5,
        workload=WorkloadConfig(kind="diurnal", rate_rps=18.0),
        autoscaler=AutoscalerConfig(
            max_replicas=8, scale_up_at=2.0, cooldown_s=2.0
        ),
        slo=SLOConfig(target_latency_s=1.0),
    )
    plan = FaultPlan(faults=(RankFailure(rank=0, time=args.fail_at),))

    report = simulate_serve(
        scenario,
        duration_s=args.duration,
        seed=args.seed,
        fault_plan=plan,
    )
    s = report.summary

    print(
        f"== {scenario.name} — {scenario.routing} routing, "
        f"replica 0 killed at t={args.fail_at:g} s =="
    )
    for line in report.lines():
        print(line)

    # the three claims this example demonstrates
    assert s["arrived"] == s["completed"] + s["shed"], "requests dropped"
    assert s["detections"] >= 1 and s["retried_requests"] >= 1, (
        "the failure was never detected/failed over"
    )
    p99 = s["latency_ms"]["p99"]
    assert p99 <= s["slo_target_ms"], (
        f"p99 {p99:.1f} ms breached the {s['slo_target_ms']:.0f} ms SLO"
    )
    print(
        f"\nall {s['arrived']} requests accounted for; failure detected and "
        f"failed over; p99 {p99:.1f} ms within the "
        f"{s['slo_target_ms']:.0f} ms SLO"
    )


if __name__ == "__main__":
    main()
