#!/usr/bin/env python
"""Distributed EDSR training following the paper's §III-A recipe, for real.

Builds a simulated 1-node / 4-GPU Lassen world under the MPI-Opt scenario,
replicates a tiny EDSR across the ranks, and trains with the full Horovod
pipeline: parameter broadcast, Tensor-Fusion allreduce of gradients, LR
scaling.  Verifies the data-parallel invariant (replicas stay bit-identical)
and reports both the real loss curve and the simulated step timings.

Run:  python examples/train_edsr_distributed.py [--ranks 4] [--steps 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import MPI_OPT, scenario_by_name
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, WorldSpec
from repro.sim import Environment
from repro.trainer import DistributedTrainer, evaluate_sr


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--scenario", type=str, default="MPI-Opt")
    parser.add_argument("--batch", type=int, default=2)
    args = parser.parse_args()

    scenario = scenario_by_name(args.scenario)
    nodes = max(1, (args.ranks + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(num_ranks=args.ranks, policy=scenario.policy,
                     config=scenario.mv2)
    world = MpiWorld(cluster, spec)
    comm = world.communicator()
    engine = HorovodEngine(comm, HorovodConfig(cycle_time_s=2e-3))
    print(f"world: {args.ranks} ranks on {nodes} node(s), scenario {scenario.name}")
    print(f"  MV2 config: {scenario.mv2.describe()}")

    source = SyntheticDiv2k(height=32, width=32, seed=11)
    dataset = SRDataset(source, split="train",
                        degradation=DegradationConfig(scale=2))

    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(100 + rank)),
        engine,
        dataset,
        batch_per_rank=args.batch,
        lr_patch=8,
        base_lr=5e-4,
    )
    print(f"replicas in sync after broadcast: {trainer.replicas_in_sync()}")
    result = trainer.train(steps=args.steps)
    print(
        f"trained {result.steps} steps: loss {result.losses[0]:.4f} -> "
        f"{result.final_loss:.4f}"
    )
    print(f"replicas still in sync: {trainer.replicas_in_sync()}")
    mean_sim_step = float(np.mean(result.simulated_step_times))
    print(f"mean simulated step time: {mean_sim_step * 1e3:.1f} ms "
          f"(comm via {scenario.backend} backend)")

    val = SRDataset(source, split="val", degradation=DegradationConfig(scale=2))
    metrics = evaluate_sr(trainer.models[0], val, max_images=3)
    print(f"validation: PSNR {metrics['psnr']:.2f} dB, SSIM {metrics['ssim']:.4f}")


if __name__ == "__main__":
    main()
