#!/usr/bin/env python
"""Reproduce the hvprof workflow of the paper's §III-B / Fig. 14 / Table I.

Runs 100 training steps of EDSR on 4 simulated GPUs under the default MPI
configuration and under MPI-Opt, with hvprof attached; prints the per-bin
profile of each run and the Table I comparison, then the §III-B diagnosis
produced by the automated optimization pipeline.

Run:  python examples/profile_allreduce.py [--steps 100] [--gpus 4]
"""

from __future__ import annotations

import argparse

from repro.core import MPI_DEFAULT, MPI_OPT, OptimizationPipeline, ScalingStudy, StudyConfig
from repro.profiling import Hvprof, comparison_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument("--gpus", type=int, default=4)
    args = parser.parse_args()

    config = StudyConfig(measure_steps=args.steps)
    profiles = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        print(f"profiling {args.steps} steps under {scenario.name} ...")
        hv = Hvprof()
        point = ScalingStudy(scenario, config).run_point(args.gpus, hvprof=hv)
        profiles[scenario.name] = hv
        print(hv.report(title=f"hvprof allreduce profile — {scenario.name} "
                              f"({args.gpus} GPUs, {args.steps} steps)"))
        print(f"  throughput: {point.images_per_second:.1f} img/s\n")

    print(comparison_table(profiles["MPI"], profiles["MPI-Opt"]))

    print("\nAutomated three-phase pipeline (paper §III):")
    report = OptimizationPipeline(num_gpus=args.gpus, steps=max(3, args.steps // 10)).run()
    for line in report.diagnosis:
        print(f"  diagnosis: {line}")
    for line in report.recommendations:
        print(f"  recommend: {line}")
    print(f"  measured throughput gain: {report.throughput_gain_pct:.1f}%")


if __name__ == "__main__":
    main()
