#!/usr/bin/env python
"""Local-SGD vs synchronous SGD: accuracy check on a real EDSR run.

Trains two identical 4-rank EDSR worlds on the same synthetic DIV2K data
— one fully synchronous (gradient allreduce every step), one local-SGD
with parameter averaging every H steps — and compares PSNR.  Local-SGD
cuts the bytes on the wire by ~H x; this script verifies the accuracy
side of that trade on a short seeded run and exits non-zero if the gap
exceeds the tolerance, so CI can run it as a functional smoke test.

Run:  python examples/local_sgd_psnr.py [--steps 50] [--h 4]
      [--max-delta 1.0]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import scenario_by_name
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, WorldSpec
from repro.sim import Environment
from repro.trainer import DistributedTrainer, evaluate_sr


def train_once(local_sgd_h: int, steps: int, ranks: int) -> dict:
    scenario = scenario_by_name("MPI-Opt")
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, (ranks + 3) // 4))
    spec = WorldSpec(num_ranks=ranks, policy=scenario.policy,
                     config=scenario.mv2)
    world = MpiWorld(cluster, spec)
    engine = HorovodEngine(world.communicator(),
                           HorovodConfig(cycle_time_s=2e-3))
    dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                        split="train",
                        degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
        engine, dataset, batch_per_rank=1, lr_patch=8,
        local_sgd_h=local_sgd_h,
    )
    result = trainer.train(steps)
    metrics = evaluate_sr(trainer.models[0], dataset, max_images=4)
    return {
        "psnr": metrics["psnr"],
        "loss": result.final_loss,
        "in_sync": trainer.replicas_in_sync(),
        "sim_img_s": result.simulated_images_per_second,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--h", type=int, default=4,
                        help="local steps between parameter averagings")
    parser.add_argument("--max-delta", type=float, default=1.0,
                        help="largest tolerated PSNR gap vs sync SGD (dB)")
    args = parser.parse_args()
    # end on a period boundary so both runs finish with synced replicas
    steps = args.steps - args.steps % args.h

    sync = train_once(1, steps, args.ranks)
    local = train_once(args.h, steps, args.ranks)
    delta = sync["psnr"] - local["psnr"]
    print(f"{steps} steps x {args.ranks} ranks (H={args.h})")
    print(f"  sync  SGD: psnr={sync['psnr']:.4f} dB  loss={sync['loss']:.5f}  "
          f"sim={sync['sim_img_s']:.1f} img/s")
    print(f"  local SGD: psnr={local['psnr']:.4f} dB  loss={local['loss']:.5f}  "
          f"sim={local['sim_img_s']:.1f} img/s")
    print(f"  psnr delta: {delta:+.4f} dB (tolerance {args.max_delta} dB)")

    if not local["in_sync"]:
        print("FAIL: local-SGD replicas diverged at a period boundary")
        return 1
    if abs(delta) > args.max_delta:
        print(f"FAIL: PSNR gap {delta:+.4f} dB exceeds {args.max_delta} dB")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
