#!/usr/bin/env python
"""Reproduce the single-GPU hyperparameter study (paper §V / Fig. 9).

Sweeps the training batch size for paper-scale EDSR on one simulated V100:
throughput rises then saturates, device memory grows linearly, and the
sweep ends at the out-of-memory boundary.  Also shows how the Fig. 6a
"overhead kernel" contexts (undisciplined visibility) shrink the usable
batch range — the memory side of the paper's visibility conflict.

Run:  python examples/batch_size_sweep.py [--model edsr-paper]
"""

from __future__ import annotations

import argparse

from repro.hardware import V100_16GB
from repro.models import get_model_cost
from repro.models.costing import ThroughputModel, TrainingMemoryModel
from repro.utils.tables import TextTable
from repro.utils.units import GIB, format_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", type=str, default="edsr-paper")
    args = parser.parse_args()

    cost = get_model_cost(args.model)
    throughput = ThroughputModel(cost, V100_16GB)
    memory = TrainingMemoryModel(cost)
    hbm = V100_16GB.memory_bytes

    # Fig. 6a: every co-located process leaves a context on this GPU
    overhead_contexts = 4 * V100_16GB.context_overhead_bytes
    clean = hbm - V100_16GB.context_overhead_bytes
    crowded = hbm - overhead_contexts

    table = TextTable(
        ["Batch", "img/s", "step (ms)", "memory", "fits (1 ctx)", "fits (4 ctx)"],
        title=f"Single-V100 batch-size sweep — {cost.name} (paper Fig. 9)",
    )
    batch = 1
    while True:
        required = memory.bytes_required(batch)
        fits_clean = required <= clean
        fits_crowded = required <= crowded
        table.add_row(
            batch,
            f"{throughput.images_per_second(batch):.2f}",
            f"{throughput.step_time(batch) * 1e3:.1f}",
            format_bytes(required),
            "yes" if fits_clean else "OOM",
            "yes" if fits_crowded else "OOM",
        )
        if not fits_clean:
            break
        batch *= 2
    print(table.render())
    print(
        f"\nmax batch: {memory.max_batch(clean)} with one context, "
        f"{memory.max_batch(crowded)} when 4 processes leave overhead kernels "
        f"({format_bytes(overhead_contexts)} of HBM lost — paper Fig. 6a)"
    )
    print(
        "the paper selects batch 4: throughput is already near the saturation "
        "knee while preserving convergence speed (paper §V)"
    )


if __name__ == "__main__":
    main()
