#!/usr/bin/env python
"""Reproduce the paper's Horovod tuning step (§II-D).

"For all evaluations in this paper, the HOROVOD_FUSION_THRESHOLD and
HOROVOD_CYCLE_TIME are carefully tuned at each scale to maximize training
throughput" — this example runs that grid search for a chosen scenario and
GPU count and prints the full grid plus the winner.

Run:  python examples/tune_horovod.py [--gpus 16] [--scenario MPI-Opt]
"""

from __future__ import annotations

import argparse

from repro.core import HorovodTuner, StudyConfig, scenario_by_name
from repro.utils.tables import TextTable
from repro.utils.units import MIB, format_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=16)
    parser.add_argument("--scenario", type=str, default="MPI-Opt")
    parser.add_argument(
        "--thresholds", type=str, default="32,64,128",
        help="fusion thresholds in MiB, comma-separated",
    )
    parser.add_argument(
        "--cycles", type=str, default="3.5,10,25,55",
        help="cycle times in ms, comma-separated",
    )
    args = parser.parse_args()

    scenario = scenario_by_name(args.scenario)
    thresholds = tuple(int(float(t)) * MIB for t in args.thresholds.split(","))
    cycles = tuple(float(c) * 1e-3 for c in args.cycles.split(","))

    print(
        f"tuning Horovod for {scenario.name} at {args.gpus} GPUs "
        f"({len(thresholds) * len(cycles)} grid points)..."
    )
    tuner = HorovodTuner(
        scenario,
        thresholds=thresholds,
        cycle_times=cycles,
        base_config=StudyConfig(measure_steps=1),
    )
    result = tuner.tune(args.gpus)

    table = TextTable(
        ["Fusion threshold", "Cycle time (ms)", "images/s"],
        title=f"Horovod tuning grid — {scenario.name}, {args.gpus} GPUs",
    )
    for threshold, cycle, rate in sorted(result.grid, key=lambda r: -r[2]):
        marker = "  <-- best" if rate == result.best_images_per_second else ""
        table.add_row(
            format_bytes(threshold), f"{cycle * 1e3:.1f}", f"{rate:.1f}{marker}"
        )
    print(table.render())
    print(
        f"\nbest: threshold={format_bytes(result.best.fusion_threshold)}, "
        f"cycle={result.best.cycle_time_s * 1e3:.1f} ms -> "
        f"{result.best_images_per_second:.1f} img/s"
    )


if __name__ == "__main__":
    main()
