#!/usr/bin/env python
"""Quickstart: train a tiny EDSR on synthetic DIV2K and compare to bicubic.

Exercises the *functional* layer end to end: the numpy autograd framework,
the EDSR architecture, the synthetic data pipeline, and PSNR/SSIM metrics —
everything really runs, no GPUs required.

Run:  python examples/quickstart.py [--steps 300]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import DegradationConfig, PatchLoader, SRDataset, SyntheticDiv2k
from repro.metrics import psnr, ssim
from repro.models import EDSR, EDSR_TINY, bicubic_upscale
from repro.tensor.optim import Adam
from repro.trainer import evaluate_sr, train_sr


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--patch", type=int, default=16, help="LR patch size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("== repro quickstart: tiny EDSR on synthetic DIV2K (x2) ==")
    source = SyntheticDiv2k(height=48, width=48, seed=7)
    train_set = SRDataset(source, split="train",
                          degradation=DegradationConfig(scale=2))
    val_set = SRDataset(source, split="val",
                        degradation=DegradationConfig(scale=2))

    model = EDSR(EDSR_TINY, rng=np.random.default_rng(args.seed))
    print(f"model: {EDSR_TINY.name}, {model.num_parameters():,} parameters")

    before = evaluate_sr(model, val_set, max_images=4)
    print(f"untrained:  PSNR {before['psnr']:6.2f} dB   SSIM {before['ssim']:.4f}")

    loader = PatchLoader(train_set, batch_size=args.batch, lr_patch=args.patch,
                         seed=args.seed)
    optimizer = Adam(model.parameters(), lr=2e-3)
    result = train_sr(model, loader, optimizer, steps=args.steps, loss="l1")
    print(
        f"trained {result.steps} steps: loss {result.losses[0]:.4f} -> "
        f"{result.final_loss:.4f}  ({result.images_per_second:.1f} img/s wall)"
    )

    after = evaluate_sr(model, val_set, max_images=4)
    print(f"trained:    PSNR {after['psnr']:6.2f} dB   SSIM {after['ssim']:.4f}")

    bic_psnr = float(np.mean([
        psnr(bicubic_upscale(val_set[i][0], 2), val_set[i][1]) for i in range(4)
    ]))
    bic_ssim = float(np.mean([
        ssim(bicubic_upscale(val_set[i][0], 2), val_set[i][1]) for i in range(4)
    ]))
    print(f"bicubic:    PSNR {bic_psnr:6.2f} dB   SSIM {bic_ssim:.4f}")
    print(
        "\n(The tiny config trains in seconds; closing the gap to bicubic "
        "takes more steps/capacity — try --steps 2000.)"
    )


if __name__ == "__main__":
    main()
