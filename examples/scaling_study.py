#!/usr/bin/env python
"""Reproduce the paper's scaling experiment (Figs. 10, 12, 13) end to end.

Runs the EDSR weak-scaling study on the simulated Lassen system for all
four scenarios — default MPI, MPI-Reg, MPI-Opt, NCCL — and prints
throughput and scaling-efficiency tables plus the headline comparisons
(+26% throughput / +15.6 efficiency points for MPI-Opt at 512 GPUs).

Run:  python examples/scaling_study.py [--max-gpus 512] [--scenarios MPI,MPI-Opt]
"""

from __future__ import annotations

import argparse

from repro.core import SCENARIOS, ScalingStudy, StudyConfig, scenario_by_name
from repro.core.efficiency import efficiency_gain_points, speedup
from repro.core.study import PAPER_GPU_COUNTS
from repro.utils.tables import TextTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-gpus", type=int, default=512)
    parser.add_argument(
        "--scenarios", type=str, default="MPI,MPI-Reg,MPI-Opt,NCCL",
        help="comma-separated scenario names",
    )
    parser.add_argument("--steps", type=int, default=2, help="measured steps/point")
    args = parser.parse_args()

    gpu_counts = [g for g in PAPER_GPU_COUNTS if g <= args.max_gpus]
    scenarios = [scenario_by_name(n) for n in args.scenarios.split(",")]
    config = StudyConfig(measure_steps=args.steps)

    results = {}
    for scenario in scenarios:
        print(f"running {scenario.name}: {scenario.description}")
        study = ScalingStudy(scenario, config)
        results[scenario.name] = study.run(gpu_counts)

    throughput = TextTable(
        ["GPUs"] + [s.name for s in scenarios],
        title="\nTraining throughput, images/second (paper Figs. 10 & 12)",
    )
    for i, gpus in enumerate(gpu_counts):
        throughput.add_row(
            gpus, *[f"{results[s.name][i].images_per_second:.1f}" for s in scenarios]
        )
    print(throughput.render())

    efficiency = TextTable(
        ["GPUs"] + [s.name for s in scenarios],
        title="\nScaling efficiency vs. 1 GPU (paper Fig. 13)",
    )
    for i, gpus in enumerate(gpu_counts):
        efficiency.add_row(
            gpus, *[f"{results[s.name][i].efficiency:.1%}" for s in scenarios]
        )
    print(efficiency.render())

    if {"MPI", "MPI-Opt"} <= set(results) and gpu_counts:
        last = -1
        default = results["MPI"][last]
        opt = results["MPI-Opt"][last]
        print(
            f"\nAt {gpu_counts[last]} GPUs: MPI-Opt / MPI speedup = "
            f"{speedup(opt.images_per_second, default.images_per_second):.2f}x "
            f"(paper: 1.26x); efficiency gain = "
            f"{efficiency_gain_points(opt.efficiency, default.efficiency):.1f} points "
            f"(paper: +15.6)"
        )


if __name__ == "__main__":
    main()
