#!/usr/bin/env python
"""One-shot reproduction of the paper's entire evaluation section.

Runs every experiment (Figs. 1, 9, 10, 11, 12, 13, 14 and Table I) through
the library and writes a consolidated ``reproduction_report.txt`` with
paper-vs-measured values.  A lighter-weight alternative to
``pytest benchmarks/ --benchmark-only`` (which additionally asserts the
reproduction shapes).

Run:  python examples/reproduce_paper.py [--max-gpus 512] [--out report.txt]
"""

from __future__ import annotations

import argparse
import io

from repro.core import (
    MPI_DEFAULT,
    MPI_OPT,
    MPI_REG,
    NCCL_SCENARIO,
    ScalingStudy,
    StudyConfig,
)
from repro.core.calibration import TARGETS
from repro.core.efficiency import efficiency_gain_points, speedup
from repro.core.study import PAPER_GPU_COUNTS
from repro.hardware import V100_16GB
from repro.models import get_model_cost
from repro.models.costing import ThroughputModel, TrainingMemoryModel
from repro.profiling import Hvprof, comparison_table
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes


def fig1(out: io.StringIO) -> None:
    out.write("\n=== Fig. 1: single-V100 throughput ===\n")
    edsr = ThroughputModel(get_model_cost("edsr-paper"), V100_16GB)
    resnet = ThroughputModel(get_model_cost("resnet-50"), V100_16GB)
    out.write(
        f"EDSR     batch 4 : {edsr.images_per_second(4):6.1f} img/s "
        f"(paper {TARGETS['fig1_edsr_img_s']})\n"
        f"ResNet-50 batch 32: {resnet.images_per_second(32):6.1f} img/s "
        f"(paper {TARGETS['fig1_resnet_img_s']})\n"
    )


def fig9(out: io.StringIO) -> None:
    out.write("\n=== Fig. 9: single-GPU batch-size sweep ===\n")
    cost = get_model_cost("edsr-paper")
    throughput = ThroughputModel(cost, V100_16GB)
    memory = TrainingMemoryModel(cost)
    for batch in (1, 2, 4, 8, 16, 32, 64):
        out.write(
            f"batch {batch:3d}: {throughput.images_per_second(batch):6.2f} img/s, "
            f"{format_bytes(memory.bytes_required(batch))}\n"
        )
    hbm = V100_16GB.memory_bytes - V100_16GB.context_overhead_bytes
    out.write(f"max batch before OOM: {memory.max_batch(hbm)}\n")


def scaling(out: io.StringIO, gpu_counts: list[int], steps: int) -> None:
    out.write("\n=== Figs. 10/11/12/13: scaling study ===\n")
    scenarios = (MPI_DEFAULT, MPI_REG, MPI_OPT, NCCL_SCENARIO)
    config = StudyConfig(measure_steps=steps)
    results = {}
    for scenario in scenarios:
        results[scenario.name] = ScalingStudy(scenario, config).run(gpu_counts)
    table = TextTable(
        ["GPUs"]
        + [f"{s.name} img/s" for s in scenarios]
        + [f"{s.name} eff" for s in scenarios],
    )
    for i, gpus in enumerate(gpu_counts):
        table.add_row(
            gpus,
            *[f"{results[s.name][i].images_per_second:.1f}" for s in scenarios],
            *[f"{results[s.name][i].efficiency:.1%}" for s in scenarios],
        )
    out.write(table.render() + "\n")
    last = -1
    default, reg = results["MPI"][last], results["MPI-Reg"][last]
    opt = results["MPI-Opt"][last]
    out.write(
        f"\nAt {gpu_counts[last]} GPUs:\n"
        f"  MPI-Opt speedup over MPI: "
        f"{speedup(opt.images_per_second, default.images_per_second):.2f}x "
        f"(paper 1.26x)\n"
        f"  efficiency gap: "
        f"{efficiency_gain_points(opt.efficiency, default.efficiency):+.1f} pts "
        f"(paper +15.6)\n"
        f"  regcache gain: "
        f"{100 * (reg.images_per_second / default.images_per_second - 1):+.1f}% "
        f"(paper avg +5.1%)\n"
    )


def table1(out: io.StringIO, steps: int) -> None:
    out.write("\n=== Fig. 14 / Table I: hvprof profile, 4 GPUs ===\n")
    config = StudyConfig(measure_steps=steps)
    profiles = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(4, hvprof=hv)
        profiles[scenario.name] = hv
    out.write(comparison_table(profiles["MPI"], profiles["MPI-Opt"]) + "\n")
    out.write(
        f"(paper: ~0% below 16 MB, 53.1%/49.7% in the large bins, "
        f"45.4% total)\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-gpus", type=int, default=512)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--profile-steps", type=int, default=100)
    parser.add_argument("--out", type=str, default="reproduction_report.txt")
    args = parser.parse_args()

    gpu_counts = [g for g in PAPER_GPU_COUNTS if g <= args.max_gpus]
    out = io.StringIO()
    out.write(
        "Reproduction report: 'Scaling Single-Image Super-Resolution "
        "Training on Modern HPC Clusters' (IPDPS-W 2021)\n"
    )
    fig1(out)
    fig9(out)
    scaling(out, gpu_counts, args.steps)
    table1(out, args.profile_steps)

    report = out.getvalue()
    print(report)
    with open(args.out, "w") as fh:
        fh.write(report)
    print(f"[report written to {args.out}]")


if __name__ == "__main__":
    main()
