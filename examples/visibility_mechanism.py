#!/usr/bin/env python
"""Walk through the paper's core mechanism (Figs. 6 & 7) interactively.

Shows, for one simulated Lassen node:

1. Fig. 6a — undisciplined visibility: every process creates contexts on
   every GPU, wasting HBM ("overhead kernels");
2. Fig. 6b — ``CUDA_VISIBLE_DEVICES=local_rank`` fixes the memory waste but
   silently disables CUDA IPC for MPI (host-staged fallback);
3. Fig. 7  — ``MV2_VISIBLE_DEVICES=all`` (CUDA >= 10.1) restores IPC for the
   MPI layer while the framework stays restricted;
4. the CUDA-version gate: the same override is ineffective on CUDA 10.0.

Run:  python examples/visibility_mechanism.py
"""

from __future__ import annotations

from repro.core import MPI_DEFAULT, MPI_OPT
from repro.core.visible_devices import (
    ipc_matrix,
    overhead_kernel_report,
    visibility_table,
)
from repro.cuda.runtime import CudaVersion
from repro.hardware import LASSEN, Cluster
from repro.mpi import WorldSpec, build_world
from repro.mpi.process import AllDevicesPolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.utils.units import MIB


def build(scenario_policy, mv2, cuda_version=CudaVersion(10, 2)):
    cluster = Cluster(Environment(), LASSEN, num_nodes=1)
    spec = WorldSpec(num_ranks=4, policy=scenario_policy, config=mv2,
                     cuda_version=cuda_version)
    ranks = build_world(cluster, spec)
    return cluster, ranks, TransportModel(cluster, mv2, ranks)


def main() -> None:
    print("=" * 72)
    print("1) Fig. 6a — no visibility discipline (every process sees all GPUs)")
    cluster, ranks, tm = build(AllDevicesPolicy(), MPI_DEFAULT.mv2)
    print(overhead_kernel_report(cluster, ranks))
    print("   -> 4 contexts per GPU; IPC works, but HBM is wasted and the")
    print("      hyperparameter space shrinks (paper Fig. 9's OOM edge).")

    print("\n" + "=" * 72)
    print("2) Fig. 6b — CUDA_VISIBLE_DEVICES=local_rank (the 'default' scenario)")
    cluster, ranks, tm = build(MPI_DEFAULT.policy, MPI_DEFAULT.mv2)
    print(overhead_kernel_report(cluster, ranks))
    print(visibility_table(ranks))
    print(ipc_matrix(tm, ranks))
    print(f"   64 MiB GPU-GPU transfer now uses: {tm.select(0, 1, 64 * MIB).value}")

    print("\n" + "=" * 72)
    print("3) Fig. 7 — the paper's MV2_VISIBLE_DEVICES=all (MPI-Opt)")
    cluster, ranks, tm = build(MPI_OPT.policy, MPI_OPT.mv2)
    print(visibility_table(ranks))
    print(ipc_matrix(tm, ranks))
    print(f"   64 MiB GPU-GPU transfer now uses: {tm.select(0, 1, 64 * MIB).value}")

    print("\n" + "=" * 72)
    print("4) The CUDA-version gate: same override under CUDA 10.0")
    cluster, ranks, tm = build(MPI_OPT.policy, MPI_OPT.mv2,
                               cuda_version=CudaVersion(10, 0))
    print(visibility_table(ranks))
    print(f"   64 MiB GPU-GPU transfer falls back to: {tm.select(0, 1, 64 * MIB).value}")
    print("   (cuIpcOpenMemHandle would fail for masked devices before 10.1)")


if __name__ == "__main__":
    main()
