#!/usr/bin/env python
"""Deterministic chaos: EDSR training under an injected fault schedule.

Runs the paper's 8-GPU distributed EDSR recipe under a ``FaultPlan`` —
a transient straggler, a flapping InfiniBand link, and (optionally) a rank
failure absorbed by the shrink policy — and demonstrates the two
reproducibility guarantees the fault subsystem makes:

1. the *same* plan + seed produces byte-identical fault traces and
   bit-identical throughput across runs;
2. the *empty* plan reproduces the fault-free baseline exactly.

Run:  python examples/inject_faults.py [--ranks 8] [--steps 8] [--fail-rank 5]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import scenario_by_name
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    RankFailure,
    StragglerFault,
)
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, WorldSpec
from repro.profiling import Hvprof
from repro.sim import Environment


def run_training(args, plan: FaultPlan | None):
    """One full training run; returns (result, injector)."""
    from repro.trainer import DistributedTrainer

    scenario = scenario_by_name(args.scenario)
    nodes = max(1, (args.ranks + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(num_ranks=args.ranks, policy=scenario.policy,
                     config=scenario.mv2)
    hvprof = Hvprof()
    injector = FaultInjector(plan, hvprof=hvprof) if plan is not None else None
    world = MpiWorld(cluster, spec, faults=injector)
    comm = world.communicator()
    comm.add_observer(hvprof.observer)
    engine = HorovodEngine(comm, HorovodConfig(cycle_time_s=2e-3))

    source = SyntheticDiv2k(height=32, width=32, seed=11)
    dataset = SRDataset(source, split="train",
                        degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(100 + rank)),
        engine,
        dataset,
        batch_per_rank=args.batch,
        lr_patch=8,
        base_lr=5e-4,
        faults=injector,
        resilience=args.policy,
        detect_timeout_s=0.05,
    )
    result = trainer.train(steps=args.steps)
    return result, injector, hvprof


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--scenario", type=str, default="MPI-Opt")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--policy", type=str, default="shrink",
                        choices=["shrink", "abort"])
    parser.add_argument("--fail-rank", type=int, default=-1,
                        help="rank to kill mid-run (-1 disables)")
    args = parser.parse_args()

    faults = [
        # rank 1 runs 1.6x slow for the first simulated second, then recovers
        StragglerFault(rank=1, factor=1.6, start=0.0, duration=1.0),
        # the IB fabric flaps: half bandwidth on alternating 0.4 s half-periods
        LinkFault(kind="ib", bandwidth_factor=0.5, latency_add_s=5e-6,
                  start=0.5, flap_period_s=0.8),
    ]
    if args.fail_rank >= 0:
        faults.append(RankFailure(rank=args.fail_rank, time=1.2))
    plan = FaultPlan(seed=args.seed, faults=tuple(faults))

    print(f"fault plan (seed {args.seed}): {len(plan.faults)} faults, "
          f"policy={args.policy}")

    baseline, _, _ = run_training(args, None)
    base_ips = baseline.simulated_images_per_second
    print(f"baseline (no injector):      {base_ips:10.2f} img/s")

    zero, _, _ = run_training(args, FaultPlan(seed=args.seed))
    zero_ips = zero.simulated_images_per_second
    drift = abs(zero_ips - base_ips) / base_ips
    print(f"zero-fault plan:             {zero_ips:10.2f} img/s "
          f"(drift {drift:.5%})")
    assert drift < 1e-3, "zero-fault plan must reproduce the baseline"

    first, inj1, prof = run_training(args, plan)
    second, inj2, _ = run_training(args, plan)
    ips1 = first.simulated_images_per_second
    ips2 = second.simulated_images_per_second
    print(f"faulty run 1:                {ips1:10.2f} img/s")
    print(f"faulty run 2 (same seed):    {ips2:10.2f} img/s")
    identical = ips1 == ips2 and inj1.trace.digest() == inj2.trace.digest()
    print(f"runs identical: {identical} "
          f"(trace digest {inj1.trace.digest()[:12]}..., "
          f"{len(inj1.trace)} fault events)")
    assert identical, "same seed + same plan must be bit-identical"
    print(f"world size over time: {first.world_sizes}")
    print(f"slowdown vs baseline: {base_ips / ips1:.2f}x")
    print(prof.fault_report())


if __name__ == "__main__":
    main()
