#!/usr/bin/env python
"""Compare the SR model zoo: bicubic vs SRCNN vs tiny EDSR (paper §II-E/F).

Trains SRCNN and a tiny EDSR under identical budgets on the synthetic
DIV2K pipeline and reports validation PSNR/SSIM against the classical
bicubic baseline (the paper's Fig. 4 comparison, quantified), plus each
paper-scale model's simulated single-V100 training throughput from the
cost models (the Fig. 1 context).

Run:  python examples/model_zoo_comparison.py [--steps 150]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import DegradationConfig, PatchLoader, SRDataset, SyntheticDiv2k
from repro.hardware import V100_16GB
from repro.metrics import psnr, ssim
from repro.models import EDSR, EDSR_TINY, SRCNN, bicubic_upscale, get_model_cost
from repro.models.costing import ThroughputModel
from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.optim import Adam
from repro.trainer import train_sr
from repro.utils.tables import TextTable


def evaluate_srcnn(model: SRCNN, dataset, count: int) -> tuple[float, float]:
    psnrs, ssims = [], []
    model.eval()
    for i in range(count):
        lr, hr = dataset[i]
        out = np.clip(model.upscale(lr, scale=2), 0, 1)
        psnrs.append(psnr(out, hr))
        ssims.append(ssim(out, hr))
    model.train()
    return float(np.mean(psnrs)), float(np.mean(ssims))


def evaluate_edsr(model: EDSR, dataset, count: int) -> tuple[float, float]:
    psnrs, ssims = [], []
    model.eval()
    with no_grad():
        for i in range(count):
            lr, hr = dataset[i]
            out = np.clip(model(Tensor(lr[None])).numpy()[0], 0, 1)
            psnrs.append(psnr(out, hr))
            ssims.append(ssim(out, hr))
    model.train()
    return float(np.mean(psnrs)), float(np.mean(ssims))


def train_srcnn(model: SRCNN, dataset, steps: int, batch: int, patch: int) -> None:
    """SRCNN trains on bicubic-upscaled inputs at HR resolution."""
    loader = PatchLoader(dataset, batch_size=batch, lr_patch=patch, seed=0)
    opt = Adam(model.parameters(), lr=1e-3)
    for lr_batch, hr_batch in loader.batches(steps):
        upsampled = np.stack([bicubic_upscale(img, 2) for img in lr_batch])
        model.zero_grad()
        loss = F.mse_loss(model(Tensor(upsampled)), Tensor(hr_batch))
        loss.backward()
        opt.step()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150)
    parser.add_argument("--val-images", type=int, default=4)
    args = parser.parse_args()

    source = SyntheticDiv2k(height=48, width=48, seed=13)
    train_set = SRDataset(source, split="train",
                          degradation=DegradationConfig(scale=2))
    val_set = SRDataset(source, split="val",
                        degradation=DegradationConfig(scale=2))

    print(f"training SRCNN and tiny EDSR for {args.steps} steps each ...")
    srcnn = SRCNN(f1=16, f2=8, rng=np.random.default_rng(0))
    train_srcnn(srcnn, train_set, args.steps, batch=4, patch=12)

    edsr = EDSR(EDSR_TINY, rng=np.random.default_rng(0))
    loader = PatchLoader(train_set, batch_size=4, lr_patch=12, seed=0)
    train_sr(edsr, loader, Adam(edsr.parameters(), lr=2e-3), steps=args.steps)

    bic_psnr = float(np.mean([
        psnr(bicubic_upscale(val_set[i][0], 2), val_set[i][1])
        for i in range(args.val_images)
    ]))
    bic_ssim = float(np.mean([
        ssim(bicubic_upscale(val_set[i][0], 2), val_set[i][1])
        for i in range(args.val_images)
    ]))
    srcnn_psnr, srcnn_ssim = evaluate_srcnn(srcnn, val_set, args.val_images)
    edsr_psnr, edsr_ssim = evaluate_edsr(edsr, val_set, args.val_images)

    table = TextTable(
        ["Method", "Params", "PSNR (dB)", "SSIM"],
        title="Validation quality on synthetic DIV2K x2 (paper Fig. 4, quantified)",
    )
    table.add_row("bicubic", "-", f"{bic_psnr:.2f}", f"{bic_ssim:.4f}")
    table.add_row("SRCNN (tiny)", f"{srcnn.num_parameters():,}",
                  f"{srcnn_psnr:.2f}", f"{srcnn_ssim:.4f}")
    table.add_row("EDSR (tiny)", f"{edsr.num_parameters():,}",
                  f"{edsr_psnr:.2f}", f"{edsr_ssim:.4f}")
    print(table.render())

    cost_table = TextTable(
        ["Model (paper scale)", "Params", "Train GFLOP/img", "V100 img/s"],
        title="\nSimulated single-V100 training cost (paper Fig. 1 context)",
    )
    for name, batch in (("edsr-paper", 4), ("edsr-baseline", 16),
                        ("resnet-50", 32)):
        cost = get_model_cost(name)
        tm = ThroughputModel(cost, V100_16GB)
        cost_table.add_row(
            name, f"{cost.total_params / 1e6:.1f}M",
            f"{cost.flops_train / 1e9:.0f}",
            f"{tm.images_per_second(batch):.1f}",
        )
    print(cost_table.render())


if __name__ == "__main__":
    main()
