#!/usr/bin/env python
"""Elastic recovery: kill a rank mid-training and keep the study alive.

Demonstrates the full recovery loop at both layers of the stack:

1. **Functional trainer** — an 8-rank distributed EDSR run loses rank 3
   mid-training; the heartbeat supervisor declares it dead, the trainer
   restores model *and* optimizer state from the last checkpoint on the
   shrunk 7-rank ring, replays the lost steps, and converges — with every
   second of overhead (checkpointing, detection, lost work, recovery)
   itemized in the result's ledger.
2. **Performance-mode study** — the same fault plan through
   :class:`~repro.core.ScalingStudy`, comparing restart-from-checkpoint
   against shrink-and-continue on time-to-solution and goodput.

Run:  python examples/recover_from_faults.py [--ranks 8] [--steps 16]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ScalingStudy, StudyConfig, scenario_by_name
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.faults import FaultInjector, FaultPlan, RankFailure
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, WorldSpec
from repro.resilience import (
    CheckpointPolicy,
    RecoveryAccounting,
    RecoveryPolicy,
    SHRINK_CONTINUE,
)
from repro.sim import Environment
from repro.trainer import DistributedTrainer


def functional_run(args, policy: RecoveryPolicy):
    """Train real numpy EDSR replicas under the fault plan."""
    scenario = scenario_by_name(args.scenario)
    plan = FaultPlan(
        seed=args.seed,
        faults=[RankFailure(rank=args.fail_rank, time=args.fail_at)],
    )
    nodes = max(1, (args.ranks + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(num_ranks=args.ranks, policy=scenario.policy,
                     config=scenario.mv2)
    injector = FaultInjector(plan)
    world = MpiWorld(cluster, spec, faults=injector)
    engine = HorovodEngine(world.communicator(),
                           HorovodConfig(cycle_time_s=2e-3))
    dataset = SRDataset(SyntheticDiv2k(height=32, width=32, seed=11),
                        split="train",
                        degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(100 + rank)),
        engine,
        dataset,
        batch_per_rank=1,
        lr_patch=12,
        faults=injector,
        recovery=policy,
    )
    result = trainer.train(args.steps)
    return result, injector, trainer


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="MPI-Opt")
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--steps", type=int, default=16)
    parser.add_argument("--fail-rank", type=int, default=3)
    parser.add_argument("--fail-at", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    policy = RecoveryPolicy(restart=True,
                            checkpoint=CheckpointPolicy(interval_steps=4))
    print(f"=== functional trainer: rank {args.fail_rank} dies at "
          f"t={args.fail_at:g}s, restart-from-checkpoint ===")
    result, injector, trainer = functional_run(args, policy)
    print(f"completed {result.steps} steps; world "
          f"{result.world_sizes[0]} -> {result.world_sizes[-1]}; "
          f"final loss {result.final_loss:.5f}; "
          f"replicas in sync: {trainer.replicas_in_sync()}")
    for line in result.resilience.lines():
        print(line)
    kinds = sorted({e.kind for e in injector.trace})
    print(f"fault-trace: {len(injector.trace)} events ({', '.join(kinds)})")

    print()
    print("=== performance-mode study: restart vs shrink-continue ===")
    plan = FaultPlan(seed=args.seed,
                     faults=[RankFailure(rank=args.fail_rank,
                                         time=args.fail_at)])
    scenario = scenario_by_name(args.scenario)
    config = StudyConfig(warmup_steps=1, measure_steps=args.steps)
    for name, study_policy in (("restart", policy),
                               ("shrink-continue", SHRINK_CONTINUE)):
        study = ScalingStudy(scenario, config, fault_plan=plan,
                             recovery=study_policy)
        point = study.run_point(args.ranks)
        acct = RecoveryAccounting.from_payload(point.resilience)
        print(f"[{name}] {point.images_per_second:.1f} images/s, "
              f"TTS {acct.time_to_solution_s:.2f}s, "
              f"goodput {acct.goodput:.1%}, "
              f"lost work {acct.lost_work_s:.2f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
