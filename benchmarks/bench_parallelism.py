"""Hybrid-parallelism regression harness: writes ``BENCH_parallelism.json``.

Standalone (no pytest-benchmark plugin) like ``bench_comm.py`` so CI can
run it directly and diff against a committed baseline::

    python benchmarks/bench_parallelism.py --quick \
        --out BENCH_parallelism.json \
        --check-baseline benchmarks/baselines/BENCH_parallelism_baseline.json

Workloads:

* **crossover** — the planner at 8192 simulated ranks.  The acceptance
  claim is asserted inline: the best hybrid layout beats the best pure
  data-parallel layout by >= 1.2x on simulated step time (measured
  ~1.35x: at that scale the dp allreduce dominates, and tp=4 cuts the
  synchronized gradient volume per rank four-fold while its NVLink
  activation collectives stay on-node).  Quick mode trims the search to
  the pp=1 column — the claim's winner lives there; the full grid adds
  the pipelined layouts for the baseline to pin.
* **small_scale** — the full planner grid at 512 ranks, where pure dp
  still wins (the crossover is real, not an artifact of the hybrid
  pricing path being uniformly cheaper).

Every anchor is a simulated time — machine-independent, checked exactly
against the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.parallel.planner import PlannerConfig, plan_hybrid

HYBRID_MIN_SPEEDUP = 1.2  # acceptance floor: best hybrid vs pure dp at 8192


def layout_key(row: dict) -> str:
    return (
        f"dp{row['dp']}-tp{row['tp']}-pp{row['pp']}-mb{row['microbatches']}"
    )


def run_plan(config: PlannerConfig, jobs: int) -> dict:
    t0 = perf_counter()
    report = plan_hybrid(config, jobs=jobs)
    return {
        "ranks": config.ranks,
        "candidates": report["candidates"],
        "best": layout_key(report["best"]),
        "best_step_time": report["best"]["step_time"],
        "pure_dp_step_time": report["best_pure_dp"]["step_time"],
        "hybrid_step_time": report["best_hybrid"]["step_time"],
        "hybrid_speedup": report["hybrid_speedup"],
        "step_times": {
            layout_key(r): r["step_time"] for r in report["points"]
        },
        "wall_s": perf_counter() - t0,
    }


def time_crossover(quick: bool, jobs: int) -> dict:
    config = PlannerConfig(
        ranks=8192,
        max_pp=1 if quick else 4,
        microbatches=(8, 16),
    )
    plan = run_plan(config, jobs)
    speedup = plan["hybrid_speedup"]
    assert speedup >= HYBRID_MIN_SPEEDUP, (
        f"best hybrid layout is only {speedup:.3f}x over pure dp at 8192 "
        f"ranks — below the {HYBRID_MIN_SPEEDUP}x acceptance floor"
    )
    assert plan["best"] != f"dp{config.ranks}-tp1-pp1-mb1", (
        "pure dp won at 8192 ranks; the hybrid crossover claim is broken"
    )
    return plan


def time_small_scale(jobs: int) -> dict:
    plan = run_plan(PlannerConfig(ranks=512, microbatches=(8, 16)), jobs)
    # sanity, not a perf gate: at 512 ranks dp comm is cheap enough that
    # sacrificing per-rank batch (tp) or eating bubbles (pp) cannot pay
    assert plan["best"] == "dp512-tp1-pp1-mb1", (
        f"expected pure dp to win at 512 ranks, got {plan['best']}"
    )
    return plan


def check_baseline(report: dict, baseline_path: str) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    if baseline.get("quick") != report["quick"]:
        # grid sizes differ; nothing is comparable like-for-like
        return failures
    for key, base in baseline.get("anchors", {}).items():
        got = report["anchors"].get(key)
        if got is not None and got != base:
            failures.append(
                f"anchor {key} drifted: {got!r} != baseline {base!r} "
                f"(cost model changed — regenerate baseline + bump salt)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="trim the 8192-rank search to the pp=1 column")
    parser.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1),
                        help="worker processes for candidate pricing")
    parser.add_argument("--out", default="BENCH_parallelism.json")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on simulated step-time drift")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_parallelism] 8192-rank crossover "
          f"({'quick' if args.quick else 'full'}) ...")
    workloads["crossover"] = time_crossover(args.quick, args.jobs)
    c = workloads["crossover"]
    print(f"[bench_parallelism]   best {c['best']}: "
          f"{c['best_step_time'] * 1e3:.2f} ms vs pure dp "
          f"{c['pure_dp_step_time'] * 1e3:.2f} ms "
          f"({c['hybrid_speedup']:.3f}x, wall {c['wall_s']:.1f}s)")
    print("[bench_parallelism] 512-rank control ...")
    workloads["small_scale"] = time_small_scale(args.jobs)
    s = workloads["small_scale"]
    print(f"[bench_parallelism]   best {s['best']}: "
          f"{s['best_step_time'] * 1e3:.2f} ms over {s['candidates']} "
          f"candidate(s) (wall {s['wall_s']:.1f}s)")

    anchors = {
        f"x8192:{key}": value
        for key, value in sorted(workloads["crossover"]["step_times"].items())
    }
    anchors.update(
        (f"x512:{key}", value)
        for key, value in sorted(
            workloads["small_scale"]["step_times"].items())
    )
    report = {
        "quick": args.quick,
        "workloads": workloads,
        "anchors": anchors,
        "hybrid_speedup": workloads["crossover"]["hybrid_speedup"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_parallelism] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline)
        for failure in failures:
            print(f"[bench_parallelism] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_parallelism] baseline check passed "
              f"({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
