"""Fig. 10 — default distributed EDSR training performance.

Horovod built against MVAPICH2-GDR with *default* settings vs. NCCL,
4 -> 512 GPUs.  The paper's observation: default MPI scaling is acceptable
at small node counts but degrades at scale (the lost-IPC staged path),
while NCCL (which manages IPC itself) holds up.
"""

from __future__ import annotations

from conftest import GPU_COUNTS

from repro.utils.tables import TextTable


def test_fig10_default_vs_nccl_scaling(benchmark, sweeps, save_report):
    def compute():
        return {
            "MPI": sweeps.sweep("MPI"),
            "NCCL": sweeps.sweep("NCCL"),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["GPUs", "MPI (img/s)", "NCCL (img/s)", "MPI eff", "NCCL eff"],
        title="Fig. 10 — default scaling: MVAPICH2-GDR (default) vs NCCL",
    )
    for mpi_point, nccl_point in zip(data["MPI"], data["NCCL"]):
        table.add_row(
            mpi_point.num_gpus,
            f"{mpi_point.images_per_second:.1f}",
            f"{nccl_point.images_per_second:.1f}",
            f"{mpi_point.efficiency:.1%}",
            f"{nccl_point.efficiency:.1%}",
        )
    save_report("fig10_default_scaling", table.render())

    mpi = {p.num_gpus: p for p in data["MPI"]}
    nccl = {p.num_gpus: p for p in data["NCCL"]}
    # throughput still rises with scale for both backends
    for points in (data["MPI"], data["NCCL"]):
        rates = [p.images_per_second for p in points]
        assert all(b > a for a, b in zip(rates, rates[1:]))
    # default MPI degrades markedly by 512 GPUs...
    assert mpi[512].efficiency < 0.65
    # ...while NCCL stays well ahead (the paper's motivating asymmetry)
    assert nccl[512].images_per_second > 1.15 * mpi[512].images_per_second
    # and at one node the two are comparable (within ~25%)
    assert nccl[4].images_per_second < 1.35 * mpi[4].images_per_second
    benchmark.extra_info["mpi_eff_512"] = mpi[512].efficiency
    benchmark.extra_info["nccl_eff_512"] = nccl[512].efficiency
