"""Engine fast-path regression harness: writes ``BENCH_engine.json``.

Standalone (no pytest-benchmark plugin) like ``bench_comm.py`` so CI can
run it directly and diff against a committed baseline::

    python benchmarks/bench_engine.py --quick --out BENCH_engine.json \
        --check-baseline benchmarks/baselines/BENCH_engine_baseline.json

Workloads:

* **scaling_study** — runs the default scaling study (MPI-Opt, default
  ``StudyConfig``) point by point in exact mode and in fast mode,
  asserting full-dataclass bit-identity at every world size and
  recording the wall-clock speedup.  The acceptance gate: the largest
  world must run at least ``--min-speedup`` (default 5x) faster under
  the trace/replay engine.  The *simulated* images/s anchors are
  machine-independent and baseline-checked exactly — any drift means
  the cost model changed (regenerate the baseline and bump the digest
  salt).
* **serve_trace** — generates the homogeneous-Poisson arrival trace with
  the scalar loop and the vectorized fast path, asserting the traces are
  identical and reporting the generation speedup (informational: trace
  generation is not the serving bottleneck).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import ScalingStudy, StudyConfig, scenario_by_name


def run_point(num_gpus: int, mode: str):
    study = ScalingStudy(
        scenario_by_name("MPI-Opt"), StudyConfig(engine_mode=mode)
    )
    t0 = perf_counter()
    point = study.run_point(num_gpus)
    return point, perf_counter() - t0


def time_scaling_study(quick: bool) -> dict:
    gpu_counts = (64, 512) if quick else (16, 64, 128, 256, 512)
    points = {}
    anchors = {}
    speedups = {}
    for num_gpus in gpu_counts:
        exact, exact_s = run_point(num_gpus, "exact")
        fast, fast_s = run_point(num_gpus, "fast")
        assert dataclasses.asdict(exact) == dataclasses.asdict(fast), (
            f"fast engine diverged from exact at {num_gpus} GPUs"
        )
        anchors[str(num_gpus)] = fast.images_per_second
        speedups[str(num_gpus)] = exact_s / fast_s if fast_s > 0 else float("inf")
        points[num_gpus] = (exact_s, fast_s)
    largest = str(max(gpu_counts))
    return {
        "gpu_counts": list(gpu_counts),
        "exact_s": {str(g): points[g][0] for g in gpu_counts},
        "fast_s": {str(g): points[g][1] for g in gpu_counts},
        "speedups": speedups,
        "largest_world_speedup": speedups[largest],
        # machine-independent: simulated images/s per world size
        "anchors": anchors,
    }


def time_serve_trace(quick: bool) -> dict:
    from repro.serve.workload import WorkloadConfig, generate_arrivals

    duration_s = 120.0 if quick else 600.0
    cfg = WorkloadConfig(kind="poisson", rate_rps=200.0)
    t0 = perf_counter()
    exact = generate_arrivals(cfg, duration_s, 7)
    exact_s = perf_counter() - t0
    t0 = perf_counter()
    fast = generate_arrivals(cfg, duration_s, 7, engine_mode="fast")
    fast_s = perf_counter() - t0
    assert exact == fast, "vectorized Poisson trace diverged from scalar loop"
    return {
        "requests": len(exact),
        "exact_s": exact_s,
        "fast_s": fast_s,
        "speedup": exact_s / fast_s if fast_s > 0 else float("inf"),
    }


def check_baseline(report: dict, baseline_path: str) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    # simulated throughputs are machine-independent: exact match
    anchors = report["anchors"]
    for key, base_rate in baseline.get("anchors", {}).items():
        got = anchors.get(key)
        if got is not None and got != base_rate:
            failures.append(
                f"anchor {key} GPUs drifted: {got!r} != baseline {base_rate!r} "
                f"(cost model changed — regenerate baseline + bump salt)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on simulated-throughput drift")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required fast-engine speedup at the largest "
                             "world size")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_engine] scaling study "
          f"({'quick' if args.quick else 'full'}) ...")
    workloads["scaling_study"] = time_scaling_study(args.quick)
    for g in workloads["scaling_study"]["gpu_counts"]:
        key = str(g)
        print("[bench_engine]   {:>4} GPUs  exact {:.3f}s  fast {:.3f}s  "
              "speedup {:.1f}x".format(
                  g,
                  workloads["scaling_study"]["exact_s"][key],
                  workloads["scaling_study"]["fast_s"][key],
                  workloads["scaling_study"]["speedups"][key]))
    print("[bench_engine] serve arrival trace ...")
    workloads["serve_trace"] = time_serve_trace(args.quick)
    print("[bench_engine]   {requests} arrivals  exact {exact_s:.3f}s  "
          "fast {fast_s:.3f}s  speedup {speedup:.1f}x".format(
              **workloads["serve_trace"]))

    report = {
        "quick": args.quick,
        "workloads": workloads,
        "anchors": workloads["scaling_study"]["anchors"],
        "largest_world_speedup":
            workloads["scaling_study"]["largest_world_speedup"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_engine] wrote {args.out}")

    failures = []
    speedup = report["largest_world_speedup"]
    if speedup < args.min_speedup:
        failures.append(
            f"fast engine speedup at the largest world is {speedup:.1f}x, "
            f"below the {args.min_speedup:.1f}x acceptance floor"
        )
    if args.check_baseline:
        failures += check_baseline(report, args.check_baseline)
    for failure in failures:
        print(f"[bench_engine] FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.check_baseline:
        print(f"[bench_engine] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
