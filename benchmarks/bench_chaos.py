"""Chaos-campaign regression harness: runs a reduced invariant-checked
campaign and writes ``BENCH_chaos.json``.

Standalone like ``bench_serve.py`` (no benchmark plugin needed) so CI can
run it and diff against a committed baseline::

    python benchmarks/bench_chaos.py --quick --out BENCH_chaos.json \
        --check-baseline benchmarks/baselines/BENCH_chaos_baseline.json

Workloads:

* **campaign** — switch-failure, partition, and node-failure scenarios
  under both recovery policies, cold (simulated) then warm (cache hits),
  asserting every machine-checked invariant is green and that the warm
  campaign digest is identical to the cold one.  The regression gate is
  the per-cell simulated ``goodput`` and ``final_world_size`` plus the
  invariant count: these are fully deterministic, so any drift means the
  fault/recovery/timing semantics changed — intentional changes must
  update the baseline (and bump ``CACHE_VERSION_SALT``).
* **cell_rate** — wall-clock seconds per campaign cell (informational;
  machine-dependent, never gated).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.chaos import CampaignConfig, run_campaign
from repro.perf import ResultCache

SCENARIOS = ("switch-failure", "partition", "node-failure")
POLICIES = ("restart", "shrink")


def _config(quick: bool) -> CampaignConfig:
    return CampaignConfig(
        scenarios=SCENARIOS,
        policies=POLICIES,
        seeds=1 if quick else 3,
        num_gpus=16,
        measure_steps=16 if quick else 40,
    )


def time_campaign(quick: bool, workers: int) -> dict:
    config = _config(quick)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = perf_counter()
        cold = run_campaign(config, jobs=workers, cache=cache)
        cold_s = perf_counter() - t0
        t0 = perf_counter()
        warm = run_campaign(config, jobs=workers, cache=cache)
        warm_s = perf_counter() - t0
        stats = cache.stats()

    assert cold.ok, f"red invariants: {cold.failures()}"
    assert warm.digest == cold.digest, "warm cache diverged from cold"
    assert warm.rows == cold.rows, "warm cache diverged from cold"

    cells = {}
    checked = 0
    for row in cold.rows:
        checked += len(row["invariants"])
        r = row["exact"]["resilience"]
        key = f"{row['scenario']}/{row['policy']}/seed{row['seed']}"
        cells[key] = {
            "goodput": r["goodput"],
            "final_world_size": r["final_world_size"],
            "restarts": r["restarts"],
        }
    return {
        "cells": cells,
        "invariants_checked": checked,
        "digest": cold.digest,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cache": stats,
    }


def time_cell_rate(campaign: dict) -> dict:
    """Wall-clock cost per cell (informational)."""
    n = len(campaign["cells"])
    cold_s = campaign["cold_s"]
    return {
        "cells": n,
        "cold_s": cold_s,
        "seconds_per_cell": cold_s / n if n else 0.0,
    }


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    campaign = report["workloads"]["campaign"]
    failures = []
    base_campaign = baseline.get("campaign", {})
    want_checked = base_campaign.get("invariants_checked")
    if want_checked is not None and campaign["invariants_checked"] != want_checked:
        failures.append(
            f"invariants_checked changed: {campaign['invariants_checked']} "
            f"vs baseline {want_checked} — an invariant was added or "
            f"silently dropped"
        )
    for key, base in base_campaign.get("cells", {}).items():
        got = campaign["cells"].get(key)
        if got is None:
            failures.append(f"cell {key} missing from the campaign")
            continue
        for metric in ("final_world_size", "restarts"):
            if got[metric] != base[metric]:
                failures.append(
                    f"{key}.{metric} changed: {got[metric]} vs baseline "
                    f"{base[metric]}"
                )
        want, have = base["goodput"], got["goodput"]
        if abs(have - want) > tolerance * max(abs(want), 1e-12):
            failures.append(
                f"{key}.goodput drifted: {have:.6g} vs baseline {want:.6g} "
                f"(tolerance {tolerance:.0%}) — fault/recovery timing "
                f"semantics changed; update the baseline and bump "
                f"CACHE_VERSION_SALT if intentional"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced seeds/steps for CI smoke runs")
    parser.add_argument("--out", default="BENCH_chaos.json")
    parser.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1))
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail if simulated campaign metrics drift")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="allowed relative drift (simulated metrics are "
                             "deterministic, so this is float-noise margin)")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_chaos] campaign ({'quick' if args.quick else 'full'}) ...")
    workloads["campaign"] = time_campaign(args.quick, args.jobs)
    print(
        "[bench_chaos]   {n} cell(s), {inv} invariant(s) green, "
        "cold {cold_s:.2f}s  warm {warm_s:.3f}s".format(
            n=len(workloads["campaign"]["cells"]),
            inv=workloads["campaign"]["invariants_checked"],
            **workloads["campaign"],
        )
    )
    workloads["cell_rate"] = time_cell_rate(workloads["campaign"])
    print(
        "[bench_chaos]   {seconds_per_cell:.2f}s per cell".format(
            **workloads["cell_rate"]
        )
    )

    report = {
        "quick": args.quick,
        "jobs": args.jobs,
        "workloads": workloads,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_chaos] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_chaos] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_chaos] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
