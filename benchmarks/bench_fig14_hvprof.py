"""Fig. 14 — hvprof allreduce profile: 100 training steps on 4 GPUs.

The paper profiles 100 EDSR steps under default MPI and under MPI-Opt and
plots per-message-size-bin allreduce time; the >=16 MB bins shrink by ~50%
under MPI-Opt while the small bins are unchanged.
"""

from __future__ import annotations

import pytest

from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig
from repro.profiling import Hvprof, improvement_summary

STEPS = 100
GPUS = 4


@pytest.fixture(scope="module")
def profiles():
    config = StudyConfig(measure_steps=STEPS)
    out = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(GPUS, hvprof=hv)
        out[scenario.name] = hv
    return out


def test_fig14_hvprof_profiles(benchmark, profiles, save_report):
    data = benchmark.pedantic(lambda: profiles, rounds=1, iterations=1)

    report = "\n\n".join(
        data[name].report(
            title=f"Fig. 14 — hvprof allreduce profile, {STEPS} steps on "
                  f"{GPUS} GPUs ({name})"
        )
        for name in ("MPI", "MPI-Opt")
    )
    save_report("fig14_hvprof", report)

    for name in ("MPI", "MPI-Opt"):
        hv = data[name]
        # ~equal gradient volume profiled in both runs
        assert hv.op_count("allreduce") >= STEPS  # >= 1 message per step
        bins = hv.by_bin("allreduce")
        populated = [b for b, s in bins.items() if s.count > 0]
        # the fused-EDSR stream populates the large bins
        assert any(b.low >= 16 * 1024 * 1024 for b in populated)
    # both profiles saw the same bytes (same workload)
    assert data["MPI"].total_bytes() == data["MPI-Opt"].total_bytes()


def test_fig14_improvement_concentrated_in_large_bins(benchmark, profiles):
    summary = benchmark.pedantic(
        lambda: improvement_summary(profiles["MPI"], profiles["MPI-Opt"]),
        rounds=1, iterations=1,
    )
    large = [
        summary[label]
        for label in ("16 MB - 32 MB", "32 MB - 64 MB")
        if profiles["MPI"].by_bin()[_bin(label)].count > 0
    ]
    assert large, "no populated large bins"
    assert max(large) > 35.0  # paper: 53.1% / 49.7%


def _bin(label):
    from repro.profiling import PAPER_BINS

    return next(b for b in PAPER_BINS if b.label == label)
