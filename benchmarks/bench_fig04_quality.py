"""Fig. 4 — output quality: traditional bicubic upsampling vs EDSR.

The paper's Fig. 4 shows example HR outputs.  We quantify the comparison:
train the (tiny, numpy-feasible) EDSR on the synthetic DIV2K pipeline and
report PSNR/SSIM against bicubic on held-out images.  The reproduction
target is the *learning* behaviour — training monotonically closes the gap
toward (and, with enough budget, beyond) the classical baseline; the full
43 M-parameter network that actually overtakes bicubic is not trainable in
a benchmark's time budget (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.data import DegradationConfig, PatchLoader, SRDataset, SyntheticDiv2k
from repro.metrics import psnr, ssim
from repro.models import EDSR, EDSR_TINY, bicubic_upscale
from repro.tensor.optim import Adam
from repro.trainer import evaluate_sr, train_sr
from repro.utils.tables import TextTable

STEPS = 120
VAL_IMAGES = 3


def run_quality_comparison():
    source = SyntheticDiv2k(height=40, width=40, seed=17)
    train_set = SRDataset(source, split="train",
                          degradation=DegradationConfig(scale=2))
    val_set = SRDataset(source, split="val",
                        degradation=DegradationConfig(scale=2))

    model = EDSR(EDSR_TINY, rng=np.random.default_rng(2))
    untrained = evaluate_sr(model, val_set, max_images=VAL_IMAGES)
    loader = PatchLoader(train_set, batch_size=4, lr_patch=12, seed=2)
    midpoint_result = train_sr(
        model, loader, Adam(model.parameters(), lr=2e-3), steps=STEPS // 2
    )
    midpoint = evaluate_sr(model, val_set, max_images=VAL_IMAGES)
    final_result = train_sr(
        model, loader, Adam(model.parameters(), lr=1e-3), steps=STEPS // 2
    )
    trained = evaluate_sr(model, val_set, max_images=VAL_IMAGES)

    bicubic = {
        "psnr": float(np.mean([
            psnr(bicubic_upscale(val_set[i][0], 2), val_set[i][1])
            for i in range(VAL_IMAGES)
        ])),
        "ssim": float(np.mean([
            ssim(bicubic_upscale(val_set[i][0], 2), val_set[i][1])
            for i in range(VAL_IMAGES)
        ])),
    }
    return untrained, midpoint, trained, bicubic, midpoint_result, final_result


def test_fig04_quality_comparison(benchmark, save_report):
    data = benchmark.pedantic(run_quality_comparison, rounds=1, iterations=1)
    untrained, midpoint, trained, bicubic, mid_res, fin_res = data

    table = TextTable(
        ["Method", "PSNR (dB)", "SSIM"],
        title="Fig. 4 — bicubic vs EDSR output quality (quantified, tiny config)",
    )
    table.add_row("EDSR untrained", f"{untrained['psnr']:.2f}",
                  f"{untrained['ssim']:.4f}")
    table.add_row(f"EDSR after {STEPS // 2} steps", f"{midpoint['psnr']:.2f}",
                  f"{midpoint['ssim']:.4f}")
    table.add_row(f"EDSR after {STEPS} steps", f"{trained['psnr']:.2f}",
                  f"{trained['ssim']:.4f}")
    table.add_row("bicubic (classical)", f"{bicubic['psnr']:.2f}",
                  f"{bicubic['ssim']:.4f}")
    save_report("fig04_quality", table.render())

    # learning is real and monotone at this horizon
    assert midpoint["psnr"] > untrained["psnr"] + 2.0
    assert trained["psnr"] >= midpoint["psnr"] - 0.5
    assert trained["ssim"] > untrained["ssim"]
    # losses decreased within each phase
    assert fin_res.final_loss < mid_res.losses[0]
    benchmark.extra_info.update(
        {
            "untrained_psnr": untrained["psnr"],
            "trained_psnr": trained["psnr"],
            "bicubic_psnr": bicubic["psnr"],
        }
    )
