"""Ablations over the design choices DESIGN.md calls out.

1. analytic vs event-driven timing engines agree;
2. Horovod cycle-time tuning (§II-D): the stock 3.5 ms cycle fragments the
   EDSR gradient stream, the tuned cycle produces Table I's large bins;
3. hierarchical vs flat-ring allreduce at multi-node scale;
4. the CUDA 10.1 gate: MV2_VISIBLE_DEVICES is inert on older runtimes;
5. fusion threshold sweep.
"""

from __future__ import annotations

import pytest

from repro.core import MPI_OPT, ScalingStudy, StudyConfig
from repro.core.calibration import HOROVOD_TUNED
from repro.cuda.runtime import CudaVersion
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, PendingTensor, TensorFusion
from repro.models import get_model_cost
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode
from repro.mpi.collectives.allreduce import allreduce_timing
from repro.mpi.process import SingletonDevicePolicy
from repro.sim import Environment
from repro.utils.tables import TextTable
from repro.utils.units import MIB


def _world(num_gpus, mode, config=None):
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, num_gpus // 4))
    spec = WorldSpec(
        num_ranks=num_gpus,
        policy=SingletonDevicePolicy(),
        config=config or Mv2Config(mv2_visible_devices="all", registration_cache=True),
    )
    return MpiWorld(cluster, spec, mode=mode)


def test_ablation_analytic_vs_event_engine(benchmark, save_report):
    """The closed-form engine must track the contention-simulating engine."""

    def compute():
        rows = []
        for nbytes in (1 * MIB, 16 * MIB, 64 * MIB):
            times = {}
            for mode in (ExecutionMode.ANALYTIC, ExecutionMode.EVENT):
                world = _world(8, mode)
                t = allreduce_timing(
                    world.coster, list(range(8)), nbytes, algorithm="hierarchical"
                )
                times[mode] = t.time
            rows.append((nbytes, times[ExecutionMode.ANALYTIC],
                         times[ExecutionMode.EVENT]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = TextTable(
        ["Message", "analytic (ms)", "event (ms)", "ratio"],
        title="Ablation — analytic vs event-driven collective timing",
    )
    for nbytes, analytic, event in rows:
        table.add_row(
            f"{nbytes // MIB} MiB", analytic * 1e3, event * 1e3, event / analytic
        )
    save_report("ablation_engines", table.render())
    for _, analytic, event in rows:
        assert 0.55 < event / analytic < 1.8


def test_ablation_cycle_time_tuning(benchmark, save_report):
    """§II-D: tuned cycle time turns a fragmented message stream into the
    16-64 MB fused buffers of Table I."""

    def compute():
        cost = get_model_cost("edsr-paper")
        backward = 0.30
        tensors = [
            PendingTensor(t.name, t.nbytes, ready_time=t.ready_fraction * backward)
            for t in cost.gradient_schedule()
        ]
        out = {}
        for label, cycle in (("stock 3.5 ms", 3.5e-3), ("tuned 55 ms", 55e-3)):
            plan = TensorFusion(
                HorovodConfig(cycle_time_s=cycle)
            ).plan(tensors)
            sizes = plan.message_sizes()
            out[label] = {
                "messages": len(sizes),
                "max_mb": max(sizes) / MIB,
                "large": sum(1 for s in sizes if s >= 16 * MIB),
            }
        return out

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = TextTable(
        ["Cycle time", "messages", "largest (MiB)", ">=16 MiB msgs"],
        title="Ablation — HOROVOD_CYCLE_TIME tuning on the EDSR stream",
    )
    for label, d in data.items():
        table.add_row(label, d["messages"], f"{d['max_mb']:.1f}", d["large"])
    save_report("ablation_cycle_time", table.render())

    assert data["stock 3.5 ms"]["large"] == 0
    assert data["tuned 55 ms"]["large"] >= 2
    assert data["tuned 55 ms"]["messages"] < data["stock 3.5 ms"]["messages"]


def test_ablation_hierarchical_vs_flat_ring(benchmark, save_report):
    """Two-level allreduce vs flat ring across 8 nodes (32 GPUs)."""

    def compute():
        world = _world(32, ExecutionMode.ANALYTIC)
        nbytes = 32 * MIB
        flat = allreduce_timing(
            world.coster, list(range(32)), nbytes, algorithm="ring"
        ).time
        world2 = _world(32, ExecutionMode.ANALYTIC)
        hier = allreduce_timing(
            world2.coster, list(range(32)), nbytes, algorithm="hierarchical"
        ).time
        return flat, hier

    flat, hier = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_hierarchical",
        f"32 MiB allreduce over 32 GPUs / 8 nodes:\n"
        f"  flat ring:    {flat * 1e3:.2f} ms\n"
        f"  hierarchical: {hier * 1e3:.2f} ms",
    )
    assert hier < flat  # node-aware two-level wins on NVLink-dense nodes


def test_ablation_cuda_version_gate(benchmark, save_report):
    """MV2_VISIBLE_DEVICES only works on CUDA >= 10.1 (paper §III-C)."""

    def compute():
        out = {}
        for label, version in (("CUDA 10.0", CudaVersion(10, 0)),
                               ("CUDA 10.2", CudaVersion(10, 2))):
            cluster = Cluster(Environment(), LASSEN, num_nodes=1)
            spec = WorldSpec(
                num_ranks=4,
                policy=SingletonDevicePolicy(),
                config=Mv2Config(mv2_visible_devices="all",
                                 registration_cache=True),
                cuda_version=version,
            )
            world = MpiWorld(cluster, spec)
            out[label] = world.transport.select(0, 1, 64 * MIB).value
        return out

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_cuda_gate",
        "\n".join(f"{k}: 64 MiB intra-node transport = {v}" for k, v in data.items()),
    )
    assert data["CUDA 10.0"] == "host-staged"
    assert data["CUDA 10.2"] == "cuda-ipc"


@pytest.mark.parametrize("threshold_mib", [8, 64, 256])
def test_ablation_fusion_threshold(benchmark, threshold_mib):
    """Fusion threshold bounds message sizes without losing bytes."""

    def compute():
        cost = get_model_cost("edsr-paper")
        tensors = [
            PendingTensor(t.name, t.nbytes, ready_time=0.0)
            for t in cost.gradient_schedule()
        ]
        plan = TensorFusion(
            HorovodConfig(fusion_threshold=threshold_mib * MIB, cycle_time_s=0.0)
        ).plan(tensors)
        return plan.messages, cost.gradient_bytes

    messages, total = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert sum(m.nbytes for m in messages) == total
    # fused buffers respect the threshold; a single tensor larger than the
    # threshold is sent alone (Horovod's oversize rule)
    for m in messages:
        if m.fused:
            assert m.nbytes <= threshold_mib * MIB


def test_ablation_straggler_sensitivity(benchmark, save_report):
    """Compute jitter is a real term in the 512-GPU efficiency story."""

    def compute():
        calm = StudyConfig(measure_steps=1, jitter_sigma=0.0)
        noisy = StudyConfig(measure_steps=1, jitter_sigma=0.05)
        return (
            ScalingStudy(MPI_OPT, calm).run_point(64).images_per_second,
            ScalingStudy(MPI_OPT, noisy).run_point(64).images_per_second,
        )

    calm_rate, noisy_rate = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_straggler",
        f"64-GPU MPI-Opt throughput: sigma=0 -> {calm_rate:.0f} img/s, "
        f"sigma=0.05 -> {noisy_rate:.0f} img/s",
    )
    assert noisy_rate < calm_rate


def test_ablation_response_cache(benchmark, save_report):
    """Horovod's response cache removes the per-rank coordinator cost on
    repeated tensor sets — a scale-relevant term at 512 ranks."""

    def compute():
        from repro.hardware.cluster import build_cluster
        from repro.horovod.backend import build_backend
        from repro.horovod.engine import HorovodEngine
        from repro.mpi.process import WorldSpec
        from repro.models import get_model_cost

        cost = get_model_cost("edsr-paper")
        stream = [
            PendingTensor(t.name, t.nbytes, ready_time=t.ready_fraction * 0.30)
            for t in cost.gradient_schedule()
        ]
        out = {}
        for label, cached in (("off", False), ("on", True)):
            cluster = build_cluster(LASSEN, 128)
            spec = WorldSpec(num_ranks=128, policy=MPI_OPT.policy,
                             config=MPI_OPT.mv2)
            _, comm = build_backend(cluster, "mpi", world_spec=spec)
            engine = HorovodEngine(
                comm,
                HorovodConfig(cycle_time_s=55e-3, response_cache=cached),
            )
            engine.run_step(stream, backward_time=0.30)  # warm the cache
            timing = engine.run_step(stream, backward_time=0.30)
            out[label] = timing.coordination_time
        return out

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_response_cache",
        f"coordination per step at 128 GPUs: cache off {data['off'] * 1e3:.2f} ms, "
        f"cache on {data['on'] * 1e3:.2f} ms",
    )
    assert data["on"] < 0.5 * data["off"]


def test_ablation_eager_threshold(benchmark, save_report):
    """MV2_IBA_EAGER_THRESHOLD: small messages want the copy-based eager
    path (no handshake), large ones want zero-copy rendezvous."""

    def compute():
        from repro.hardware import Cluster as _Cluster
        from repro.mpi import MpiWorld as _World
        from repro.mpi.transports import TransportModel as _TM
        from repro.mpi.process import build_world as _build
        from repro.utils.units import KIB as _KIB

        rows = []
        for nbytes in (4 * _KIB, 64 * _KIB, 1 * MIB):
            times = {}
            for label, threshold in (("16K", 16 * _KIB), ("1M", 1 * MIB)):
                cluster = _Cluster(Environment(), LASSEN, num_nodes=2)
                config = Mv2Config(
                    mv2_visible_devices="all", registration_cache=True,
                    eager_threshold=threshold,
                )
                spec = WorldSpec(num_ranks=8, policy=SingletonDevicePolicy(),
                                 config=config)
                tm = _TM(cluster, config, _build(cluster, spec))
                tm.begin_collective()
                times[label] = tm.cost(0, 4, nbytes, src_buffer=1,
                                       dst_buffer=2).total
            rows.append((nbytes, times["16K"], times["1M"]))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = TextTable(
        ["Size", "threshold 16K (us)", "threshold 1M (us)"],
        title="Ablation — MV2_IBA_EAGER_THRESHOLD (inter-node, cold cache)",
    )
    for nbytes, t16, t1m in rows:
        table.add_row(f"{nbytes}", f"{t16 * 1e6:.1f}", f"{t1m * 1e6:.1f}")
    save_report("ablation_eager_threshold", table.render())
    # 64 KiB message: eager (big threshold) avoids handshake+registration
    assert rows[1][2] < rows[1][1]
    # 1 MiB message: zero-copy rendezvous (small threshold) wins over the
    # double-copy eager path
    assert rows[2][1] < rows[2][2]
