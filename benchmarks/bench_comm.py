"""Communication-stack regression harness: writes ``BENCH_comm.json``.

Standalone (no pytest-benchmark plugin) like ``bench_perf.py`` so CI can
run it directly and diff against a committed baseline::

    python benchmarks/bench_comm.py --quick --out BENCH_comm.json \
        --check-baseline benchmarks/baselines/BENCH_comm_baseline.json

Workloads:

* **collective_sweep** — prices allreduces across every backend x size x
  rank grid point through the routed stack; the *simulated* times for a
  set of anchor points are machine-independent and baseline-checked
  exactly (any drift means the cost model changed — bump the digest salt).
* **hierarchical_vs_ring** — the acceptance claim: the two-level backend
  beats a flat ring on multi-node worlds for every bandwidth-bound
  (>= 1 MB) message size; reports the speedups.
* **tuner** — autotunes the default grid cold then memo-warm; the tuned
  table digest is machine-independent and baseline-checked exactly.
* **routed_overhead** — wrapper tax of RoutedCommunicator over the raw
  backend communicator (collectives/sec ratio); the wall-clock rate is
  the tolerance-gated regression metric.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.comm import TuningConfig, build_communicator, tune_table
from repro.comm.selection import clear_active_tables
from repro.core import MPI_OPT
from repro.hardware import LASSEN
from repro.hardware.cluster import build_cluster
from repro.mpi import WorldSpec
from repro.mpi.comm import GpuBuffer

KIB = 1024
MIB = 1024 * 1024


def make_comm(backend: str, num_ranks: int):
    cluster = build_cluster(LASSEN, num_ranks)
    spec = None
    if backend == "mpi":
        spec = WorldSpec(num_ranks=num_ranks, policy=MPI_OPT.policy,
                         config=MPI_OPT.mv2)
    _world, comm = build_communicator(
        cluster, backend, world_spec=spec, num_ranks=num_ranks
    )
    return comm


def virtual(nbytes: int, n: int):
    return [GpuBuffer.virtual(nbytes) for _ in range(n)]


def time_collective_sweep(quick: bool) -> dict:
    rank_counts = (4, 16) if quick else (4, 16, 64, 512)
    sizes = (4 * KIB, 1 * MIB, 16 * MIB) if quick else (
        4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB
    )
    backends = ("mpi", "nccl", "hierarchical")
    anchors: dict[str, float] = {}
    ops = 0
    t0 = perf_counter()
    for backend in backends:
        for num_ranks in rank_counts:
            comm = make_comm(backend, num_ranks)
            for nbytes in sizes:
                timing = comm.allreduce(virtual(nbytes, num_ranks))
                anchors[f"{backend}:{nbytes}x{num_ranks}"] = timing.time
                ops += 1
    wall_s = perf_counter() - t0
    return {
        "ops": ops,
        "wall_s": wall_s,
        "ops_per_sec": ops / wall_s if wall_s > 0 else float("inf"),
        # machine-independent: simulated seconds per anchor collective
        "anchors": anchors,
    }


def time_hierarchical_vs_ring(quick: bool) -> dict:
    rank_counts = (16,) if quick else (16, 64, 512)
    sizes = (1 * MIB, 16 * MIB) if quick else (1 * MIB, 16 * MIB, 64 * MIB)
    speedups = {}
    for num_ranks in rank_counts:
        hier = make_comm("hierarchical", num_ranks)
        mpi = make_comm("mpi", num_ranks)
        for nbytes in sizes:
            hier_t = hier.allreduce(virtual(nbytes, num_ranks)).time
            ring_t = mpi.allreduce(
                virtual(nbytes, num_ranks), algorithm="ring"
            ).time
            assert hier_t < ring_t, (
                f"hierarchical ({hier_t:.3e}s) must beat flat ring "
                f"({ring_t:.3e}s) at {nbytes}B x {num_ranks} ranks"
            )
            speedups[f"{nbytes}x{num_ranks}"] = ring_t / hier_t
    return {"speedup_vs_ring": speedups, "min_speedup": min(speedups.values())}


def time_tuner(quick: bool) -> dict:
    from repro.comm.tuning import _TUNE_MEMO

    config = TuningConfig(
        byte_points=(4 * KIB, 1 * MIB, 16 * MIB) if quick else (
            4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB
        ),
        rank_counts=(4, 16) if quick else (4, 16, 64),
    )
    _TUNE_MEMO.clear()
    t0 = perf_counter()
    table = tune_table(config)
    cold_s = perf_counter() - t0
    t0 = perf_counter()
    again = tune_table(config)
    warm_s = perf_counter() - t0
    assert again is table, "tuner memo missed on identical config"
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "table_digest": table.digest(),
    }


def time_routed_overhead(quick: bool) -> dict:
    from repro.mpi import MpiWorld

    iterations = 200 if quick else 1000
    num_ranks = 16
    cluster = build_cluster(LASSEN, num_ranks)
    spec = WorldSpec(num_ranks=num_ranks, policy=MPI_OPT.policy,
                     config=MPI_OPT.mv2)
    raw = MpiWorld(cluster, spec).communicator()
    routed = make_comm("mpi", num_ranks)
    buffers = virtual(1 * MIB, num_ranks)

    t0 = perf_counter()
    for _ in range(iterations):
        raw.allreduce(buffers)
    raw_s = perf_counter() - t0
    t0 = perf_counter()
    for _ in range(iterations):
        routed.allreduce(buffers)
    routed_s = perf_counter() - t0
    overhead = routed_s / raw_s if raw_s > 0 else float("inf")
    return {
        "iterations": iterations,
        "raw_s": raw_s,
        "routed_s": routed_s,
        "overhead_factor": overhead,
        "routed_ops_per_sec": iterations / routed_s if routed_s > 0 else float("inf"),
    }


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    base_rate = baseline.get("routed_ops_per_sec")
    rate = report["routed_ops_per_sec"]
    if base_rate and rate < base_rate * (1.0 - tolerance):
        failures.append(
            f"routed collectives/sec regressed: {rate:.0f} < {base_rate:.0f} "
            f"- {tolerance:.0%} tolerance"
        )
    # simulated times and table digests are machine-independent: exact match
    base_anchors = baseline.get("anchors", {})
    anchors = report["workloads"]["collective_sweep"]["anchors"]
    for key, base_time in base_anchors.items():
        got = anchors.get(key)
        if got is not None and got != base_time:
            failures.append(
                f"anchor {key} drifted: {got!r} != baseline {base_time!r} "
                f"(cost model changed — regenerate baseline + bump salt)"
            )
    # the tuner grid depends on --quick; only compare like with like
    base_digest = baseline.get("table_digest")
    digest = report["workloads"]["tuner"]["table_digest"]
    if (base_digest and baseline.get("quick") == report["quick"]
            and digest != base_digest):
        failures.append(
            f"tuned table digest drifted: {digest} != baseline {base_digest}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_comm.json")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on rate regression or simulated-time drift")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed collectives/sec regression fraction")
    args = parser.parse_args(argv)

    clear_active_tables()
    workloads = {}
    print(f"[bench_comm] collective sweep ({'quick' if args.quick else 'full'}) ...")
    workloads["collective_sweep"] = time_collective_sweep(args.quick)
    print("[bench_comm]   {ops} collectives in {wall_s:.2f}s = "
          "{ops_per_sec:.0f}/s".format(**workloads["collective_sweep"]))
    print("[bench_comm] hierarchical vs flat ring ...")
    workloads["hierarchical_vs_ring"] = time_hierarchical_vs_ring(args.quick)
    print("[bench_comm]   min speedup {min_speedup:.2f}x".format(
        **workloads["hierarchical_vs_ring"]))
    print("[bench_comm] autotuner ...")
    workloads["tuner"] = time_tuner(args.quick)
    print("[bench_comm]   cold {cold_s:.2f}s  warm {warm_s:.4f}s  "
          "digest {table_digest}".format(**workloads["tuner"]))
    print("[bench_comm] routed-wrapper overhead ...")
    workloads["routed_overhead"] = time_routed_overhead(args.quick)
    print("[bench_comm]   {overhead_factor:.2f}x raw, "
          "{routed_ops_per_sec:.0f} ops/s".format(**workloads["routed_overhead"]))

    report = {
        "quick": args.quick,
        "workloads": workloads,
        "routed_ops_per_sec": workloads["routed_overhead"]["routed_ops_per_sec"],
        "anchors": workloads["collective_sweep"]["anchors"],
        "table_digest": workloads["tuner"]["table_digest"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_comm] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_comm] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_comm] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
