"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Scenario sweeps are expensive and shared by several figures
(10, 12, 13 plot the same runs), so a session-scoped cache computes each
(scenario, gpu_count) point once.

Every benchmark writes its reproduced rows to
``benchmarks/results/<name>.txt`` so the regenerated data is inspectable
after the run, and attaches headline numbers to ``benchmark.extra_info``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SCENARIOS, ScalingStudy, StudyConfig
from repro.core.study import PAPER_GPU_COUNTS, ScalingPoint

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: sweep resolution used by the shared cache (full paper range)
GPU_COUNTS = PAPER_GPU_COUNTS


class SweepCache:
    """Lazily computes and memoizes scaling points per scenario."""

    def __init__(self):
        self._points: dict[tuple[str, int], ScalingPoint] = {}
        self._studies: dict[str, ScalingStudy] = {}
        self.config = StudyConfig(measure_steps=2)

    def study(self, scenario_name: str) -> ScalingStudy:
        if scenario_name not in self._studies:
            scenario = next(s for s in SCENARIOS if s.name == scenario_name)
            self._studies[scenario_name] = ScalingStudy(scenario, self.config)
        return self._studies[scenario_name]

    def point(self, scenario_name: str, gpus: int) -> ScalingPoint:
        key = (scenario_name, gpus)
        if key not in self._points:
            study = self.study(scenario_name)
            point = study.run_point(gpus)
            point.efficiency = point.images_per_second / (
                gpus * study.single_gpu_rate()
            )
            self._points[key] = point
        return self._points[key]

    def sweep(self, scenario_name: str, gpu_counts=None) -> list[ScalingPoint]:
        return [self.point(scenario_name, g) for g in (gpu_counts or GPU_COUNTS)]


@pytest.fixture(scope="session")
def sweeps() -> SweepCache:
    return SweepCache()


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_report(results_dir):
    def _save(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        # also echo to the captured stdout for `pytest -s` runs
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
