"""Registration-cache LRU micro-benchmark: per-op cost must be O(1).

The cache keeps its entries in an ``OrderedDict`` of ``buffer_id -> extent``
with ``move_to_end``/``popitem`` maintenance, so an ``acquire`` costs the
same whether 1 000 or 64 000 registrations are resident.  This benchmark
pins that: per-op time at high entry counts must stay within a small
factor of the per-op time at low counts (a linear scan would blow the
bound by ~64x).
"""

from __future__ import annotations

import time

from repro.net.regcache import RegistrationCache

SMALL = 1_000
LARGE = 64_000
OPS = 50_000


def _loaded_cache(entries: int) -> RegistrationCache:
    cache = RegistrationCache(max_entries=entries)
    cache.begin_transaction()
    for buffer_id in range(entries):
        cache.acquire(buffer_id, 65536)
    return cache

def _hit_loop(cache: RegistrationCache, entries: int, ops: int) -> None:
    # hits spread across the whole key range: every acquire is a dict probe
    # plus a move_to_end, regardless of the resident count
    step = max(1, entries // 97)
    buffer_id = 0
    for _ in range(ops):
        cache.begin_transaction()
        cache.acquire(buffer_id, 65536)
        buffer_id = (buffer_id + step) % entries


def _per_op_seconds(entries: int, ops: int = OPS) -> float:
    cache = _loaded_cache(entries)
    _hit_loop(cache, entries, ops // 10)  # warm the interpreter caches
    t0 = time.perf_counter()
    _hit_loop(cache, entries, ops)
    return (time.perf_counter() - t0) / ops


def test_regcache_hit_cost_flat_at_high_entry_counts(benchmark):
    per_op_small = _per_op_seconds(SMALL)
    per_op_large = benchmark.pedantic(
        lambda: _per_op_seconds(LARGE), rounds=1, iterations=1
    )
    ratio = per_op_large / per_op_small
    benchmark.extra_info.update(
        {
            "per_op_small_ns": per_op_small * 1e9,
            "per_op_large_ns": per_op_large * 1e9,
            "large_over_small": ratio,
        }
    )
    # 64x more resident entries; O(1) bookkeeping keeps per-op cost flat.
    # Allow generous jitter headroom — a linear scan would score >10x.
    assert ratio < 3.0, (
        f"per-op cost grew {ratio:.1f}x from {SMALL} to {LARGE} entries "
        f"({per_op_small * 1e9:.0f}ns -> {per_op_large * 1e9:.0f}ns)"
    )


def test_regcache_eviction_cost_flat(benchmark):
    """Steady-state miss+evict churn is O(1) per op too (popitem FIFO end)."""

    def churn(entries: int, ops: int = 20_000) -> float:
        cache = _loaded_cache(entries)
        t0 = time.perf_counter()
        for i in range(ops):
            cache.begin_transaction()
            # new buffer id -> miss -> insert -> evict the LRU entry
            cache.acquire(entries + i, 65536)
        return (time.perf_counter() - t0) / ops

    small = churn(SMALL)
    large = benchmark.pedantic(lambda: churn(LARGE), rounds=1, iterations=1)
    ratio = large / small
    benchmark.extra_info["large_over_small"] = ratio
    assert ratio < 3.0, f"eviction cost grew {ratio:.1f}x with entry count"
