"""Fig. 13 — EDSR scaling efficiency, all scenarios.

Paper headlines: default MPI drops below 60% efficiency at 512 GPUs;
MPI-Opt stays above 70%; the gap is ~15.6 percentage points.
"""

from __future__ import annotations

from conftest import GPU_COUNTS

from repro.core.calibration import TARGETS
from repro.core.efficiency import efficiency_gain_points
from repro.utils.tables import TextTable

SCENARIO_NAMES = ["MPI", "MPI-Reg", "MPI-Opt", "NCCL"]


def test_fig13_scaling_efficiency(benchmark, sweeps, save_report):
    def compute():
        return {name: sweeps.sweep(name) for name in SCENARIO_NAMES}

    data = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["GPUs"] + SCENARIO_NAMES,
        title="Fig. 13 — EDSR scaling efficiency (vs 1 GPU)",
    )
    for i, gpus in enumerate(GPU_COUNTS):
        table.add_row(
            gpus, *[f"{data[name][i].efficiency:.1%}" for name in SCENARIO_NAMES]
        )
    gap = efficiency_gain_points(
        data["MPI-Opt"][-1].efficiency, data["MPI"][-1].efficiency
    )
    save_report(
        "fig13_efficiency",
        table.render()
        + f"\nMPI-Opt - MPI gap at 512 GPUs: {gap:+.1f} points (paper: +15.6)",
    )

    default_512 = data["MPI"][-1].efficiency
    opt_512 = data["MPI-Opt"][-1].efficiency
    # paper targets (shape):
    assert default_512 < TARGETS["fig13_default_efficiency_512"] + 0.03
    assert opt_512 > TARGETS["fig13_opt_efficiency_512"]
    assert 10.0 < gap < 23.0  # paper: 15.6 points
    # every scenario's efficiency declines monotonically in the tail
    for name in SCENARIO_NAMES:
        effs = [p.efficiency for p in data[name]]
        assert effs[-1] < effs[0]
    # NCCL and MPI-Opt are the two leaders at scale
    leaders = sorted(
        SCENARIO_NAMES, key=lambda n: data[n][-1].efficiency, reverse=True
    )[:2]
    assert set(leaders) == {"MPI-Opt", "NCCL"}
    benchmark.extra_info.update(
        {f"eff512_{name}": data[name][-1].efficiency for name in SCENARIO_NAMES}
    )
