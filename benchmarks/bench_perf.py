"""Perf-regression harness: times the canonical workloads and writes
``BENCH_perf.json``.

Unlike the ``bench_fig*`` files (pytest-benchmark suites reproducing the
paper's figures), this is a standalone script so CI can run it without a
benchmark plugin and diff the result against a committed baseline::

    python benchmarks/bench_perf.py --quick --out BENCH_perf.json \
        --check-baseline benchmarks/baselines/BENCH_perf_baseline.json

Workloads:

* **fig10_sweep** — the Fig. 10 scenario sweep three ways: serial with
  every step simulated (the pre-perf-layer behaviour), through the fast
  path (steady-state extrapolation + result cache, cold), and again warm.
  Asserts the >=3x warm speedup and the paper-shape invariants (MPI-Opt
  beats MPI at scale) on the fast-path results.
* **fig14_profile** — the hvprof profiling run behind Fig. 14 / Table I,
  asserting the Table I bin structure (large bins improve >30%, small
  bins barely move).
* **functional_16rank** — a real 16-rank data-parallel training step
  (gradients actually averaged), the end-to-end latency anchor.
* **event_engine** — event-mode hierarchical allreduce at 16 ranks; its
  ``simulated events/sec`` is the regression metric compared against the
  baseline (wall-clock is too machine-dependent to gate on).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig
from repro.core.scenarios import scenario_by_name
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.mpi import MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode
from repro.mpi.collectives.allreduce import allreduce_timing
from repro.perf import ResultCache, run_scenario_sweeps
from repro.profiling import Hvprof, improvement_summary
from repro.sim import Environment

MIB = 1024 * 1024


def _bench_config(**overrides) -> StudyConfig:
    """Zero-jitter performance mode: every step identical, so steady-state
    extrapolation is exact and results are machine-independent."""
    defaults = dict(measure_steps=8, jitter_sigma=0.0)
    defaults.update(overrides)
    return StudyConfig(**defaults)


def time_fig10_sweep(quick: bool, jobs: int) -> dict:
    scenarios = ["MPI", "MPI-Opt"] if quick else ["MPI", "MPI-Opt", "NCCL"]
    gpu_counts = [4, 8, 16, 32] if quick else [4, 8, 16, 32, 64, 128, 256, 512]
    serial_cfg = _bench_config(steady_detect=False)
    fast_cfg = _bench_config()

    t0 = perf_counter()
    serial = {
        name: ScalingStudy(scenario_by_name(name), serial_cfg).run(gpu_counts)
        for name in scenarios
    }
    serial_s = perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = perf_counter()
        cold = run_scenario_sweeps(
            scenarios, gpu_counts, fast_cfg, workers=jobs, cache=cache
        )
        cold_s = perf_counter() - t0
        t0 = perf_counter()
        warm = run_scenario_sweeps(
            scenarios, gpu_counts, fast_cfg, workers=jobs, cache=cache
        )
        warm_s = perf_counter() - t0
        cache_stats = cache.stats()

    # fast-path correctness: warm is byte-identical to cold (same digests),
    # and extrapolation tracks the fully-simulated serial run to ulp noise
    for name in scenarios:
        for pc, pw, ps in zip(cold[name], warm[name], serial[name]):
            assert pw.step_time == pc.step_time, "warm cache diverged from cold"
            assert abs(pc.step_time - ps.step_time) <= 1e-12 * ps.step_time, (
                f"extrapolated {name}@{pc.num_gpus} drifted: "
                f"{pc.step_time} vs {ps.step_time}"
            )

    # paper shape (Fig. 10/12): the optimized stack scales better
    top = gpu_counts[-1]
    mpi_eff = next(p for p in warm["MPI"] if p.num_gpus == top).efficiency
    opt_eff = next(p for p in warm["MPI-Opt"] if p.num_gpus == top).efficiency
    assert opt_eff > mpi_eff, (
        f"MPI-Opt efficiency ({opt_eff:.3f}) must beat MPI ({mpi_eff:.3f}) "
        f"at {top} GPUs"
    )

    speedup_warm = serial_s / warm_s if warm_s > 0 else float("inf")
    assert speedup_warm >= 3.0, (
        f"warm fast path only {speedup_warm:.1f}x over serial (need >=3x)"
    )
    return {
        "scenarios": scenarios,
        "gpu_counts": gpu_counts,
        "serial_s": serial_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": serial_s / cold_s if cold_s > 0 else float("inf"),
        "speedup_warm": speedup_warm,
        "mpi_efficiency_top": mpi_eff,
        "mpi_opt_efficiency_top": opt_eff,
        "cache": cache_stats,
    }


def time_fig14_profile(quick: bool) -> dict:
    steps = 20 if quick else 100
    config = StudyConfig(measure_steps=steps)
    profiles = {}
    t0 = perf_counter()
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(4, hvprof=hv)
        profiles[scenario.name] = hv
    wall_s = perf_counter() - t0

    # Table I bin structure: large bins improve ~50%, total lands 30-62%
    summary = improvement_summary(profiles["MPI"], profiles["MPI-Opt"])
    large = [
        summary[label]
        for label in ("16 MB - 32 MB", "32 MB - 64 MB")
        if label in summary and summary[label] != 0.0
    ]
    assert large, "no populated large bins in the hvprof profile"
    for improvement in large:
        assert improvement > 30.0, f"large-bin improvement {improvement:.1f}% < 30%"
    assert 30.0 < summary["Total"] < 62.0, (
        f"total improvement {summary['Total']:.1f}% outside the Table I band"
    )
    return {"steps": steps, "wall_s": wall_s, "total_improvement_pct": summary["Total"]}


def time_functional_step(quick: bool) -> dict:
    """Real 16-rank data-parallel training steps: gradients actually
    computed by the numpy autograd stack and averaged through the MPI
    communicator (the integration-suite workload at benchmark scale)."""
    from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
    from repro.models import EDSR, EDSR_TINY
    from repro.trainer import DistributedTrainer

    num_ranks = 16
    steps = 1 if quick else 3
    cluster = Cluster(Environment(), LASSEN, num_nodes=num_ranks // 4)
    spec = WorldSpec(
        num_ranks=num_ranks, policy=MPI_OPT.policy, config=MPI_OPT.mv2
    )
    world = MpiWorld(cluster, spec)
    engine = HorovodEngine(world.communicator(), HorovodConfig(cycle_time_s=1e-3))
    src = SyntheticDiv2k(height=32, width=32, seed=3)
    dataset = SRDataset(src, split="train", degradation=DegradationConfig(scale=2))

    t0 = perf_counter()
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
        engine, dataset, batch_per_rank=1, lr_patch=8, seed=4,
    )
    result = trainer.train(steps=steps)
    wall_s = perf_counter() - t0
    assert len(result.losses) == steps
    return {"ranks": num_ranks, "steps": steps, "wall_s": wall_s}


def time_event_engine(quick: bool) -> dict:
    """Event-mode hierarchical allreduce: the events/sec regression metric."""
    iterations = 30 if quick else 100
    num_ranks = 16
    cluster = Cluster(Environment(), LASSEN, num_nodes=num_ranks // 4)
    spec = WorldSpec(
        num_ranks=num_ranks, policy=MPI_OPT.policy, config=MPI_OPT.mv2
    )
    world = MpiWorld(cluster, spec, mode=ExecutionMode.EVENT)
    env = cluster.env
    ranks = list(range(num_ranks))
    t0 = perf_counter()
    sim_time = 0.0
    for _ in range(iterations):
        t = allreduce_timing(world.coster, ranks, 16 * MIB, algorithm="hierarchical")
        sim_time += t.time
    wall_s = perf_counter() - t0
    events = env.events_processed
    return {
        "iterations": iterations,
        "wall_s": wall_s,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else float("inf"),
        "simulated_time_s": sim_time,
    }


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    base_rate = baseline.get("events_per_sec")
    rate = report["events_per_sec"]
    if base_rate and rate < base_rate * (1.0 - tolerance):
        failures.append(
            f"events/sec regressed: {rate:.0f} < {base_rate:.0f} "
            f"- {tolerance:.0%} tolerance"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1))
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail if events/sec regresses vs this baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed events/sec regression fraction")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_perf] fig10 sweep ({'quick' if args.quick else 'full'}) ...")
    workloads["fig10_sweep"] = time_fig10_sweep(args.quick, args.jobs)
    print(
        "[bench_perf]   serial {serial_s:.2f}s  cold {cold_s:.2f}s  "
        "warm {warm_s:.3f}s  ({speedup_warm:.0f}x warm)".format(
            **workloads["fig10_sweep"]
        )
    )
    print("[bench_perf] fig14 hvprof profile ...")
    workloads["fig14_profile"] = time_fig14_profile(args.quick)
    print("[bench_perf]   {wall_s:.2f}s, Table I total {total_improvement_pct:.1f}%".format(
        **workloads["fig14_profile"]))
    print("[bench_perf] functional 16-rank step ...")
    workloads["functional_16rank"] = time_functional_step(args.quick)
    print("[bench_perf]   {wall_s:.2f}s".format(**workloads["functional_16rank"]))
    print("[bench_perf] event engine ...")
    workloads["event_engine"] = time_event_engine(args.quick)
    print("[bench_perf]   {events} events in {wall_s:.2f}s = {events_per_sec:.0f}/s".format(
        **workloads["event_engine"]))

    report = {
        "quick": args.quick,
        "jobs": args.jobs,
        "workloads": workloads,
        "events_per_sec": workloads["event_engine"]["events_per_sec"],
        "sweep_speedup_warm": workloads["fig10_sweep"]["speedup_warm"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_perf] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_perf] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_perf] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
