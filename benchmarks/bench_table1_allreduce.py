"""Table I — allreduce time performance improvement (default vs optimized).

Paper values (100 steps, message-size bins):

    1-128 KB        392.0 ->  391.2 ms   (~0%)
    128 KB - 16 MB  320.7 ->  342.4 ms   (~0%)
    16 MB - 32 MB  1321.6 ->  619.6 ms   (53.1%)
    32 MB - 64 MB  5145.6 -> 2587.2 ms   (49.7%)
    Total          7179.9 -> 3918.5 ms   (45.4%)

We assert the *structure*: negligible change below 16 MB, ~half above,
and a total improvement in the 30-60% band.
"""

from __future__ import annotations

from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig
from repro.core.calibration import TARGETS
from repro.profiling import Hvprof, comparison_table, improvement_summary

STEPS = 100
GPUS = 4


def run_profiles():
    config = StudyConfig(measure_steps=STEPS)
    out = {}
    for scenario in (MPI_DEFAULT, MPI_OPT):
        hv = Hvprof()
        ScalingStudy(scenario, config).run_point(GPUS, hvprof=hv)
        out[scenario.name] = hv
    return out


def test_table1_allreduce_improvement(benchmark, save_report):
    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    default, optimized = profiles["MPI"], profiles["MPI-Opt"]

    table = comparison_table(default, optimized)
    summary = improvement_summary(default, optimized)
    save_report(
        "table1_allreduce",
        table
        + f"\npaper total improvement: {TARGETS['table1_total_improvement_pct']}%"
        f"  |  ours: {summary['Total']:.1f}%",
    )

    # structure assertions (Table I's signature)
    small_bins = [summary["1-128 KB"], summary["128 KB - 16 MB"]]
    populated_small = [
        s for label, s in zip(("1-128 KB", "128 KB - 16 MB"), small_bins)
        if default.by_bin()[_bin(label)].count > 0
    ]
    for s in populated_small:
        assert abs(s) < 25.0  # ~0 improvement below 16 MB
    large = [
        summary[label]
        for label in ("16 MB - 32 MB", "32 MB - 64 MB")
        if default.by_bin()[_bin(label)].count > 0
    ]
    assert large
    for s in large:
        assert s > 30.0  # paper: ~50%
    assert 30.0 < summary["Total"] < 62.0  # paper: 45.4%
    benchmark.extra_info["total_improvement_pct"] = summary["Total"]
    benchmark.extra_info.update(
        {f"bin_{k}": v for k, v in summary.items() if k != "Total"}
    )


def _bin(label):
    from repro.profiling import PAPER_BINS

    return next(b for b in PAPER_BINS if b.label == label)
