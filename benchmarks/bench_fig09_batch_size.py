"""Fig. 9 — single-GPU batch-size evaluation (paper §V).

Throughput vs. batch size for paper-scale EDSR on one V100: rises steeply
at small batches, saturates near batch 4-8 (why the paper trains at 4),
and hits the 16 GB memory wall before batch 128.
"""

from __future__ import annotations

from repro.hardware import V100_16GB
from repro.models import get_model_cost
from repro.models.costing import ThroughputModel, TrainingMemoryModel
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes

BATCHES = [1, 2, 4, 8, 16, 32, 64]


def compute_fig9():
    cost = get_model_cost("edsr-paper")
    throughput = ThroughputModel(cost, V100_16GB)
    memory = TrainingMemoryModel(cost)
    hbm = V100_16GB.memory_bytes - V100_16GB.context_overhead_bytes
    rows = []
    for batch in BATCHES:
        required = memory.bytes_required(batch)
        rows.append(
            {
                "batch": batch,
                "img_s": throughput.images_per_second(batch),
                "memory": required,
                "fits": required <= hbm,
            }
        )
    return rows, memory.max_batch(hbm)


def test_fig09_batch_size_sweep(benchmark, save_report):
    rows, max_batch = benchmark.pedantic(compute_fig9, rounds=1, iterations=1)

    table = TextTable(
        ["Batch", "images/s", "HBM required", "fits 16GB"],
        title="Fig. 9 — EDSR single-GPU batch-size evaluation",
    )
    for row in rows:
        table.add_row(
            row["batch"], f"{row['img_s']:.2f}", format_bytes(row["memory"]),
            "yes" if row["fits"] else "OOM",
        )
    save_report("fig09_batch_size", table.render() + f"\nmax batch: {max_batch}")

    rates = [r["img_s"] for r in rows]
    # monotone non-decreasing, saturating (not linear)
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert rates[-1] < 1.5 * rates[2]  # batch 64 gains <50% over batch 4
    # the paper's batch 4 sits at >=85% of peak throughput
    assert rates[2] > 0.85 * rates[-1]
    # memory wall exists and is beyond the paper's operating point
    assert 16 <= max_batch < 128
    benchmark.extra_info["max_batch"] = int(max_batch)
    benchmark.extra_info["img_s_at_batch4"] = rates[2]


def test_fig09_overhead_kernels_shrink_batch_space(benchmark):
    """Fig. 6a side of the sweep: 4 undisciplined processes cost batch room."""

    def max_batches():
        memory = TrainingMemoryModel(get_model_cost("edsr-paper"))
        hbm = V100_16GB.memory_bytes
        one_ctx = memory.max_batch(hbm - V100_16GB.context_overhead_bytes)
        four_ctx = memory.max_batch(hbm - 4 * V100_16GB.context_overhead_bytes)
        return one_ctx, four_ctx

    one_ctx, four_ctx = benchmark.pedantic(max_batches, rounds=1, iterations=1)
    assert four_ctx < one_ctx  # the restricted hyperparameter space (§III-C)
