"""Serving-tier regression harness: times the canonical serving sweep and
writes ``BENCH_serve.json``.

Standalone like ``bench_perf.py`` (no benchmark plugin needed) so CI can
run it and diff against a committed baseline::

    python benchmarks/bench_serve.py --quick --out BENCH_serve.json \
        --check-baseline benchmarks/baselines/BENCH_serve_baseline.json

Workloads:

* **policy_sweep** — the Poisson serving scenario under all three routing
  policies, cold (simulated) then warm (cache hits), asserting the warm
  results are byte-identical to cold.  The regression gate is the
  *simulated* per-policy ``p99_ms`` and ``goodput_rps``: these are fully
  deterministic, so any drift means the serving timing semantics changed
  — intentional changes must update the baseline (and the cache salt).
* **failover** — a replica killed mid-run; asserts the accounting
  invariant (every request completed or shed, none dropped) and that the
  watchdog detected the failure and retried its orphans.
* **engine_rate** — simulated serving events/sec (informational; too
  machine-dependent to gate on).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faults import FaultPlan, RankFailure
from repro.perf import ResultCache
from repro.serve import (
    POLICY_NAMES,
    ServeJob,
    ServeScenario,
    run_serve_jobs,
    simulate_serve,
)

SEED = 7


def _jobs(duration_s: float) -> list[ServeJob]:
    return [
        ServeJob(
            ServeScenario(name=f"bench-{policy}", routing=policy),
            duration_s=duration_s,
            seed=SEED,
        )
        for policy in POLICY_NAMES
    ]


def time_policy_sweep(quick: bool, workers: int) -> dict:
    duration_s = 30.0 if quick else 60.0
    jobs = _jobs(duration_s)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = perf_counter()
        cold = run_serve_jobs(jobs, workers=workers, cache=cache)
        cold_s = perf_counter() - t0
        t0 = perf_counter()
        warm = run_serve_jobs(jobs, workers=workers, cache=cache)
        warm_s = perf_counter() - t0
        stats = cache.stats()

    for a, b in zip(cold, warm):
        assert a.to_payload() == b.to_payload(), "warm cache diverged from cold"

    policies = {}
    for report in cold:
        s = report.summary
        assert s["arrived"] == s["completed"] + s["shed"], (
            f"{report.policy}: requests dropped"
        )
        policies[report.policy] = {
            "p99_ms": s["latency_ms"]["p99"],
            "goodput_rps": s["goodput_rps"],
            "slo_attainment": s["slo_attainment"],
        }
    return {
        "duration_s": duration_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cache": stats,
        "policies": policies,
    }


def time_failover(quick: bool) -> dict:
    duration_s = 20.0 if quick else 60.0
    plan = FaultPlan(faults=(RankFailure(rank=0, time=duration_s / 4),))
    t0 = perf_counter()
    report = simulate_serve(
        ServeScenario(name="bench-failover"),
        duration_s=duration_s,
        seed=SEED,
        fault_plan=plan,
    )
    wall_s = perf_counter() - t0
    s = report.summary
    assert s["arrived"] == s["completed"] + s["shed"], "requests dropped"
    assert s["detections"] == 1, "failure never detected"
    assert s["retried_requests"] >= 1, "no failover retries recorded"
    return {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "retried_requests": s["retried_requests"],
        "cold_starts": s["cold_starts"],
    }


def time_engine_rate(quick: bool) -> dict:
    """Wall-clock rate of the serving event loop (informational)."""
    duration_s = 30.0 if quick else 120.0
    t0 = perf_counter()
    report = simulate_serve(
        ServeScenario(name="bench-rate"), duration_s=duration_s, seed=SEED
    )
    wall_s = perf_counter() - t0
    arrived = report.summary["arrived"]
    return {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "requests": arrived,
        "requests_per_wall_sec": arrived / wall_s if wall_s > 0 else float("inf"),
    }


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    for policy, base in baseline.get("policies", {}).items():
        got = report["workloads"]["policy_sweep"]["policies"].get(policy)
        if got is None:
            failures.append(f"policy {policy} missing from the sweep")
            continue
        for metric in ("p99_ms", "goodput_rps"):
            want, have = base[metric], got[metric]
            if abs(have - want) > tolerance * max(abs(want), 1e-12):
                failures.append(
                    f"{policy}.{metric} drifted: {have:.6g} vs baseline "
                    f"{want:.6g} (tolerance {tolerance:.0%}) — serving "
                    f"timing semantics changed; update the baseline and "
                    f"bump CACHE_VERSION_SALT if intentional"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced durations for CI smoke runs")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1))
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail if simulated serving metrics drift")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="allowed relative drift (simulated metrics are "
                             "deterministic, so this is float-noise margin)")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_serve] policy sweep ({'quick' if args.quick else 'full'}) ...")
    workloads["policy_sweep"] = time_policy_sweep(args.quick, args.jobs)
    print(
        "[bench_serve]   cold {cold_s:.2f}s  warm {warm_s:.3f}s".format(
            **workloads["policy_sweep"]
        )
    )
    print("[bench_serve] failover ...")
    workloads["failover"] = time_failover(args.quick)
    print(
        "[bench_serve]   {wall_s:.2f}s, {retried_requests} retried, "
        "{cold_starts} cold start(s)".format(**workloads["failover"])
    )
    print("[bench_serve] engine rate ...")
    workloads["engine_rate"] = time_engine_rate(args.quick)
    print(
        "[bench_serve]   {requests} requests in {wall_s:.2f}s = "
        "{requests_per_wall_sec:.0f}/s".format(**workloads["engine_rate"])
    )

    report = {
        "quick": args.quick,
        "jobs": args.jobs,
        "seed": SEED,
        "workloads": workloads,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_serve] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_serve] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_serve] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
