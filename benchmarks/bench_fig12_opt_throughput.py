"""Fig. 12 — optimized distributed EDSR training performance.

MPI-Opt (CUDA IPC restored via MV2_VISIBLE_DEVICES + registration cache)
vs. default MPI.  Paper headline: ~26% throughput improvement (1.26x) at
scale.
"""

from __future__ import annotations

from conftest import GPU_COUNTS

from repro.core.efficiency import speedup
from repro.utils.tables import TextTable


def test_fig12_optimized_throughput(benchmark, sweeps, save_report):
    def compute():
        return {
            "MPI": sweeps.sweep("MPI"),
            "MPI-Opt": sweeps.sweep("MPI-Opt"),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["GPUs", "MPI (img/s)", "MPI-Opt (img/s)", "speedup"],
        title="Fig. 12 — optimized vs default distributed EDSR throughput",
    )
    for default, opt in zip(data["MPI"], data["MPI-Opt"]):
        table.add_row(
            default.num_gpus,
            f"{default.images_per_second:.1f}",
            f"{opt.images_per_second:.1f}",
            f"{speedup(opt.images_per_second, default.images_per_second):.2f}x",
        )
    final = speedup(
        data["MPI-Opt"][-1].images_per_second, data["MPI"][-1].images_per_second
    )
    save_report(
        "fig12_opt_throughput",
        table.render() + f"\nspeedup at 512 GPUs: {final:.2f}x (paper: 1.26x)",
    )

    # shape targets
    assert final > 1.15  # the paper's 1.26x, with model tolerance
    assert final < 1.45
    for default, opt in zip(data["MPI"], data["MPI-Opt"]):
        assert opt.images_per_second >= default.images_per_second
    benchmark.extra_info["speedup_512"] = final


def test_fig12_gain_mechanism_is_intra_node(benchmark, sweeps):
    """The optimization targets intra-node transport: MPI-Opt eliminates
    the pageable-staging compute blocking entirely."""

    def compute():
        return sweeps.point("MPI", 64), sweeps.point("MPI-Opt", 64)

    default, opt = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert default.blocking_time > 0
    # only sub-threshold (<4 MiB) messages still stage under MPI-Opt
    assert opt.blocking_time < 0.1 * default.blocking_time
    assert opt.comm_wall_time < default.comm_wall_time
