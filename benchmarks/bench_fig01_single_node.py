"""Fig. 1 — single-node throughput: ResNet-50 vs EDSR on one V100.

Paper anchors: ResNet-50 ~360 images/s (classification), EDSR ~10.3
images/s (super-resolution) — a ~35x gap motivating the whole study.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import TARGETS
from repro.hardware import V100_16GB
from repro.models import get_model_cost
from repro.models.costing import ThroughputModel
from repro.utils.tables import TextTable


def compute_fig1():
    edsr = ThroughputModel(get_model_cost("edsr-paper"), V100_16GB)
    resnet = ThroughputModel(get_model_cost("resnet-50"), V100_16GB)
    return {
        "edsr_img_s": edsr.images_per_second(4),
        "resnet_img_s": resnet.images_per_second(32),
        "edsr_step_ms": edsr.step_time(4) * 1e3,
        "resnet_step_ms": resnet.step_time(32) * 1e3,
    }


def test_fig01_single_node_throughput(benchmark, save_report):
    data = benchmark.pedantic(compute_fig1, rounds=1, iterations=1)

    table = TextTable(
        ["Model", "Batch", "images/s (ours)", "images/s (paper)"],
        title="Fig. 1 — single-V100 training throughput",
    )
    table.add_row("EDSR (B=32,F=256,x2)", 4, f"{data['edsr_img_s']:.1f}",
                  TARGETS["fig1_edsr_img_s"])
    table.add_row("ResNet-50 (224x224)", 32, f"{data['resnet_img_s']:.1f}",
                  TARGETS["fig1_resnet_img_s"])
    save_report("fig01_single_node", table.render())

    benchmark.extra_info.update(data)
    # reproduction-shape assertions
    assert data["edsr_img_s"] == pytest.approx(TARGETS["fig1_edsr_img_s"], rel=0.10)
    assert data["resnet_img_s"] == pytest.approx(TARGETS["fig1_resnet_img_s"], rel=0.10)
    ratio = data["resnet_img_s"] / data["edsr_img_s"]
    assert 25 < ratio < 45  # paper: ~35x


def test_fig01_edsr_dominates_compute_not_memory(benchmark):
    """The gap is compute, not memory-bandwidth, bound: EDSR's conv stack is
    ~23x the training FLOPs of ResNet-50 per image."""

    def flops_ratio():
        edsr = get_model_cost("edsr-paper")
        resnet = get_model_cost("resnet-50")
        return edsr.flops_train / resnet.flops_train

    ratio = benchmark.pedantic(flops_ratio, rounds=1, iterations=1)
    assert 15 < ratio < 35
