"""Fig. 11 — registration-cache effect on training throughput.

Paper §VII: enabling MVAPICH2-GDR's registration cache for PyTorch yields
an average ~5.1% throughput improvement, with an average cache hit rate of
~93% (Horovod's reused fusion buffers keep registrations hot).
"""

from __future__ import annotations

import pytest

from conftest import GPU_COUNTS

from repro.core import MPI_REG, ScalingStudy, StudyConfig
from repro.utils.tables import TextTable


def test_fig11_regcache_throughput(benchmark, sweeps, save_report):
    def compute():
        return {
            "MPI": sweeps.sweep("MPI"),
            "MPI-Reg": sweeps.sweep("MPI-Reg"),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["GPUs", "MPI (img/s)", "MPI-Reg (img/s)", "gain %"],
        title="Fig. 11 — registration cache effect (MPI vs MPI-Reg)",
    )
    gains = []
    for default, reg in zip(data["MPI"], data["MPI-Reg"]):
        gain = 100.0 * (reg.images_per_second / default.images_per_second - 1.0)
        gains.append(gain)
        table.add_row(
            default.num_gpus,
            f"{default.images_per_second:.1f}",
            f"{reg.images_per_second:.1f}",
            f"{gain:+.1f}",
        )
    avg = sum(gains) / len(gains)
    save_report(
        "fig11_regcache",
        table.render() + f"\naverage gain: {avg:+.2f}% (paper: +5.1%)",
    )

    # shape: the cache never hurts meaningfully, helps most at scale where
    # inter-node rendezvous traffic dominates
    assert all(g > -1.5 for g in gains)
    assert gains[-1] == max(gains)
    assert gains[-1] > 3.0
    assert 0.5 < avg < 10.0
    benchmark.extra_info["average_gain_pct"] = avg


def test_fig11_cache_hit_rate(benchmark, save_report):
    """Longer profile for the hit-rate statistic (paper: ~93%)."""

    def compute():
        config = StudyConfig(measure_steps=40)
        point = ScalingStudy(MPI_REG, config).run_point(16)
        return point.regcache_hit_rate

    hit_rate = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "fig11_hit_rate",
        f"registration cache hit rate over 40 steps at 16 GPUs: "
        f"{hit_rate:.1%} (paper: 93%)",
    )
    assert hit_rate == pytest.approx(0.93, abs=0.12)
    benchmark.extra_info["hit_rate"] = hit_rate
