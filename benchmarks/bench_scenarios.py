"""Scenario-layer regression harness: multi-scale and video workloads end
to end (study points and serving sessions), writing ``BENCH_scenarios.json``.

Standalone like ``bench_perf.py`` (no benchmark plugin needed) so CI can
run it and diff against a committed baseline::

    python benchmarks/bench_scenarios.py --quick --out BENCH_scenarios.json \
        --check-baseline benchmarks/baselines/BENCH_scenarios_baseline.json

Workloads:

* **study_scenarios** — the multiscale8 (x2/x4/x8 heads) and video
  (8-frame BPTT) study points at 16 ranks, run on both engine modes cold
  then warm through the result cache; asserts fast == exact and
  warm == cold byte-identically.  The regression gate is the simulated
  ``images_per_second`` / ``step_time`` per spec: fully deterministic, so
  any drift means the scenario pricing or the periodic step structure
  changed — intentional changes must update the baseline (and the cache
  salt).
* **video_serve** — the session-affine video serving cell with a
  mid-stream replica failure on both engine modes; asserts frame
  conservation per session, failure detection, at least one session
  re-home, and fast/exact identity.  Gated on the jitter-buffer SLO
  metrics (late-frame ratio, rebuffers, p99 frame latency) and goodput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from dataclasses import replace

from repro.core import (
    MPI_OPT,
    MULTISCALE8_SPEC,
    VIDEO_SPEC,
    ScalingStudy,
    StudyConfig,
)
from repro.core.study import point_payload
from repro.faults import FaultPlan, RankFailure
from repro.perf import ResultCache
from repro.serve import (
    VIDEO_MIX,
    BatchingConfig,
    ServeScenario,
    WorkloadConfig,
    simulate_serve,
)

SEED = 7
NUM_GPUS = 16


def _study_config(spec, steps: int) -> StudyConfig:
    return StudyConfig(measure_steps=steps, warmup_steps=1, workload=spec)


def time_study_scenarios(quick: bool) -> dict:
    steps = 16 if quick else 48
    specs = {"multiscale8": MULTISCALE8_SPEC, "video": VIDEO_SPEC}
    out = {}
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        for name, spec in specs.items():
            config = _study_config(spec, steps)
            t0 = perf_counter()
            exact = ScalingStudy(MPI_OPT, config).run_point(
                NUM_GPUS, cache=cache
            )
            fast = ScalingStudy(
                MPI_OPT, replace(config, engine_mode="fast")
            ).run_point(NUM_GPUS, cache=cache)
            cold_s = perf_counter() - t0
            assert point_payload(exact) == point_payload(fast), (
                f"{name}: fast engine diverged from exact"
            )
            t0 = perf_counter()
            warm = ScalingStudy(MPI_OPT, config).run_point(
                NUM_GPUS, cache=cache
            )
            warm_s = perf_counter() - t0
            assert point_payload(warm) == point_payload(exact), (
                f"{name}: warm cache diverged from cold"
            )
            payload = point_payload(exact)
            assert payload["workload"] == spec.to_payload()
            out[name] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "images_per_second": exact.images_per_second,
                "step_time": exact.step_time,
            }
        assert cache.stats()["hits"] >= len(specs)
    return {"num_gpus": NUM_GPUS, "measure_steps": steps, "specs": out}


def _video_scenario() -> ServeScenario:
    return ServeScenario(
        name="bench-video",
        workload=WorkloadConfig(kind="video", rate_rps=2.0, classes=VIDEO_MIX),
        batching=BatchingConfig(mix_scales=False),
        session_affinity=True,
    )


def time_video_serve(quick: bool) -> dict:
    duration_s = 40.0 if quick else 60.0
    # replica 0 is never the autoscaler's scale-down victim, so the
    # failure is guaranteed to land on live streams
    plan = FaultPlan(
        faults=(RankFailure(rank=0, time=duration_s / 3, down_s=25.0),)
    )
    t0 = perf_counter()
    exact = simulate_serve(
        _video_scenario(), duration_s=duration_s, seed=SEED, fault_plan=plan
    )
    fast = simulate_serve(
        _video_scenario(), duration_s=duration_s, seed=SEED, fault_plan=plan,
        engine_mode="fast",
    )
    wall_s = perf_counter() - t0
    assert exact.to_payload() == fast.to_payload(), (
        "video serve: fast engine diverged from exact"
    )
    s = exact.summary
    v = s["video"]
    assert s["completed"] + s["shed"] == s["arrived"], "requests dropped"
    assert v["frames_completed"] + v["frames_shed"] == v["frames_arrived"], (
        "frames dropped"
    )
    assert s["detections"] >= 1, "failure never detected"
    assert v["rehomes"] >= 1, "no session re-homed across the failure"
    return {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "sessions": v["sessions"],
        "rehomes": v["rehomes"],
        "frames_completed": v["frames_completed"],
        "late_frame_ratio": v["late_frame_ratio"],
        "rebuffers": v["rebuffers"],
        "frame_p99_ms": v["frame_latency_ms"]["p99"],
        "goodput_rps": s["goodput_rps"],
    }


#: the deterministic metrics the baseline gates on, per workload
GATED = {
    "study_scenarios": ("images_per_second", "step_time"),
    "video_serve": (
        "frames_completed", "late_frame_ratio", "rebuffers",
        "frame_p99_ms", "goodput_rps",
    ),
}


def _drift(name: str, want: float, have: float, tolerance: float) -> str | None:
    if abs(have - want) > tolerance * max(abs(want), 1e-12):
        return (
            f"{name} drifted: {have:.6g} vs baseline {want:.6g} "
            f"(tolerance {tolerance:.0%}) — scenario semantics changed; "
            f"update the baseline and bump CACHE_VERSION_SALT if intentional"
        )
    return None


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    base_specs = baseline["workloads"]["study_scenarios"]["specs"]
    got_specs = report["workloads"]["study_scenarios"]["specs"]
    for spec, base in base_specs.items():
        got = got_specs.get(spec)
        if got is None:
            failures.append(f"spec {spec} missing from the study sweep")
            continue
        for metric in GATED["study_scenarios"]:
            bad = _drift(f"{spec}.{metric}", base[metric], got[metric], tolerance)
            if bad:
                failures.append(bad)
    base_serve = baseline["workloads"]["video_serve"]
    got_serve = report["workloads"]["video_serve"]
    for metric in GATED["video_serve"]:
        bad = _drift(
            f"video_serve.{metric}", base_serve[metric], got_serve[metric],
            tolerance,
        )
        if bad:
            failures.append(bad)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced durations for CI smoke runs")
    parser.add_argument("--out", default="BENCH_scenarios.json")
    parser.add_argument("--jobs", type=int, default=max(1, os.cpu_count() or 1))
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail if simulated scenario metrics drift")
    parser.add_argument("--tolerance", type=float, default=1e-6,
                        help="allowed relative drift (simulated metrics are "
                             "deterministic, so this is float-noise margin)")
    args = parser.parse_args(argv)

    workloads = {}
    print(
        f"[bench_scenarios] study points "
        f"({'quick' if args.quick else 'full'}) ..."
    )
    workloads["study_scenarios"] = time_study_scenarios(args.quick)
    for spec, row in workloads["study_scenarios"]["specs"].items():
        print(
            f"[bench_scenarios]   {spec}: {row['images_per_second']:.1f} "
            f"img/s  cold {row['cold_s']:.2f}s  warm {row['warm_s']:.3f}s"
        )
    print("[bench_scenarios] video serve ...")
    workloads["video_serve"] = time_video_serve(args.quick)
    print(
        "[bench_scenarios]   {sessions} session(s), {rehomes} re-home(s), "
        "{frames_completed} frames, late ratio {late_frame_ratio:.3f} "
        "in {wall_s:.2f}s".format(**workloads["video_serve"])
    )

    report = {
        "quick": args.quick,
        "jobs": args.jobs,
        "seed": SEED,
        "workloads": workloads,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_scenarios] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_scenarios] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_scenarios] baseline check passed ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
