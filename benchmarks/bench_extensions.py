"""Extension experiments beyond the paper's evaluation.

The paper's §VIII frames its insights as general; these benches test that
generality inside the model:

* the **legacy full-visibility** workaround (Fig. 6a) matches MPI-Opt's
  communication but pays for it in batch headroom;
* **strong scaling** (fixed global batch) — the companion regime to the
  paper's weak scaling;
* a **DGX-1V-class x86 system** — the visibility fix matters *more* where
  pageable staging is slower;
* **model-agnosticism** — the same scenario ordering holds for the
  DeepLabv3-class segmentation workload.
"""

from __future__ import annotations

import pytest

from repro.core import (
    MPI_ALL_VISIBLE,
    MPI_DEFAULT,
    MPI_OPT,
    ScalingStudy,
    StudyConfig,
)
from repro.hardware.specs import DGX1V
from repro.utils.tables import TextTable


def test_extension_legacy_visibility_tradeoff(benchmark, save_report):
    """Fig. 6a quantified: same comm speed as MPI-Opt, less batch room."""

    def compute():
        fast = StudyConfig(measure_steps=1, warmup_steps=1)
        legacy = ScalingStudy(MPI_ALL_VISIBLE, fast)
        opt = ScalingStudy(MPI_OPT, fast)
        return {
            "legacy_rate": legacy.run_point(16).images_per_second,
            "opt_rate": opt.run_point(16).images_per_second,
            "legacy_max_batch": legacy.max_feasible_batch(),
            "opt_max_batch": opt.max_feasible_batch(),
        }

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_legacy_visibility",
        f"16-GPU throughput: legacy full-visibility {data['legacy_rate']:.1f} "
        f"vs MPI-Opt {data['opt_rate']:.1f} img/s\n"
        f"max per-GPU batch: legacy {data['legacy_max_batch']} "
        f"vs MPI-Opt {data['opt_max_batch']} "
        "(overhead kernels cost batch headroom — paper Fig. 6a/9)",
    )
    assert data["legacy_rate"] == pytest.approx(data["opt_rate"], rel=0.05)
    assert data["legacy_max_batch"] < data["opt_max_batch"]


def test_extension_strong_scaling(benchmark, save_report):
    """Fixed 256-image global batch: per-GPU batch shrinks with scale and
    utilization decays — weak scaling (the paper's regime) holds up better."""

    def compute():
        weak = ScalingStudy(MPI_OPT, StudyConfig(measure_steps=1))
        strong = ScalingStudy(
            MPI_OPT, StudyConfig(global_batch=256, measure_steps=1)
        )
        gpu_counts = [4, 16, 64]
        return (
            gpu_counts,
            weak.run(gpu_counts),
            strong.run(gpu_counts),
        )

    gpu_counts, weak_pts, strong_pts = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = TextTable(
        ["GPUs", "weak img/s", "weak eff", "strong img/s", "strong eff"],
        title="Extension — weak vs strong scaling (MPI-Opt)",
    )
    for g, w, s in zip(gpu_counts, weak_pts, strong_pts):
        table.add_row(g, f"{w.images_per_second:.1f}", f"{w.efficiency:.1%}",
                      f"{s.images_per_second:.1f}", f"{s.efficiency:.1%}")
    save_report("ext_strong_scaling", table.render())

    weak_decay = weak_pts[-1].efficiency / weak_pts[0].efficiency
    strong_decay = strong_pts[-1].efficiency / strong_pts[0].efficiency
    assert strong_decay < weak_decay


def test_extension_dgx_class_system(benchmark, save_report):
    """The visibility fix also pays on an x86 DGX-1V-class system.

    A subtlety the model surfaces: with 8 ranks per DGX node, single-node
    ring chunks (message/8) fall near the CUDA-IPC size threshold, so part
    of the traffic stays staged under MPI-Opt — the per-node rank count
    interacts with IPC thresholds, not just link speeds."""

    def compute():
        out = {}
        for label, cluster in (("lassen", None), ("dgx1v", DGX1V)):
            kwargs = dict(measure_steps=1, warmup_steps=1)
            if cluster is not None:
                kwargs["cluster"] = cluster
            config = StudyConfig(**kwargs)
            default = ScalingStudy(MPI_DEFAULT, config).run_point(8)
            opt = ScalingStudy(MPI_OPT, config).run_point(8)
            out[label] = opt.images_per_second / default.images_per_second
        return out

    gains = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_dgx_system",
        f"MPI-Opt / MPI speedup at 8 GPUs: Lassen {gains['lassen']:.2f}x, "
        f"DGX-1V {gains['dgx1v']:.2f}x (8-rank nodes push ring chunks toward "
        "the IPC threshold, tempering the DGX win)",
    )
    assert gains["lassen"] > 1.10
    assert gains["dgx1v"] > 1.10


def test_extension_segmentation_workload(benchmark, save_report):
    """The scenario ordering transfers to the DeepLabv3-class workload."""

    def compute():
        config = StudyConfig(
            model="deeplabv3-rn50", batch_per_gpu=2,
            measure_steps=1, warmup_steps=1,
        )
        default = ScalingStudy(MPI_DEFAULT, config).run_point(32)
        opt = ScalingStudy(MPI_OPT, config).run_point(32)
        return default.images_per_second, opt.images_per_second

    default_rate, opt_rate = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_segmentation",
        f"DeepLabv3-RN50 at 32 GPUs: default {default_rate:.1f} img/s, "
        f"MPI-Opt {opt_rate:.1f} img/s ({opt_rate / default_rate:.2f}x)",
    )
    assert opt_rate > 1.05 * default_rate
