"""OSU-microbenchmark-style point-to-point and collective curves.

The MVAPICH2 team (the paper's group) characterizes MPI stacks with the
OSU micro-benchmarks (osu_latency / osu_bw / osu_allreduce).  This bench
produces the same curves for the simulated stack, one per transport, so
the substrate itself is inspectable the way the real library would be.

Shapes asserted:

* latency curves are flat for small messages (alpha-dominated) and linear
  for large ones (beta-dominated);
* the IPC path overtakes host staging beyond the IPC threshold;
* GDR inter-node bandwidth approaches the IB wire limit for large messages;
* allreduce latency grows with both message size and rank count.
"""

from __future__ import annotations

import pytest

from repro.hardware import LASSEN, Cluster
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.collectives.allreduce import allreduce_timing
from repro.mpi.process import SingletonDevicePolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.utils.tables import TextTable
from repro.utils.units import KIB, MIB

SIZES = [1 * KIB, 16 * KIB, 128 * KIB, 1 * MIB, 8 * MIB, 32 * MIB, 64 * MIB]


def _transport(num_nodes, config):
    cluster = Cluster(Environment(), LASSEN, num_nodes=num_nodes)
    spec = WorldSpec(num_ranks=cluster.num_gpus, policy=SingletonDevicePolicy(),
                     config=config)
    from repro.mpi.process import build_world

    return TransportModel(cluster, config, build_world(cluster, spec))


def test_osu_latency_curves(benchmark, save_report):
    """osu_latency-style (single pair) + osu_mbw_mr-style (4 concurrent
    pairs): the staged path is competitive for one lone transfer but
    collapses under the node-wide concurrency real training generates —
    the staging engines serialize while IPC pairs run independently."""

    from repro.mpi.collectives.base import ExecutionMode, PairTransfer, StepCoster

    pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]

    def compute():
        opt = _transport(2, Mv2Config(mv2_visible_devices="all",
                                      registration_cache=True))
        default = _transport(2, Mv2Config())
        opt_step = StepCoster(opt, ExecutionMode.ANALYTIC)
        def_step = StepCoster(default, ExecutionMode.ANALYTIC)
        rows = []
        for nbytes in SIZES:
            transfers = [PairTransfer(s, d, nbytes) for s, d in pairs]
            rows.append(
                (
                    nbytes,
                    opt.cost(0, 1, nbytes).total,      # lone intra message
                    opt_step.step_time_analytic(transfers),
                    def_step.step_time_analytic(transfers),
                    opt.cost(0, 4, nbytes, src_buffer=1, dst_buffer=2).total,
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = TextTable(
        ["Size", "1-pair opt (us)", "4-pair opt (us)", "4-pair default (us)",
         "inter GDR (us)"],
        title="osu_latency / osu_mbw_mr-style point-to-point curves",
    )
    for nbytes, lone, opt4, def4, gdr in rows:
        label = f"{nbytes // KIB} KiB" if nbytes < MIB else f"{nbytes // MIB} MiB"
        table.add_row(label, f"{lone * 1e6:.1f}", f"{opt4 * 1e6:.1f}",
                      f"{def4 * 1e6:.1f}", f"{gdr * 1e6:.1f}")
    save_report("osu_latency", table.render())

    by_size = {r[0]: r for r in rows}
    # small messages: identical eager path under concurrency too
    assert by_size[1 * KIB][2] == pytest.approx(by_size[1 * KIB][3], rel=0.01)
    # large messages, 4 concurrent pairs: IPC clearly beats staging
    assert by_size[64 * MIB][2] < 0.7 * by_size[64 * MIB][3]
    # latency grows monotonically with size on every path
    for column in (1, 2, 3, 4):
        times = [r[column] for r in rows]
        assert all(b >= a for a, b in zip(times, times[1:]))


def test_osu_bandwidth_approaches_wire_limits(benchmark, save_report):
    """osu_bw-style: effective bandwidth saturates toward the physical cap."""

    def compute():
        opt = _transport(2, Mv2Config(mv2_visible_devices="all",
                                      registration_cache=True))
        nbytes = 64 * MIB
        opt.cost(0, 4, nbytes, src_buffer=9, dst_buffer=10)  # warm regcache
        inter = nbytes / opt.cost(0, 4, nbytes, src_buffer=9, dst_buffer=10).total
        intra = nbytes / opt.cost(0, 1, nbytes).total
        return intra, inter

    intra_bw, inter_bw = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "osu_bandwidth",
        f"64 MiB effective bandwidth: intra-node IPC {intra_bw / 1e9:.2f} GB/s "
        f"(pipeline cap {Mv2Config().cuda_ipc_bandwidth / 1e9:.1f}), "
        f"inter-node GDR {inter_bw / 1e9:.2f} GB/s "
        f"(IB wire {LASSEN.ib.bandwidth / 1e9:.1f})",
    )
    assert intra_bw == pytest.approx(Mv2Config().cuda_ipc_bandwidth, rel=0.1)
    assert inter_bw == pytest.approx(LASSEN.ib.bandwidth, rel=0.15)


def test_osu_allreduce_scaling(benchmark, save_report):
    """osu_allreduce-style: latency vs size at several rank counts."""

    def compute():
        results = {}
        for num_gpus in (4, 16, 64):
            cluster = Cluster(Environment(), LASSEN,
                              num_nodes=max(1, num_gpus // 4))
            config = Mv2Config(mv2_visible_devices="all",
                               registration_cache=True)
            spec = WorldSpec(num_ranks=num_gpus,
                             policy=SingletonDevicePolicy(), config=config)
            world = MpiWorld(cluster, spec)
            results[num_gpus] = [
                allreduce_timing(world.coster, list(range(num_gpus)), n).time
                for n in SIZES
            ]
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = TextTable(
        ["Size"] + [f"{g} GPUs (us)" for g in (4, 16, 64)],
        title="osu_allreduce-style latency (MPI-Opt)",
    )
    for i, nbytes in enumerate(SIZES):
        label = f"{nbytes // KIB} KiB" if nbytes < MIB else f"{nbytes // MIB} MiB"
        table.add_row(label, *[f"{results[g][i] * 1e6:.1f}" for g in (4, 16, 64)])
    save_report("osu_allreduce", table.render())

    for g in (4, 16, 64):
        times = results[g]
        assert all(b >= a for a, b in zip(times, times[1:]))
    # more ranks never cheaper for bandwidth-bound sizes
    assert results[64][-1] > results[4][-1]
