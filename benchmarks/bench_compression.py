"""Compression-suite regression harness: writes ``BENCH_compression.json``.

Standalone (no pytest-benchmark plugin) like ``bench_comm.py`` so CI can
run it directly and diff against a committed baseline::

    python benchmarks/bench_compression.py --quick \
        --out BENCH_compression.json \
        --check-baseline benchmarks/baselines/BENCH_compression_baseline.json

Workloads:

* **wire_reduction** — fast-mode scaling points per compression mode;
  reports simulated bytes-on-wire per training step and throughput.  The
  acceptance claim is asserted inline: fp16 reduces bytes-on-wire by
  >= 1.7x at 512 ranks (it is exactly 2.0x by construction — the assert
  guards the wiring, the baseline guards the exact byte counts).  Top-k
  and local-SGD report both the wire reduction *and* the simulated
  throughput so the speed/accuracy trade stays visible.
* **psnr** — functional 4-rank EDSR training under each mode; asserts
  |PSNR(fp16) - PSNR(fp32)| <= 0.05 dB and reports top-k / local-SGD
  accuracy next to their speed numbers.  PSNR is baseline-checked with a
  tolerance (BLAS reductions are not bit-stable across machines); the
  simulated byte counts are machine-independent and checked exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.compression import CompressionConfig
from repro.core.scenarios import scenario_by_name
from repro.core.study import ScalingStudy, StudyConfig
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, Mv2Config, WorldSpec
from repro.mpi.process import SingletonDevicePolicy
from repro.sim import Environment
from repro.trainer import DistributedTrainer, evaluate_sr

FP16_MIN_WIRE_REDUCTION = 1.7   # acceptance floor at 512 ranks
FP16_MAX_PSNR_DELTA_DB = 0.05   # acceptance ceiling vs fp32


def run_scaling_point(num_gpus: int, **cfg) -> dict:
    study = ScalingStudy(
        scenario_by_name("MPI-Opt"), StudyConfig(engine_mode="fast", **cfg)
    )
    t0 = perf_counter()
    point = study.run_point(num_gpus)
    return {
        "bytes_per_step": sum(point.message_sizes),
        "messages_per_step": len(point.message_sizes),
        "images_per_second": point.images_per_second,
        "wall_s": perf_counter() - t0,
    }


def time_wire_reduction(quick: bool) -> dict:
    # (label, config, ranks, period): a local-SGD run records the bytes
    # of one parameter-sync step, which amortizes over H training steps.
    # The sparse allgather sweep is the slow cell; keep it off the 512
    # column in quick mode.
    grid = [
        ("none", {}, 512, 1),
        ("fp16", {"compression": "fp16"}, 512, 1),
        ("bf16", {"compression": "bf16"}, 512, 1),
        ("local-sgd-h4", {"local_sgd_h": 4, "measure_steps": 8}, 512, 4),
        ("topk:0.01", {"compression": "topk:0.01"}, 64 if quick else 512, 1),
    ]
    points: dict[str, dict] = {}
    for label, cfg, ranks, period in grid:
        point = run_scaling_point(ranks, **cfg)
        point["ranks"] = ranks
        point["sync_period"] = period
        points[f"{label}x{ranks}"] = point

    dense = points["nonex512"]["bytes_per_step"]
    reductions = {
        key: dense * p["sync_period"] / p["bytes_per_step"]
        for key, p in points.items()
        if p["ranks"] == 512 and p["bytes_per_step"]
    }
    fp16_reduction = reductions["fp16x512"]
    assert fp16_reduction >= FP16_MIN_WIRE_REDUCTION, (
        f"fp16 bytes-on-wire reduction {fp16_reduction:.2f}x at 512 ranks "
        f"is below the {FP16_MIN_WIRE_REDUCTION}x acceptance floor"
    )
    return {
        "points": points,
        "wire_reduction_vs_dense": reductions,
        "fp16_reduction": fp16_reduction,
        # machine-independent: simulated bytes + throughput per mode
        "anchors": {
            key: [p["bytes_per_step"], p["images_per_second"]]
            for key, p in points.items()
        },
    }


def run_functional(compression: str, local_sgd_h: int, steps: int) -> dict:
    cluster = Cluster(Environment(), LASSEN, num_nodes=1)
    spec = WorldSpec(num_ranks=4, policy=SingletonDevicePolicy(),
                     config=Mv2Config(mv2_visible_devices="all"))
    world = MpiWorld(cluster, spec)
    engine = HorovodEngine(
        world.communicator(), HorovodConfig(cycle_time_s=2e-3),
        compression=CompressionConfig.parse(compression),
    )
    dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                        split="train",
                        degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
        engine, dataset, batch_per_rank=1, lr_patch=8,
        local_sgd_h=local_sgd_h,
    )
    t0 = perf_counter()
    result = trainer.train(steps)
    wall_s = perf_counter() - t0
    metrics = evaluate_sr(trainer.models[0], dataset, max_images=4)
    return {
        "psnr": metrics["psnr"],
        "final_loss": result.final_loss,
        "simulated_images_per_second": result.simulated_images_per_second,
        "wall_s": wall_s,
    }


def time_psnr(quick: bool) -> dict:
    steps = 30 if quick else 60
    runs = {
        "none": run_functional("none", 1, steps),
        "fp16": run_functional("fp16", 1, steps),
        "topk:0.01": run_functional("topk:0.01", 1, steps),
        "local-sgd-h4": run_functional("none", 4, steps),
    }
    fp16_delta = abs(runs["fp16"]["psnr"] - runs["none"]["psnr"])
    assert fp16_delta <= FP16_MAX_PSNR_DELTA_DB, (
        f"fp16 PSNR delta {fp16_delta:.4f} dB vs fp32 exceeds the "
        f"{FP16_MAX_PSNR_DELTA_DB} dB acceptance ceiling"
    )
    return {
        "steps": steps,
        "runs": runs,
        "fp16_psnr_delta_db": fp16_delta,
        "psnr": {label: r["psnr"] for label, r in runs.items()},
    }


def check_baseline(report: dict, baseline_path: str, tolerance: float) -> list[str]:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = []
    if baseline.get("quick") != report["quick"]:
        # grid sizes differ; nothing is comparable like-for-like
        return failures
    # simulated byte counts and throughputs are machine-independent: exact
    base_anchors = baseline.get("anchors", {})
    anchors = report["anchors"]
    for key, base in base_anchors.items():
        got = anchors.get(key)
        if got is not None and got != base:
            failures.append(
                f"anchor {key} drifted: {got!r} != baseline {base!r} "
                f"(cost model changed — regenerate baseline + bump salt)"
            )
    # PSNR is tolerance-gated: BLAS reductions vary across machines
    base_psnr = baseline.get("psnr", {})
    psnr = report["workloads"]["psnr"]["psnr"]
    for label, base in base_psnr.items():
        got = psnr.get(label)
        if got is not None and abs(got - base) > tolerance:
            failures.append(
                f"PSNR({label}) drifted: {got:.4f} vs baseline {base:.4f} "
                f"(> {tolerance} dB tolerance)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--out", default="BENCH_compression.json")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="fail on simulated-byte drift or PSNR drift")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed PSNR drift vs baseline (dB)")
    args = parser.parse_args(argv)

    workloads = {}
    print(f"[bench_compression] wire reduction "
          f"({'quick' if args.quick else 'full'}) ...")
    workloads["wire_reduction"] = time_wire_reduction(args.quick)
    for key, ratio in sorted(
            workloads["wire_reduction"]["wire_reduction_vs_dense"].items()):
        print(f"[bench_compression]   {key}: {ratio:.2f}x fewer bytes")
    print("[bench_compression] functional PSNR ...")
    workloads["psnr"] = time_psnr(args.quick)
    for label, run in workloads["psnr"]["runs"].items():
        print(f"[bench_compression]   {label}: psnr={run['psnr']:.4f} dB  "
              f"sim={run['simulated_images_per_second']:.1f} img/s  "
              f"wall={run['wall_s']:.1f}s")
    print("[bench_compression]   fp16 delta "
          f"{workloads['psnr']['fp16_psnr_delta_db']:.4f} dB "
          f"(<= {FP16_MAX_PSNR_DELTA_DB})")

    report = {
        "quick": args.quick,
        "workloads": workloads,
        "anchors": workloads["wire_reduction"]["anchors"],
        "fp16_reduction": workloads["wire_reduction"]["fp16_reduction"],
        "psnr": workloads["psnr"]["psnr"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench_compression] wrote {args.out}")

    if args.check_baseline:
        failures = check_baseline(report, args.check_baseline, args.tolerance)
        for failure in failures:
            print(f"[bench_compression] FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"[bench_compression] baseline check passed "
              f"({args.check_baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
