"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.horovod import HorovodConfig, PendingTensor, TensorFusion
from repro.metrics import psnr, ssim
from repro.mpi.collectives.allreduce import allreduce_lower_bound
from repro.mpi.collectives.base import chunk_sizes, is_power_of_two
from repro.mpi.datatypes import ReduceOp
from repro.net.regcache import RegistrationCache, RegistrationCostModel
from repro.profiling.bins import PAPER_BINS, bin_for
from repro.data.sampler import DistributedSampler
from repro.sim import Environment, Resource
from repro.tensor import Tensor, functional as F
from repro.utils.seeding import derive_seed
from repro.utils.units import format_bytes, parse_bytes

# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=50, deadline=None)


class TestChunking:
    @given(nbytes=st.integers(0, 10**9), parts=st.integers(1, 1025))
    @FAST
    def test_chunks_conserve_and_balance(self, nbytes, parts):
        chunks = chunk_sizes(nbytes, parts)
        assert len(chunks) == parts
        assert sum(chunks) == nbytes
        assert max(chunks) - min(chunks) <= 1
        assert all(c >= 0 for c in chunks)

    @given(n=st.integers(1, 2**20))
    @FAST
    def test_power_of_two_detector(self, n):
        assert is_power_of_two(n) == (bin(n).count("1") == 1)


class TestFusionProperties:
    sizes = st.lists(st.integers(4, 8 * 2**20), min_size=1, max_size=40)
    readies = st.floats(0, 0.5, allow_nan=False)

    @given(sizes=sizes, threshold=st.integers(0, 64 * 2**20),
           cycle=st.sampled_from([0.0, 1e-3, 10e-3]))
    @FAST
    def test_fusion_conserves_bytes_and_order(self, sizes, threshold, cycle):
        tensors = [
            PendingTensor(f"t{i}", s, ready_time=i * 1e-4)
            for i, s in enumerate(sizes)
        ]
        plan = TensorFusion(
            HorovodConfig(fusion_threshold=threshold, cycle_time_s=cycle)
        ).plan(tensors)
        # conservation: every tensor appears exactly once
        names = [t.name for m in plan.messages for t in m.tensors]
        assert sorted(names) == sorted(f"t{i}" for i in range(len(sizes)))
        # fused messages respect the threshold
        for m in plan.messages:
            if m.fused and threshold > 0:
                assert m.nbytes <= threshold
        # cycle indices are non-decreasing
        cycles = [m.cycle_index for m in plan.messages]
        assert cycles == sorted(cycles)

    @given(sizes=st.lists(st.integers(1, 2**16), min_size=1, max_size=12),
           ranks=st.integers(1, 4))
    @FAST
    def test_pack_unpack_is_identity(self, sizes, ranks):
        rng = np.random.default_rng(0)
        tensors = []
        for i, elements in enumerate(sizes):
            data = [rng.random(elements).astype(np.float32) for _ in range(ranks)]
            tensors.append(PendingTensor(f"t{i}", elements * 4, data=data))
        plan = TensorFusion(HorovodConfig(cycle_time_s=0.0)).plan(tensors)
        for message in plan.messages:
            originals = [
                [arr.copy() for arr in t.data] for t in message.tensors
            ]
            packed = TensorFusion.pack(message, ranks)
            TensorFusion.unpack(message, packed)
            for t, orig in zip(message.tensors, originals):
                for arr, o in zip(t.data, orig):
                    np.testing.assert_array_equal(arr, o)


def _equal_length_arrays(draw):
    length = draw(st.integers(1, 16))
    count = draw(st.integers(2, 5))
    element = st.floats(-100, 100, width=32)
    return [
        draw(st.lists(element, min_size=length, max_size=length))
        for _ in range(count)
    ]


equal_length_arrays = st.composite(_equal_length_arrays)()


class TestReduceOps:
    @given(data=equal_length_arrays)
    @FAST
    def test_sum_matches_numpy(self, data):
        arrays = [np.array(a, dtype=np.float32) for a in data]
        result = ReduceOp.SUM.reduce(arrays)
        np.testing.assert_allclose(
            result, np.sum(arrays, axis=0), rtol=1e-4, atol=1e-4
        )

    @given(data=equal_length_arrays)
    @FAST
    def test_max_min_bound_inputs(self, data):
        arrays = [np.array(a, dtype=np.float32) for a in data]
        high = ReduceOp.MAX.reduce(arrays)
        low = ReduceOp.MIN.reduce(arrays)
        for arr in arrays:
            assert (high >= arr).all()
            assert (low <= arr).all()


class TestBins:
    @given(nbytes=st.integers(0, 64 * 2**20))
    @FAST
    def test_bins_partition_the_range(self, nbytes):
        matches = [b for b in PAPER_BINS if b.contains(nbytes)]
        assert len(matches) == 1
        assert bin_for(nbytes) is matches[0]


class TestRegistrationCache:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 10**7)),
            min_size=1, max_size=60,
        ),
        enabled=st.booleans(),
    )
    @FAST
    def test_cache_invariants(self, ops, enabled):
        cache = RegistrationCache(enabled=enabled, max_entries=4)
        for buffer_id, nbytes in ops:
            cache.begin_transaction()
            cost = cache.acquire(buffer_id, nbytes)
            assert cost >= 0.0
        assert cache.hits + cache.misses == cache.lookups
        assert 0.0 <= cache.hit_rate <= 1.0
        if not enabled:
            assert cache.hits == 0

    @given(nbytes=st.integers(1, 10**9))
    @FAST
    def test_registration_cost_monotone_in_size(self, nbytes):
        model = RegistrationCostModel()
        assert model.register_time(nbytes) <= model.register_time(nbytes * 2)
        assert model.pages(nbytes) >= 1


class TestSampler:
    @given(
        size=st.integers(1, 500),
        ranks=st.integers(1, 16),
        epoch=st.integers(0, 5),
        shuffle=st.booleans(),
    )
    @FAST
    def test_shards_cover_dataset_evenly(self, size, ranks, epoch, shuffle):
        shards = []
        for rank in range(ranks):
            sampler = DistributedSampler(size, ranks, rank, shuffle=shuffle, seed=3)
            sampler.set_epoch(epoch)
            shards.append(sampler.indices())
        lengths = {len(s) for s in shards}
        assert lengths == {-(-size // ranks)}  # identical ceil-size shards
        seen = set(i for s in shards for i in s)
        assert seen == set(range(size))  # full coverage (with wraparound)


class TestMetricsProperties:
    images = st.integers(8, 24)

    @given(h=images, w=images, seed=st.integers(0, 1000))
    @FAST
    def test_psnr_ssim_identity_extremes(self, h, w, seed):
        rng = np.random.default_rng(seed)
        img = rng.random((3, h, w))
        assert psnr(img, img) == float("inf")
        assert ssim(img, img) == pytest.approx(1.0)

    @given(seed=st.integers(0, 1000), scale=st.floats(0.01, 0.2))
    @FAST
    def test_psnr_decreases_with_noise_amplitude(self, seed, scale):
        rng = np.random.default_rng(seed)
        img = rng.random((3, 16, 16))
        noise = rng.standard_normal(img.shape)
        little = np.clip(img + scale * 0.5 * noise, 0, 1)
        lots = np.clip(img + scale * 2.0 * noise, 0, 1)
        assert psnr(little, img) >= psnr(lots, img)


class TestAutogradProperties:
    @given(
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        seed=st.integers(0, 10**6),
    )
    @FAST
    def test_sum_gradient_is_ones(self, shape, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal(shape).astype(np.float32),
                   requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(shape, dtype=np.float32))

    @given(
        seed=st.integers(0, 10**6),
        a_scale=st.floats(0.1, 10),
        b_scale=st.floats(0.1, 10),
    )
    @FAST
    def test_linearity_of_gradients(self, seed, a_scale, b_scale):
        """grad of (a*f + b*g) == a*grad(f) + b*grad(g)."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(6).astype(np.float32)

        def grad_of(fn):
            x = Tensor(data, requires_grad=True)
            fn(x).backward()
            return x.grad

        g_f = grad_of(lambda x: (x * x).sum())
        g_g = grad_of(lambda x: F.relu(x).sum())
        combined = grad_of(
            lambda x: (float(a_scale) * (x * x).sum()
                       + float(b_scale) * F.relu(x).sum())
        )
        np.testing.assert_allclose(
            combined, a_scale * g_f + b_scale * g_g, rtol=1e-3, atol=1e-4
        )

    @given(
        seed=st.integers(0, 10**6),
        r=st.sampled_from([2, 3]),
        c=st.integers(1, 3),
        hw=st.integers(2, 5),
    )
    @FAST
    def test_pixel_shuffle_preserves_values(self, seed, r, c, hw):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, c * r * r, hw, hw)).astype(np.float32)
        out = F.pixel_shuffle(Tensor(x), r).numpy()
        assert out.shape == (1, c, hw * r, hw * r)
        np.testing.assert_array_equal(np.sort(out.ravel()), np.sort(x.ravel()))


class TestUnitsAndSeeds:
    @given(nbytes=st.integers(0, 2**50))
    @FAST
    def test_format_bytes_never_crashes(self, nbytes):
        text = format_bytes(nbytes)
        assert text

    @given(value=st.integers(0, 2**40))
    @FAST
    def test_parse_format_roundtrip_exact_for_bytes(self, value):
        assert parse_bytes(str(value)) == value

    @given(seed=st.integers(0, 2**31), key=st.text(min_size=0, max_size=20))
    @FAST
    def test_derived_seeds_deterministic_and_distinct(self, seed, key):
        a = derive_seed(seed, key)
        b = derive_seed(seed, key)
        c = derive_seed(seed, key + "x")
        assert a == b
        assert a != c
        assert 0 <= a < 2**63


class TestCollectiveBounds:
    @given(
        nbytes=st.integers(1, 10**8),
        p=st.integers(2, 512),
        bandwidth=st.floats(1e9, 1e11),
    )
    @FAST
    def test_lower_bound_properties(self, nbytes, p, bandwidth):
        bound = allreduce_lower_bound(nbytes, p, bandwidth)
        assert bound > 0
        # more ranks -> (weakly) more data movement per rank
        assert allreduce_lower_bound(nbytes, p + 1, bandwidth) >= bound * 0.99
        assert allreduce_lower_bound(nbytes, 1, bandwidth) == 0.0


class TestSimResourceProperties:
    @given(
        durations=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=12),
        capacity=st.integers(1, 4),
    )
    @FAST
    def test_makespan_bounds(self, durations, capacity):
        """Resource makespan lies between ideal parallel and serial bounds."""
        env = Environment()
        res = Resource(env, capacity=capacity)

        def user(env, duration):
            yield res.request()
            try:
                yield env.timeout(duration)
            finally:
                res.release()

        for d in durations:
            env.process(user(env, d))
        env.run()
        serial = sum(durations)
        ideal = max(max(durations), serial / capacity)
        assert env.now <= serial + 1e-9
        assert env.now >= ideal - 1e-9


def _strategy_fabric():
    from repro.hardware import LASSEN, Cluster
    from repro.mpi import Mv2Config, WorldSpec
    from repro.mpi.p2p import P2PFabric
    from repro.mpi.process import SingletonDevicePolicy, build_world
    from repro.mpi.transports import TransportModel

    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=1)
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=4, policy=SingletonDevicePolicy(), config=config)
    ranks = build_world(cluster, spec)
    return env, P2PFabric(TransportModel(cluster, config, ranks))


class TestP2PProperties:
    @given(
        messages=st.lists(
            st.tuples(
                st.integers(0, 3),       # src
                st.integers(0, 3),       # dst
                st.integers(0, 7),       # tag
                st.integers(1, 200_000),  # nbytes
            ),
            min_size=1,
            max_size=15,
        )
    )
    @FAST
    def test_matched_traffic_always_drains(self, messages):
        """For every send, post exactly one matching recv: the run must
        drain with all messages delivered, regardless of order or protocol
        (eager/rendezvous mix)."""
        messages = [(s, d, t, n) for s, d, t, n in messages if s != d]
        if not messages:
            return
        env, fabric = _strategy_fabric()
        for s, d, t, n in messages:
            fabric.isend(s, d, tag=t, nbytes=n)
        for s, d, t, n in messages:
            fabric.irecv(d, source=s, tag=t, nbytes=n)
        env.run()
        assert fabric.messages_delivered == len(messages)
        assert fabric.pending_counts() == (0, 0)

    @given(
        values=st.lists(
            st.floats(-10, 10, width=32), min_size=4, max_size=40
        ),
        seed=st.integers(0, 1000),
    )
    @FAST
    def test_spmd_ring_allreduce_matches_numpy(self, values, seed):
        from repro.mpi.collectives.spmd import ring_allreduce_spmd

        rng = np.random.default_rng(seed)
        base = np.array(values, dtype=np.float32)
        data = {r: base + rng.random(base.size).astype(np.float32)
                for r in range(4)}
        expected = np.sum(list(data.values()), axis=0)
        env, fabric = _strategy_fabric()
        ring_allreduce_spmd(fabric, [0, 1, 2, 3], base.size * 4, data=data)
        for r in range(4):
            np.testing.assert_allclose(data[r], expected, rtol=1e-4, atol=1e-4)


class TestRoutingProperties:
    @given(
        a=st.integers(0, 15),
        b=st.integers(0, 15),
        nbytes=st.integers(1, 10**8),
    )
    @FAST
    def test_route_costs_symmetric_and_positive(self, a, b, nbytes):
        from repro.hardware import LASSEN, Cluster

        cluster = Cluster(Environment(), LASSEN, num_nodes=4)
        ga, gb = cluster.gpu_ref(a), cluster.gpu_ref(b)
        forward = cluster.path_cost(ga, gb, nbytes)
        backward = cluster.path_cost(gb, ga, nbytes)
        assert forward == pytest.approx(backward)
        if a == b:
            assert forward == 0.0
        else:
            assert forward > 0
            # wire time never beats the bottleneck-bandwidth bound
            assert forward >= nbytes / cluster.path_bandwidth(ga, gb)

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @FAST
    def test_route_endpoints_consistent(self, a, b):
        from repro.hardware import LASSEN, Cluster

        cluster = Cluster(Environment(), LASSEN, num_nodes=4)
        ga, gb = cluster.gpu_ref(a), cluster.gpu_ref(b)
        hops = cluster.route(ga, gb)
        if a == b:
            assert hops == []
            return
        assert hops[0][1] == ga
        assert hops[-1][2] == gb
        # hops chain: each hop starts where the previous ended
        for (_, _, to), (_, frm, _) in zip(hops, hops[1:]):
            assert to == frm


class TestConvProperties:
    @given(seed=st.integers(0, 10**6))
    @FAST
    def test_conv_linear_in_weights(self, seed):
        """conv(x, w1 + w2) == conv(x, w1) + conv(x, w2)."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32))
        w1 = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        w2 = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        combined = F.conv2d(x, Tensor(w1 + w2), padding=1).numpy()
        separate = (
            F.conv2d(x, Tensor(w1), padding=1).numpy()
            + F.conv2d(x, Tensor(w2), padding=1).numpy()
        )
        np.testing.assert_allclose(combined, separate, rtol=1e-4, atol=1e-4)

    @given(seed=st.integers(0, 10**6), shift=st.integers(1, 2))
    @FAST
    def test_conv_translation_equivariance(self, seed, shift):
        """Shifting the input (valid conv) shifts the output."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 1, 9, 9)).astype(np.float32)
        w = Tensor(rng.standard_normal((1, 1, 3, 3)).astype(np.float32))
        out = F.conv2d(Tensor(x), w, padding=0).numpy()
        shifted = np.roll(x, shift, axis=3)
        out_shifted = F.conv2d(Tensor(shifted), w, padding=0).numpy()
        # interior columns (unaffected by wrap-around) must match the shift
        np.testing.assert_allclose(
            out_shifted[..., shift + 1 :], out[..., 1 : out.shape[3] - shift],
            rtol=1e-4, atol=1e-4,
        )


class TestFaultDeterminism:
    """Identical seed + FaultPlan ⇒ byte-identical fault traces and timing,
    for any plan hypothesis can dream up — even when the run fails."""

    @given(
        seed=st.integers(0, 2**31),
        drop=st.floats(0.0, 0.9),
        delay=st.floats(0.0, 1e-3),
        sigma=st.floats(0.0, 0.5),
    )
    @FAST
    def test_p2p_chaos_runs_are_reproducible(self, seed, drop, delay, sigma):
        from repro.errors import MpiError
        from repro.faults import (
            FaultInjector, FaultPlan, JitterFault, MessageFault, RetryPolicy,
        )
        from repro.hardware import LASSEN, Cluster
        from repro.mpi import Mv2Config, WorldSpec
        from repro.mpi.p2p import P2PFabric
        from repro.mpi.process import SingletonDevicePolicy, build_world
        from repro.mpi.transports import TransportModel

        faults = [JitterFault(sigma=sigma)] if sigma > 0 else []
        if drop > 0 or delay > 0:
            faults.append(MessageFault(drop_prob=drop, delay_s=delay))
        plan = FaultPlan(seed=seed, faults=tuple(faults))

        def run_once():
            env = Environment()
            cluster = Cluster(env, LASSEN, num_nodes=1)
            config = Mv2Config(mv2_visible_devices="all",
                               registration_cache=True)
            spec = WorldSpec(num_ranks=4, policy=SingletonDevicePolicy(),
                             config=config)
            ranks = build_world(cluster, spec)
            injector = FaultInjector(plan)
            fabric = P2PFabric(TransportModel(
                cluster, config, ranks, faults=injector,
                retry=RetryPolicy(max_retries=6)))
            for s, d in ((0, 1), (1, 2), (2, 3), (3, 0)):
                fabric.isend(s, d, tag=s, nbytes=4096)
                fabric.irecv(d, source=s, tag=s, nbytes=4096)
            outcome = "ok"
            try:
                env.run()
            except MpiError as exc:  # reproducible failures count too
                outcome = f"{type(exc).__name__}"
            factors = [injector.compute_factor(r, env.now, step=1)
                       for r in range(4)]
            return outcome, env.now, factors, injector.trace.to_json()

        assert run_once() == run_once()

    @given(seed=st.integers(0, 2**31), sigma=st.floats(0.0, 1.0))
    @FAST
    def test_compute_factor_bounds_and_determinism(self, seed, sigma):
        from repro.faults import FaultInjector, FaultPlan, JitterFault

        plan = FaultPlan(seed=seed, faults=(JitterFault(sigma=sigma),))
        a = FaultInjector(plan).compute_factor(2, 0.0, step=5)
        b = FaultInjector(plan).compute_factor(2, 0.0, step=5)
        assert a == b
        assert a >= 1.0  # faults only ever slow compute down

    @given(seed=st.integers(0, 2**31))
    @FAST
    def test_plan_json_roundtrip_is_identity(self, seed):
        from repro.faults import (
            FaultPlan, LinkFault, MessageFault, RankFailure, StragglerFault,
        )

        plan = FaultPlan(seed=seed, faults=(
            StragglerFault(rank=seed % 8, factor=1.0 + (seed % 5)),
            LinkFault(kind="ib", bandwidth_factor=0.5),
            MessageFault(drop_prob=(seed % 100) / 100.0, delay_s=1e-6),
            RankFailure(rank=seed % 4, time=float(seed % 7)),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestDataProperties:
    @given(seed=st.integers(0, 500))
    @FAST
    def test_augmentation_preserves_pixel_multiset(self, seed):
        from repro.data.patches import augment_pair

        rng = np.random.default_rng(seed)
        lr = rng.random((3, 6, 6)).astype(np.float32)
        hr = rng.random((3, 12, 12)).astype(np.float32)
        lr2, hr2 = augment_pair(lr.copy(), hr.copy(), rng)
        np.testing.assert_allclose(np.sort(lr2.ravel()), np.sort(lr.ravel()))
        np.testing.assert_allclose(np.sort(hr2.ravel()), np.sort(hr.ravel()))
        assert lr2.shape == lr.shape and hr2.shape == hr.shape

    @given(index=st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_dataset_pairs_are_deterministic(self, index):
        from repro.data import DegradationConfig, SyntheticDiv2k, degrade

        src = SyntheticDiv2k(height=16, width=16, seed=9)
        hr1 = src.image(index)
        hr2 = src.image(index)
        np.testing.assert_array_equal(hr1, hr2)
        lr1 = degrade(hr1, DegradationConfig(scale=2))
        lr2 = degrade(hr2, DegradationConfig(scale=2))
        np.testing.assert_array_equal(lr1, lr2)
