"""Tests for the data pipeline and IQA metrics."""

import numpy as np
import pytest

from repro.data import (
    DegradationConfig,
    DistributedSampler,
    PatchLoader,
    SRDataset,
    SyntheticDiv2k,
    degrade,
    sample_patch_pair,
)
from repro.data.synthetic import TEST_SIZE, TRAIN_SIZE, VAL_SIZE
from repro.errors import DataError
from repro.metrics import psnr, ssim
from repro.models.bicubic import bicubic_upscale

RNG = np.random.default_rng(11)


class TestSyntheticSource:
    def test_shape_range_dtype(self):
        src = SyntheticDiv2k(height=48, width=64)
        img = src.image(0)
        assert img.shape == (3, 48, 64)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic_per_index(self):
        a = SyntheticDiv2k(seed=5).image(3)
        b = SyntheticDiv2k(seed=5).image(3)
        np.testing.assert_array_equal(a, b)

    def test_distinct_across_indices_and_seeds(self):
        src = SyntheticDiv2k(seed=5)
        assert not np.array_equal(src.image(0), src.image(1))
        assert not np.array_equal(src.image(0), SyntheticDiv2k(seed=6).image(0))

    def test_div2k_split_sizes(self):
        src = SyntheticDiv2k()
        assert len(list(src.train_indices())) == TRAIN_SIZE == 800
        assert len(list(src.val_indices())) == VAL_SIZE == 100
        assert len(list(src.test_indices())) == TEST_SIZE == 100
        assert len(src) == 1000

    def test_images_have_structure_not_white_noise(self):
        """Neighbouring pixels must correlate (photo-like statistics)."""
        img = SyntheticDiv2k(height=64, width=64).image(0)
        horizontal_diff = np.abs(np.diff(img, axis=2)).mean()
        assert horizontal_diff < 0.1  # white noise would be ~0.33

    def test_out_of_range_rejected(self):
        with pytest.raises(DataError):
            SyntheticDiv2k().image(1000)


class TestDegradationAndPatches:
    def test_degrade_halves_resolution(self):
        hr = SyntheticDiv2k(height=32, width=32).image(0)
        lr = degrade(hr, DegradationConfig(scale=2))
        assert lr.shape == (3, 16, 16)

    def test_blur_and_noise_options(self):
        hr = SyntheticDiv2k(height=32, width=32).image(0)
        plain = degrade(hr, DegradationConfig(scale=2))
        noisy = degrade(
            hr, DegradationConfig(scale=2, blur_sigma=0.8, noise_sigma=0.02),
            rng=np.random.default_rng(0),
        )
        assert not np.array_equal(plain, noisy)
        assert noisy.min() >= 0 and noisy.max() <= 1

    def test_patch_pair_alignment(self):
        src = SyntheticDiv2k(height=40, width=40)
        hr = src.image(0)
        lr = degrade(hr, DegradationConfig(scale=2))
        lr_crop, hr_crop = sample_patch_pair(lr, hr, 8, 2, RNG)
        assert lr_crop.shape == (3, 8, 8)
        assert hr_crop.shape == (3, 16, 16)
        # the HR crop downsampled should resemble the LR crop
        from repro.models.bicubic import bicubic_downscale

        approx = bicubic_downscale(hr_crop, 2)
        assert np.abs(approx - lr_crop).mean() < 0.1

    def test_patch_too_large_rejected(self):
        hr = np.zeros((3, 16, 16), dtype=np.float32)
        lr = np.zeros((3, 8, 8), dtype=np.float32)
        with pytest.raises(DataError):
            sample_patch_pair(lr, hr, 12, 2, RNG)

    def test_misaligned_sizes_rejected(self):
        with pytest.raises(DataError):
            sample_patch_pair(
                np.zeros((3, 8, 8), dtype=np.float32),
                np.zeros((3, 17, 16), dtype=np.float32),
                4, 2, RNG,
            )


class TestDatasetSamplerLoader:
    def test_dataset_splits(self):
        src = SyntheticDiv2k(height=24, width=24)
        train = SRDataset(src, split="train")
        val = SRDataset(src, split="val")
        assert len(train) == 800 and len(val) == 100
        lr, hr = train[0]
        assert hr.shape == (3, 24, 24) and lr.shape == (3, 12, 12)

    def test_dataset_caching_returns_same_object(self):
        src = SyntheticDiv2k(height=16, width=16)
        ds = SRDataset(src, split="val", cache_size=4)
        assert ds[0] is ds[0]

    def test_sampler_shards_are_disjoint_and_cover(self):
        n, ranks = 100, 4
        shards = [
            DistributedSampler(n, ranks, r, shuffle=True, seed=1).indices()
            for r in range(ranks)
        ]
        assert all(len(s) == 25 for s in shards)
        combined = sorted(i for s in shards for i in s)
        assert combined == list(range(100))

    def test_sampler_pads_by_wraparound(self):
        shards = [DistributedSampler(10, 4, r, shuffle=False).indices() for r in range(4)]
        assert all(len(s) == 3 for s in shards)  # ceil(10/4)

    def test_sampler_epoch_changes_order(self):
        s = DistributedSampler(50, 2, 0, seed=3)
        first = s.indices()
        s.set_epoch(1)
        assert s.indices() != first

    def test_loader_batch_shapes(self):
        src = SyntheticDiv2k(height=32, width=32)
        ds = SRDataset(src, split="train")
        loader = PatchLoader(ds, batch_size=4, lr_patch=8)
        batches = list(loader.batches(3))
        assert len(batches) == 3
        lr_batch, hr_batch = batches[0]
        assert lr_batch.shape == (4, 3, 8, 8)
        assert hr_batch.shape == (4, 3, 16, 16)
        assert lr_batch.dtype == np.float32

    def test_loader_rank_streams_differ(self):
        src = SyntheticDiv2k(height=32, width=32)
        ds = SRDataset(src, split="train")
        batches = []
        for rank in range(2):
            sampler = DistributedSampler(len(ds), 2, rank, seed=1)
            loader = PatchLoader(ds, batch_size=2, lr_patch=8, sampler=sampler, seed=1)
            batches.append(next(iter(loader.batches(1))))
        assert not np.array_equal(batches[0][0], batches[1][0])


class TestMetrics:
    def test_psnr_identical_is_inf(self):
        img = RNG.random((3, 16, 16))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((1, 8, 8))
        b = np.full((1, 8, 8), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)

    def test_psnr_monotone_in_noise(self):
        img = SyntheticDiv2k(height=32, width=32).image(0)
        small = img + RNG.normal(0, 0.01, img.shape)
        large = img + RNG.normal(0, 0.1, img.shape)
        assert psnr(small, img) > psnr(large, img)

    def test_ssim_identical_is_one(self):
        img = RNG.random((3, 16, 16))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_ssim_decreases_with_distortion(self):
        img = SyntheticDiv2k(height=32, width=32).image(0)
        noisy = np.clip(img + RNG.normal(0, 0.1, img.shape), 0, 1)
        assert ssim(noisy, img) < 0.98

    def test_ssim_bounded(self):
        a = RNG.random((3, 16, 16))
        b = RNG.random((3, 16, 16))
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_bicubic_beats_nearest_on_smooth_content(self):
        """Sanity anchor for the Fig-4-style comparison."""
        yy, xx = np.mgrid[0:32, 0:32] / 32.0
        hr = np.stack(
            [np.sin(4 * yy) * 0.4 + 0.5, np.cos(3 * xx) * 0.4 + 0.5, yy * xx]
        ).astype(np.float32)
        lr = degrade(hr, DegradationConfig(scale=2))
        bic = bicubic_upscale(lr, 2)
        nearest = np.repeat(np.repeat(lr, 2, axis=1), 2, axis=2)
        assert psnr(bic, hr) > psnr(nearest, hr)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            psnr(np.zeros((3, 4, 4)), np.zeros((3, 5, 5)))
        with pytest.raises(DataError):
            ssim(np.zeros((3, 16, 16)), np.zeros((3, 17, 17)))
