"""Fast-path == slow-path equivalence tests.

Every optimization in the perf layer claims result preservation; this file
enforces each claim by running the same workload with the fast path on and
off:

* uncontended-link collapse: identical event-mode timings;
* collective-schedule memoization: identical timings;
* steady-state extrapolation: matches full simulation within ulp-level
  tolerance (zero jitter), never fires under the default jitter;
* parallel sweep: identical to the serial sweep, in order;
* result cache: cached point identical to the freshly simulated one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import MPI_OPT, ScalingStudy, StudyConfig, scenario_by_name
from repro.hardware import LASSEN, Cluster
from repro.mpi import MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode
from repro.mpi.collectives.allreduce import allreduce_timing, clear_schedule_cache
from repro.perf import ResultCache, flags, run_point_jobs, PointJob
from repro.sim import Environment
from repro.utils.units import MIB

ALGORITHMS = ["ring", "reduce_scatter_allgather", "hierarchical"]


@pytest.fixture()
def restore_flags():
    saved = (flags.link_fastpath, flags.schedule_memo)
    yield
    flags.link_fastpath, flags.schedule_memo = saved
    clear_schedule_cache()


def _event_allreduce(num_ranks: int, nbytes: int, algorithm: str) -> float:
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, num_ranks // 4))
    spec = WorldSpec(
        num_ranks=num_ranks, policy=MPI_OPT.policy, config=MPI_OPT.mv2
    )
    world = MpiWorld(cluster, spec, mode=ExecutionMode.EVENT)
    t = allreduce_timing(
        world.coster, list(range(num_ranks)), nbytes, algorithm=algorithm
    )
    return t.time


class TestLinkFastPath:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_event_timings_identical_with_and_without(
        self, algorithm, restore_flags
    ):
        flags.link_fastpath = True
        clear_schedule_cache()
        fast = _event_allreduce(8, 16 * MIB, algorithm)
        flags.link_fastpath = False
        clear_schedule_cache()
        slow = _event_allreduce(8, 16 * MIB, algorithm)
        assert fast == slow, f"{algorithm}: fast {fast} != slow {slow}"

    def test_contended_links_still_queue(self, restore_flags):
        """Two concurrent transfers over the same route must serialize on
        the bottleneck whether or not the fast path is active."""
        times = {}
        for enabled in (True, False):
            flags.link_fastpath = enabled
            env = Environment()
            cluster = Cluster(env, LASSEN, num_nodes=2)
            src = cluster.gpu_ref(0)
            dst = cluster.gpu_ref(4)
            done = []

            def flow(nbytes=64 * MIB):
                yield from cluster.transfer(src, dst, nbytes)
                done.append(env.now)

            env.process(flow())
            env.process(flow())
            env.run()
            times[enabled] = tuple(done)
        assert times[True] == times[False]
        # the second flow finishes strictly after the first (serialized)
        assert times[True][1] > times[True][0]


class TestScheduleMemo:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_timings_identical_with_and_without(self, algorithm, restore_flags):
        flags.schedule_memo = False
        clear_schedule_cache()
        unmemoized = _event_allreduce(8, 8 * MIB, algorithm)
        flags.schedule_memo = True
        clear_schedule_cache()
        first = _event_allreduce(8, 8 * MIB, algorithm)
        second = _event_allreduce(8, 8 * MIB, algorithm)
        assert unmemoized == first == second


class TestSteadyStateExtrapolation:
    def test_zero_jitter_matches_full_simulation(self):
        scenario = scenario_by_name("MPI-Opt")
        fast_cfg = StudyConfig(jitter_sigma=0.0, measure_steps=8)
        slow_cfg = StudyConfig(
            jitter_sigma=0.0, measure_steps=8, steady_detect=False
        )
        fast = ScalingStudy(scenario, fast_cfg).run_point(16)
        slow = ScalingStudy(scenario, slow_cfg).run_point(16)
        assert fast.extrapolated_steps > 0
        assert slow.extrapolated_steps == 0
        assert fast.simulated_steps + fast.extrapolated_steps == 8
        # per-step accumulator noise bounds the drift at the ulp level
        assert fast.step_time == pytest.approx(slow.step_time, rel=1e-12)
        assert fast.images_per_second == pytest.approx(
            slow.images_per_second, rel=1e-12
        )
        assert fast.comm_wall_time == slow.comm_wall_time
        assert fast.message_sizes == slow.message_sizes

    def test_default_jitter_never_extrapolates(self):
        scenario = scenario_by_name("MPI")
        jittered = StudyConfig(measure_steps=6)
        point = ScalingStudy(scenario, jittered).run_point(8)
        assert point.extrapolated_steps == 0
        assert point.simulated_steps == 6
        # and the result is bit-identical to a detector-free run
        off = ScalingStudy(
            scenario, StudyConfig(measure_steps=6, steady_detect=False)
        ).run_point(8)
        assert point.step_time == off.step_time

    def test_profiled_runs_simulate_every_step(self):
        from repro.profiling import Hvprof

        scenario = scenario_by_name("MPI")
        config = StudyConfig(jitter_sigma=0.0, measure_steps=8)
        hv = Hvprof()
        point = ScalingStudy(scenario, config).run_point(4, hvprof=hv)
        assert point.extrapolated_steps == 0
        assert point.simulated_steps == 8


class TestParallelSweep:
    def test_parallel_merge_identical_to_serial(self):
        scenario = scenario_by_name("MPI-Opt")
        config = StudyConfig()
        gpu_counts = [4, 8, 16]
        serial = ScalingStudy(scenario, config).run(gpu_counts)
        parallel = ScalingStudy(scenario, config).run(gpu_counts, jobs=2)
        assert [p.num_gpus for p in parallel] == gpu_counts
        for s, p in zip(serial, parallel):
            assert dataclasses.asdict(s) == dataclasses.asdict(p)

    def test_run_point_jobs_preserves_input_order(self):
        config = StudyConfig()
        jobs = [
            PointJob("MPI-Opt", 8, config),
            PointJob("MPI", 4, config),
            PointJob("MPI-Opt", 4, config),
        ]
        points = run_point_jobs(jobs, workers=2)
        assert [(p.scenario, p.num_gpus) for p in points] == [
            ("MPI-Opt", 8), ("MPI", 4), ("MPI-Opt", 4)
        ]

    def test_custom_scenario_falls_back_to_serial(self):
        scenario = dataclasses.replace(scenario_by_name("MPI"), name="custom")
        study = ScalingStudy(scenario, StudyConfig())
        assert not study._parallel_safe()
        points = study.run([4], jobs=4)  # must not try to pickle by name
        assert points[0].scenario == "custom"


class TestCacheEquivalence:
    def test_cached_sweep_identical_to_fresh(self, tmp_path):
        scenario = scenario_by_name("MPI")
        config = StudyConfig()
        cache = ResultCache(str(tmp_path))
        fresh = ScalingStudy(scenario, config).run([4, 8], cache=cache)
        cached = ScalingStudy(scenario, config).run([4, 8], cache=cache)
        assert cache.hits == 2
        for f, c in zip(fresh, cached):
            assert dataclasses.asdict(f) == dataclasses.asdict(c)

    def test_knob_change_misses_cache(self, tmp_path, monkeypatch):
        scenario = scenario_by_name("MPI")
        cache = ResultCache(str(tmp_path))
        ScalingStudy(scenario, StudyConfig()).run_point(4, cache=cache)
        assert cache.entry_count() == 1
        monkeypatch.setenv("HOROVOD_SOME_KNOB", "on")
        ScalingStudy(scenario, StudyConfig()).run_point(4, cache=cache)
        assert cache.entry_count() == 2  # distinct digest, no false hit
