"""Tests for hvprof: bins, collection, reports, comparison tables."""

import pytest

from repro.errors import ConfigError
from repro.mpi.collectives.base import CollectiveTiming, ExecutionMode
from repro.profiling import (
    PAPER_BINS,
    Hvprof,
    SizeBin,
    bin_for,
    comparison_table,
    improvement_summary,
)
from repro.utils.units import KIB, MIB


def fake_timing(nbytes, time, op="allreduce", algorithm="ring"):
    return CollectiveTiming(op, algorithm, nbytes, 4, time, ExecutionMode.ANALYTIC)


class TestBins:
    def test_paper_bins_cover_table1_rows(self):
        labels = [b.label for b in PAPER_BINS]
        assert labels == [
            "1-128 KB", "128 KB - 16 MB", "16 MB - 32 MB", "32 MB - 64 MB",
        ]

    def test_bin_boundaries(self):
        assert bin_for(0).label == "1-128 KB"
        assert bin_for(128 * KIB - 1).label == "1-128 KB"
        assert bin_for(128 * KIB).label == "128 KB - 16 MB"
        assert bin_for(16 * MIB).label == "16 MB - 32 MB"
        assert bin_for(32 * MIB).label == "32 MB - 64 MB"
        assert bin_for(64 * MIB).label == "32 MB - 64 MB"
        assert bin_for(65 * MIB) is None

    def test_invalid_bin_rejected(self):
        with pytest.raises(ConfigError):
            SizeBin("bad", 10, 10)


class TestHvprof:
    def test_records_and_aggregates(self):
        hv = Hvprof()
        hv.observer(fake_timing(1 * MIB, 0.010), "mpi")
        hv.observer(fake_timing(32 * MIB, 0.050), "mpi")
        hv.observer(fake_timing(40 * MIB, 0.060), "mpi")
        assert hv.op_count() == 3
        assert hv.total_time() == pytest.approx(0.120)
        stats = hv.by_bin()
        assert stats[PAPER_BINS[1]].count == 1
        assert stats[PAPER_BINS[3]].count == 2
        assert stats[PAPER_BINS[3]].total_time == pytest.approx(0.110)

    def test_filters_by_op(self):
        hv = Hvprof()
        hv.observer(fake_timing(1 * MIB, 0.01), "mpi")
        hv.observer(fake_timing(1 * MIB, 0.02, op="bcast"), "mpi")
        assert hv.op_count("allreduce") == 1
        assert hv.op_count("bcast") == 1
        assert hv.op_count(None) == 2

    def test_report_renders_fig14_layout(self):
        hv = Hvprof()
        hv.observer(fake_timing(20 * MIB, 0.013), "mpi")
        report = hv.report()
        assert "16 MB - 32 MB" in report
        assert "Total" in report

    def test_clear(self):
        hv = Hvprof()
        hv.observer(fake_timing(1 * MIB, 0.01), "mpi")
        hv.clear()
        assert hv.op_count() == 0


class TestComparison:
    def _profiles(self):
        default, optimized = Hvprof(), Hvprof()
        # small bin: identical (paper: ~0 improvement)
        for hv in (default, optimized):
            hv.observer(fake_timing(64 * KIB, 0.004), "mpi")
        # large bin: optimized twice as fast (paper: ~50%)
        default.observer(fake_timing(48 * MIB, 0.050), "mpi")
        optimized.observer(fake_timing(48 * MIB, 0.025), "mpi")
        return default, optimized

    def test_improvement_summary_matches_table1_structure(self):
        default, optimized = self._profiles()
        summary = improvement_summary(default, optimized)
        assert summary["1-128 KB"] == pytest.approx(0.0)
        assert summary["32 MB - 64 MB"] == pytest.approx(50.0)
        assert summary["Total"] == pytest.approx(100 * 25 / 54, rel=1e-3)

    def test_comparison_table_renders(self):
        default, optimized = self._profiles()
        table = comparison_table(default, optimized)
        assert "Table I" in table
        assert "50.000" in table or "50.0" in table

    def test_empty_bins_report_zero_improvement(self):
        summary = improvement_summary(Hvprof(), Hvprof())
        assert all(v == 0.0 for v in summary.values())


class TestEndToEndProfile:
    def test_hvprof_on_real_study_reproduces_table1_shape(self):
        """Profile 10 steps default vs optimized at 4 GPUs: large bins must
        improve ~2x, small bins ~not at all, echoing Table I."""
        from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig

        cfg = StudyConfig(measure_steps=10)
        profiles = {}
        for scenario in (MPI_DEFAULT, MPI_OPT):
            hv = Hvprof()
            ScalingStudy(scenario, cfg).run_point(4, hvprof=hv)
            profiles[scenario.name] = hv
        summary = improvement_summary(profiles["MPI"], profiles["MPI-Opt"])
        assert summary["Total"] > 30.0
        large_bin_improvement = max(
            summary["16 MB - 32 MB"], summary["32 MB - 64 MB"]
        )
        assert large_bin_improvement > 35.0


class TestEnhancedReports:
    def _loaded(self):
        hv = Hvprof()
        hv.observer(fake_timing(20 * MIB, 0.010, algorithm="ring"), "mpi")
        hv.observer(fake_timing(40 * MIB, 0.030, algorithm="hierarchical"), "mpi")
        hv.observer(fake_timing(40 * MIB, 0.010, algorithm="hierarchical"), "mpi")
        return hv

    def test_by_algorithm_aggregation(self):
        hv = self._loaded()
        stats = hv.by_algorithm()
        assert stats["ring"].count == 1
        assert stats["hierarchical"].count == 2
        assert stats["hierarchical"].total_time == pytest.approx(0.040)

    def test_algorithm_report_renders_shares(self):
        report = self._loaded().algorithm_report()
        assert "hierarchical" in report
        assert "80.0%" in report

    def test_effective_bandwidth(self):
        hv = Hvprof()
        hv.observer(fake_timing(50_000_000, 0.010), "mpi")
        assert hv.effective_bandwidth() == pytest.approx(5e9)
        assert Hvprof().effective_bandwidth() == 0.0

    def test_report_includes_bandwidth_column(self):
        report = self._loaded().report()
        assert "GB/s" in report

    def test_json_roundtrip(self):
        hv = self._loaded()
        dump = hv.to_json()
        assert len(dump) == 3
        assert dump[0]["algorithm"] == "ring"
        assert dump[1]["nbytes"] == 40 * MIB
