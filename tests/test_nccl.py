"""Tests for the NCCL-like backend."""

import numpy as np
import pytest

from repro.errors import NcclError
from repro.hardware import LASSEN, Cluster
from repro.mpi.comm import GpuBuffer
from repro.nccl import NcclWorld, build_ring, ring_bandwidth
from repro.nccl.protocol import DEFAULT_PROTOCOL, NcclProtocol
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_world(num_gpus):
    nodes = max(1, (num_gpus + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    return NcclWorld(cluster, num_gpus)


class TestRings:
    def test_ring_order_is_node_major(self):
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        assert build_ring(cluster, [3, 0, 5, 1]) == [0, 1, 3, 5]

    def test_intra_node_ring_bandwidth_is_nvlink_class(self):
        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        bw = ring_bandwidth(cluster, [0, 1, 2, 3], DEFAULT_PROTOCOL)
        # cross-socket hop (X-Bus) is the intra-node bottleneck
        assert bw == pytest.approx(
            LASSEN.node.xbus_cpu_cpu.bandwidth * DEFAULT_PROTOCOL.nvlink_efficiency
        )

    def test_multi_node_ring_bottlenecked_by_ib(self):
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        bw = ring_bandwidth(cluster, list(range(8)), DEFAULT_PROTOCOL)
        assert bw == pytest.approx(
            LASSEN.ib.bandwidth * DEFAULT_PROTOCOL.ib_efficiency
        )

    def test_empty_ring_rejected(self):
        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        with pytest.raises(NcclError):
            build_ring(cluster, [])


class TestNcclAllreduce:
    def test_functional_semantics(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(256, float(r), dtype=np.float32) for r in range(4)]
        comm.allreduce([GpuBuffer.from_array(a) for a in arrays], average=True)
        np.testing.assert_allclose(arrays[0], 1.5)

    def test_large_message_time_near_bandwidth_bound(self):
        world = make_world(4)
        comm = world.communicator()
        nbytes = 64 * MIB
        t = comm.allreduce([GpuBuffer.virtual(nbytes) for _ in range(4)])
        bw = ring_bandwidth(world.cluster, list(range(4)), DEFAULT_PROTOCOL)
        bound = 2 * nbytes * 3 / (4 * bw)
        assert t.time >= bound
        assert t.time < 3 * bound

    def test_small_message_latency_floor(self):
        world = make_world(4)
        comm = world.communicator()
        t = comm.allreduce([GpuBuffer.virtual(4 * KIB) for _ in range(4)])
        assert t.time >= DEFAULT_PROTOCOL.ll_op_latency_s

    def test_tree_engages_at_scale(self):
        world = make_world(64)  # 16 nodes >= tree threshold
        comm = world.communicator()
        t = comm.allreduce([GpuBuffer.virtual(64 * MIB) for _ in range(64)])
        assert t.algorithm in ("nccl-tree", "nccl-ring")
        # at 16 nodes the tree should win for bandwidth-bound sizes
        assert t.algorithm == "nccl-tree"

    def test_single_rank_free(self):
        world = make_world(1)
        comm = world.communicator()
        t = comm.allreduce([GpuBuffer.virtual(64 * MIB)])
        assert t.time == 0.0

    def test_observers_and_counters(self):
        world = make_world(4)
        comm = world.communicator()
        seen = []
        comm.add_observer(lambda timing, backend: seen.append(backend))
        comm.allreduce([GpuBuffer.virtual(1 * MIB) for _ in range(4)])
        assert seen == ["nccl"]
        assert comm.op_count == 1
        assert comm.total_comm_time > 0

    def test_bcast(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(64, float(r), dtype=np.float32) for r in range(4)]
        t = comm.bcast([GpuBuffer.from_array(a) for a in arrays], root_index=1)
        np.testing.assert_allclose(arrays[3], 1.0)
        assert t.time > 0

    def test_barrier_positive_multirank(self):
        world = make_world(8)
        comm = world.communicator()
        assert comm.barrier().time > 0

    def test_too_many_ranks_rejected(self):
        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        with pytest.raises(NcclError):
            NcclWorld(cluster, 5)

    def test_mismatched_buffers_rejected(self):
        world = make_world(2)
        comm = world.communicator()
        with pytest.raises(NcclError):
            comm.allreduce([GpuBuffer.virtual(10), GpuBuffer.virtual(20)])
