"""Smoke tests that run every example end-to-end (small budgets).

Examples are the public face of the repo; these tests keep them working.
Each example's ``main()`` is invoked in-process with downsized arguments.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, script: str, argv: list[str]) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(f"{EXAMPLES}/{script}", run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py",
                      ["--steps", "15", "--batch", "2", "--patch", "8"])
    assert "trained 15 steps" in out
    assert "bicubic" in out


def test_visibility_mechanism(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "visibility_mechanism.py", [])
    assert "host-staged" in out
    assert "cuda-ipc" in out
    assert "MV2_VISIBLE_DEVICES" in out or "MV2-effective" in out


def test_batch_size_sweep(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "batch_size_sweep.py", [])
    assert "OOM" in out
    assert "max batch" in out


def test_scaling_study(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "scaling_study.py",
        ["--max-gpus", "8", "--scenarios", "MPI,MPI-Opt", "--steps", "1"],
    )
    assert "Scaling efficiency" in out
    assert "speedup" in out


def test_profile_allreduce(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "profile_allreduce.py",
                      ["--steps", "5", "--gpus", "4"])
    assert "Table I" in out
    assert "recommend" in out


def test_train_edsr_distributed(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "train_edsr_distributed.py",
                      ["--steps", "2", "--ranks", "2", "--batch", "1"])
    assert "replicas still in sync: True" in out


def test_tune_horovod(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "tune_horovod.py",
        ["--gpus", "4", "--thresholds", "64", "--cycles", "3.5,25"],
    )
    assert "best" in out


def test_model_zoo_comparison(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "model_zoo_comparison.py",
                      ["--steps", "10", "--val-images", "1"])
    assert "bicubic" in out
    assert "EDSR (tiny)" in out


def test_reproduce_paper(monkeypatch, capsys, tmp_path):
    out = run_example(
        monkeypatch, capsys, "reproduce_paper.py",
        ["--max-gpus", "8", "--steps", "1", "--profile-steps", "3",
         "--out", str(tmp_path / "report.txt")],
    )
    assert "Fig. 1" in out
    assert "Table I" in out
    assert (tmp_path / "report.txt").exists()


def test_inject_faults(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "inject_faults.py",
        ["--ranks", "4", "--steps", "4", "--fail-rank", "2"],
    )
    assert "runs identical: True" in out
    assert "drift 0.0" in out
    assert "world size over time" in out
    assert "ring-shrink" in out


def test_serve_traffic(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "serve_traffic.py",
                      ["--duration", "90", "--seed", "11"])
    assert "failure detected and failed over" in out
    assert "within the 1000 ms SLO" in out
