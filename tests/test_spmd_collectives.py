"""Tests for SPMD (true message-passing) collectives and their agreement
with the BSP timing engine."""

import numpy as np
import pytest

from repro.hardware import LASSEN, Cluster
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode
from repro.mpi.collectives.allreduce import allreduce_timing
from repro.mpi.collectives.spmd import ring_allreduce_spmd
from repro.mpi.datatypes import ReduceOp
from repro.mpi.p2p import P2PFabric
from repro.mpi.process import SingletonDevicePolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_fabric(num_gpus=4):
    nodes = max(1, (num_gpus + 3) // 4)
    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=nodes)
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=num_gpus, policy=SingletonDevicePolicy(),
                     config=config)
    from repro.mpi.process import build_world

    ranks = build_world(cluster, spec)
    return env, P2PFabric(TransportModel(cluster, config, ranks))


class TestSpmdRingAllreduce:
    def test_functional_reduction_correct(self):
        env, fabric = make_fabric(4)
        data = {
            r: np.full(32, float(r + 1), dtype=np.float32) for r in range(4)
        }
        nbytes = 32 * 4
        ring_allreduce_spmd(fabric, [0, 1, 2, 3], nbytes, data=data)
        for r in range(4):
            np.testing.assert_allclose(data[r], 10.0, rtol=1e-6)

    def test_uneven_element_counts(self):
        """Element count not divisible by rank count still reduces right."""
        env, fabric = make_fabric(4)
        rng = np.random.default_rng(0)
        arrays = {r: rng.random(37).astype(np.float32) for r in range(4)}
        expected = np.sum(list(arrays.values()), axis=0)
        ring_allreduce_spmd(fabric, [0, 1, 2, 3], 37 * 4, data=arrays)
        for r in range(4):
            np.testing.assert_allclose(arrays[r], expected, rtol=1e-5)

    def test_max_reduction(self):
        env, fabric = make_fabric(4)
        rng = np.random.default_rng(1)
        arrays = {r: rng.random(16).astype(np.float32) for r in range(4)}
        expected = np.max(list(arrays.values()), axis=0)
        ring_allreduce_spmd(fabric, [0, 1, 2, 3], 64, data=arrays,
                            op=ReduceOp.MAX)
        np.testing.assert_allclose(arrays[2], expected, rtol=1e-6)

    def test_single_rank_noop(self):
        env, fabric = make_fabric(4)
        data = {0: np.ones(4, dtype=np.float32)}
        result = ring_allreduce_spmd(fabric, [0], 16, data=data)
        np.testing.assert_array_equal(data[0], 1.0)
        assert result.makespan == 0.0

    def test_timing_only_mode(self):
        env, fabric = make_fabric(4)
        result = ring_allreduce_spmd(fabric, [0, 1, 2, 3], 32 * MIB)
        assert result.makespan > 0
        assert len(result.finish_times) == 4

    def test_straggler_delays_everyone(self):
        """Synchronous ring: one late rank pushes every finish time out."""
        base_env, base_fabric = make_fabric(4)
        base = ring_allreduce_spmd(base_fabric, [0, 1, 2, 3], 8 * MIB)

        env, fabric = make_fabric(4)
        skewed = ring_allreduce_spmd(
            fabric, [0, 1, 2, 3], 8 * MIB, start_times={2: 0.050}
        )
        assert skewed.makespan >= base.makespan + 0.045
        # all ranks are delayed, not just rank 2
        assert min(skewed.finish_times.values()) > base.makespan

    @pytest.mark.parametrize("nbytes", [256 * KIB, 32 * MIB])
    def test_agrees_with_bsp_engine(self, nbytes):
        """True message-passing execution vs the BSP step scheduler."""
        env, fabric = make_fabric(4)
        spmd = ring_allreduce_spmd(fabric, [0, 1, 2, 3], nbytes)

        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        spec = WorldSpec(
            num_ranks=4, policy=SingletonDevicePolicy(),
            config=Mv2Config(mv2_visible_devices="all", registration_cache=True),
        )
        world = MpiWorld(cluster, spec, mode=ExecutionMode.ANALYTIC)
        bsp = allreduce_timing(world.coster, [0, 1, 2, 3], nbytes,
                               algorithm="ring")
        # SPMD has no per-step barrier and no reduce-kernel modelling at the
        # fabric level; agreement within ~2x validates both engines' scale
        ratio = spmd.makespan / bsp.time
        assert 0.4 < ratio < 2.0, f"spmd={spmd.makespan}, bsp={bsp.time}"

    def test_mismatched_arrays_rejected(self):
        from repro.errors import MpiError

        env, fabric = make_fabric(4)
        data = {
            0: np.ones(8, dtype=np.float32),
            1: np.ones(9, dtype=np.float32),
            2: np.ones(8, dtype=np.float32),
            3: np.ones(8, dtype=np.float32),
        }
        with pytest.raises(MpiError):
            ring_allreduce_spmd(fabric, [0, 1, 2, 3], 32, data=data)


class TestSpmdHierarchicalAllreduce:
    def test_functional_reduction_across_nodes(self):
        from repro.mpi.collectives.spmd import hierarchical_allreduce_spmd

        env, fabric = make_fabric(8)
        rng = np.random.default_rng(2)
        arrays = {r: rng.random(24).astype(np.float32) for r in range(8)}
        expected = np.sum(list(arrays.values()), axis=0)
        hierarchical_allreduce_spmd(fabric, list(range(8)), 24 * 4, data=arrays)
        for r in range(8):
            np.testing.assert_allclose(arrays[r], expected, rtol=1e-4,
                                       atol=1e-4)

    def test_single_node_group(self):
        from repro.mpi.collectives.spmd import hierarchical_allreduce_spmd

        env, fabric = make_fabric(4)
        arrays = {r: np.full(8, float(r), dtype=np.float32) for r in range(4)}
        hierarchical_allreduce_spmd(fabric, [0, 1, 2, 3], 32, data=arrays)
        for r in range(4):
            np.testing.assert_allclose(arrays[r], 6.0)

    def test_odd_group_sizes(self):
        from repro.mpi.collectives.spmd import hierarchical_allreduce_spmd

        env, fabric = make_fabric(8)
        ranks = [0, 1, 2, 4, 5]  # 3 ranks on node 0, 2 on node 1
        arrays = {r: np.full(6, float(r + 1), dtype=np.float32) for r in ranks}
        hierarchical_allreduce_spmd(fabric, ranks, 24, data=arrays)
        for r in ranks:
            np.testing.assert_allclose(arrays[r], 1 + 2 + 3 + 5 + 6)

    def test_timing_agrees_with_bsp_hierarchical(self):
        from repro.mpi.collectives.spmd import hierarchical_allreduce_spmd

        nbytes = 16 * MIB
        env, fabric = make_fabric(8)
        spmd = hierarchical_allreduce_spmd(fabric, list(range(8)), nbytes)

        world = make_world_bsp(8)
        bsp = allreduce_timing(world.coster, list(range(8)), nbytes,
                               algorithm="hierarchical")
        ratio = spmd.makespan / bsp.time
        assert 0.4 < ratio < 2.2, f"spmd={spmd.makespan}, bsp={bsp.time}"


def make_world_bsp(num_gpus):
    nodes = max(1, (num_gpus + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(
        num_ranks=num_gpus, policy=SingletonDevicePolicy(),
        config=Mv2Config(mv2_visible_devices="all", registration_cache=True),
    )
    return MpiWorld(cluster, spec, mode=ExecutionMode.ANALYTIC)
