"""Tests for collective algorithms: correctness of schedules, timing sanity,
and cross-validation of the analytic engine against the event engine."""

import numpy as np
import pytest

from repro.hardware import LASSEN, Cluster
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode, StepCoster
from repro.mpi.collectives.allreduce import (
    allreduce_lower_bound,
    allreduce_timing,
    select_allreduce_algorithm,
)
from repro.mpi.collectives.allgather import allgather_timing
from repro.mpi.collectives.barrier import barrier_timing
from repro.mpi.collectives.bcast import bcast_timing
from repro.mpi.collectives.reduce import reduce_timing
from repro.mpi.comm import GpuBuffer
from repro.mpi.datatypes import ReduceOp
from repro.mpi.process import SingletonDevicePolicy
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_world(num_gpus, *, config=None, mode=ExecutionMode.ANALYTIC):
    nodes = max(1, (num_gpus + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(
        num_ranks=num_gpus,
        policy=SingletonDevicePolicy(),
        config=config or Mv2Config(mv2_visible_devices="all", registration_cache=True),
    )
    return MpiWorld(cluster, spec, mode=mode)


class TestAlgorithmSelection:
    def test_small_messages_pick_recursive_doubling(self):
        assert (
            select_allreduce_algorithm(8, 16 * KIB, nodes=2) == "recursive_doubling"
        )

    def test_large_multi_node_picks_hierarchical(self):
        assert select_allreduce_algorithm(512, 64 * MIB, nodes=128) == "hierarchical"

    def test_single_node_large_picks_ring(self):
        assert select_allreduce_algorithm(4, 64 * MIB, nodes=1) == "ring"

    def test_override_wins(self):
        assert select_allreduce_algorithm(8, 1, nodes=2, override="ring") == "ring"


class TestAllreduceTiming:
    @pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling",
                                           "reduce_scatter_allgather"])
    def test_positive_time_single_node(self, algorithm):
        world = make_world(4)
        t = allreduce_timing(world.coster, [0, 1, 2, 3], 32 * MIB, algorithm=algorithm)
        assert t.time > 0
        assert t.algorithm == algorithm

    def test_hierarchical_has_all_segments(self):
        world = make_world(8)
        t = allreduce_timing(
            world.coster, list(range(8)), 64 * MIB, algorithm="hierarchical"
        )
        assert set(t.segments) == {
            "intra_reduce",
            "inter_reduce_scatter",
            "inter_allgather",
            "intra_bcast",
        }
        assert t.time == pytest.approx(sum(t.segments.values()))

    def test_ring_respects_bandwidth_lower_bound(self):
        world = make_world(4)
        nbytes = 64 * MIB
        t = allreduce_timing(world.coster, [0, 1, 2, 3], nbytes, algorithm="ring")
        # intra-node ring over NVLink: bound by the slowest link on the ring
        bound = allreduce_lower_bound(nbytes, 4, LASSEN.node.nvlink_gpu_gpu.bandwidth)
        assert t.time >= bound

    def test_single_rank_is_free(self):
        world = make_world(4)
        t = allreduce_timing(world.coster, [0], 64 * MIB)
        assert t.time == 0.0

    def test_zero_bytes_is_free(self):
        world = make_world(4)
        t = allreduce_timing(world.coster, [0, 1], 0)
        assert t.time == 0.0

    def test_non_power_of_two_recursive_doubling_falls_back_to_ring(self):
        world = make_world(12)
        t = allreduce_timing(
            world.coster, list(range(12)), 1 * MIB, algorithm="recursive_doubling"
        )
        assert t.algorithm == "ring"

    def test_ipc_config_faster_than_staged_config(self):
        """End-to-end: MPI-Opt allreduce beats default on one node (64 MB)."""
        opt = make_world(4)
        default = make_world(4, config=Mv2Config())  # no MV2_VISIBLE_DEVICES
        nbytes = 64 * MIB
        t_opt = allreduce_timing(opt.coster, [0, 1, 2, 3], nbytes, algorithm="ring")
        t_def = allreduce_timing(default.coster, [0, 1, 2, 3], nbytes, algorithm="ring")
        assert t_def.time > 1.5 * t_opt.time

    def test_more_ranks_more_time_staged(self):
        world = make_world(8, config=Mv2Config())
        t4 = allreduce_timing(world.coster, [0, 1, 2, 3], 32 * MIB, algorithm="hierarchical")
        t8 = allreduce_timing(world.coster, list(range(8)), 32 * MIB, algorithm="hierarchical")
        assert t8.time > t4.time


class TestOtherCollectives:
    def test_bcast_single_node(self):
        world = make_world(4)
        t = bcast_timing(world.coster, [0, 1, 2, 3], 16 * MIB)
        assert t.time > 0
        assert "tree" in t.segments

    def test_bcast_hierarchical_across_nodes(self):
        world = make_world(8)
        t = bcast_timing(world.coster, list(range(8)), 16 * MIB)
        assert {"inter_tree", "intra_tree"} <= set(t.segments)

    def test_bcast_zero_ranks_or_bytes(self):
        world = make_world(4)
        assert bcast_timing(world.coster, [0], 1 * MIB).time == 0.0
        assert bcast_timing(world.coster, [0, 1], 0).time == 0.0

    def test_reduce_positive(self):
        world = make_world(4)
        t = reduce_timing(world.coster, [0, 1, 2, 3], 16 * MIB)
        assert t.time > 0

    def test_allgather_positive(self):
        world = make_world(4)
        t = allgather_timing(world.coster, [0, 1, 2, 3], 1 * MIB)
        assert t.time > 0

    def test_barrier_scales_with_log_ranks(self):
        world = make_world(16)
        t4 = barrier_timing(world.coster, list(range(4)))
        t16 = barrier_timing(world.coster, list(range(16)))
        assert 0 < t4.time < t16.time


class TestEngineCrossValidation:
    """The analytic engine must track the event engine within tolerance."""

    @pytest.mark.parametrize("nbytes", [256 * KIB, 8 * MIB, 64 * MIB])
    @pytest.mark.parametrize("algorithm", ["ring", "hierarchical"])
    def test_allreduce_two_engines_agree(self, nbytes, algorithm):
        results = {}
        for mode in (ExecutionMode.ANALYTIC, ExecutionMode.EVENT):
            world = make_world(8, mode=mode)
            t = allreduce_timing(
                world.coster, list(range(8)), nbytes, algorithm=algorithm
            )
            results[mode] = t.time
        ratio = results[ExecutionMode.EVENT] / results[ExecutionMode.ANALYTIC]
        assert 0.6 < ratio < 1.7, f"engines diverge: {results}"

    def test_staged_contention_visible_in_both_engines(self):
        """Default config staging contention appears in analytic and event."""
        times = {}
        for mode in (ExecutionMode.ANALYTIC, ExecutionMode.EVENT):
            world = make_world(4, config=Mv2Config(), mode=mode)
            t = allreduce_timing(world.coster, [0, 1, 2, 3], 64 * MIB, algorithm="ring")
            times[mode] = t.time
        ratio = times[ExecutionMode.EVENT] / times[ExecutionMode.ANALYTIC]
        assert 0.5 < ratio < 2.0, f"engines diverge: {times}"


class TestCommunicatorSemantics:
    def test_allreduce_sums_across_ranks(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(1024, float(r + 1), dtype=np.float32) for r in range(4)]
        buffers = [GpuBuffer.from_array(a) for a in arrays]
        comm.allreduce(buffers)
        for a in arrays:
            np.testing.assert_allclose(a, 10.0)

    def test_allreduce_average(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(16, float(r), dtype=np.float32) for r in range(4)]
        comm.allreduce([GpuBuffer.from_array(a) for a in arrays], average=True)
        for a in arrays:
            np.testing.assert_allclose(a, 1.5)

    @pytest.mark.parametrize("op,expected", [
        (ReduceOp.MAX, 3.0),
        (ReduceOp.MIN, 0.0),
        (ReduceOp.PROD, 0.0),
    ])
    def test_allreduce_other_ops(self, op, expected):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(8, float(r), dtype=np.float32) for r in range(4)]
        comm.allreduce([GpuBuffer.from_array(a) for a in arrays], op=op)
        np.testing.assert_allclose(arrays[0], expected)

    def test_bcast_copies_root(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(64, float(r), dtype=np.float32) for r in range(4)]
        comm.bcast([GpuBuffer.from_array(a) for a in arrays], root_index=2)
        for a in arrays:
            np.testing.assert_allclose(a, 2.0)

    def test_allgather_returns_all(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(8, float(r), dtype=np.float32) for r in range(4)]
        gathered, _ = comm.allgather([GpuBuffer.from_array(a) for a in arrays])
        assert len(gathered) == 4
        np.testing.assert_allclose(gathered[3], 3.0)

    def test_reduce_lands_on_root(self):
        world = make_world(4)
        comm = world.communicator()
        arrays = [np.full(8, 1.0, dtype=np.float32) for _ in range(4)]
        comm.reduce([GpuBuffer.from_array(a) for a in arrays], root_index=1)
        np.testing.assert_allclose(arrays[1], 4.0)

    def test_mismatched_sizes_rejected(self):
        from repro.errors import MpiError

        world = make_world(2)
        comm = world.communicator()
        with pytest.raises(MpiError):
            comm.allreduce([
                GpuBuffer.virtual(100), GpuBuffer.virtual(200),
            ])

    def test_wrong_buffer_count_rejected(self):
        from repro.errors import MpiError

        world = make_world(4)
        comm = world.communicator()
        with pytest.raises(MpiError):
            comm.allreduce([GpuBuffer.virtual(100)])

    def test_virtual_buffers_time_without_data(self):
        world = make_world(4)
        comm = world.communicator()
        timing = comm.allreduce([GpuBuffer.virtual(64 * MIB) for _ in range(4)])
        assert timing.time > 0

    def test_observer_called(self):
        world = make_world(4)
        comm = world.communicator()
        seen = []
        comm.add_observer(lambda timing, backend: seen.append((timing.op, backend)))
        comm.allreduce([GpuBuffer.virtual(1 * MIB) for _ in range(4)])
        comm.barrier()
        assert seen == [("allreduce", "mpi"), ("barrier", "mpi")]

    def test_split_by_node(self):
        world = make_world(8)
        comm = world.communicator()
        subs = comm.split_by_node()
        assert [sub.ranks for sub in subs] == [[0, 1, 2, 3], [4, 5, 6, 7]]


class TestDatatypes:
    def test_from_numpy_roundtrip(self):
        import numpy as _np

        from repro.mpi.datatypes import Datatype

        for dt in Datatype:
            assert Datatype.from_numpy(dt.numpy_dtype) is dt
            assert dt.numpy_dtype.itemsize == dt.size

    def test_unsupported_dtype_rejected(self):
        import numpy as _np

        from repro.errors import MpiError
        from repro.mpi.datatypes import Datatype

        with pytest.raises(MpiError):
            Datatype.from_numpy(_np.dtype("complex64"))

    def test_reduce_empty_rejected(self):
        from repro.errors import MpiError

        with pytest.raises(MpiError):
            ReduceOp.SUM.reduce([])
