"""The unified communication stack: registry, selection tables, routing,
the hierarchical two-level backend, fault threading, and the autotuner.

Covers the repro.comm layer on its own terms; cross-backend bit-identity
with the pre-refactor entry points lives in test_comm_equivalence.py.
"""

import json

import pytest

from repro.comm import (
    CANDIDATES,
    TuningConfig,
    available_backends,
    build_communicator,
    default_table,
    tune_table,
    tuning_digest,
)
from repro.comm.api import RoutedCommunicator, broadcast_weights
from repro.comm.cost import (
    ScheduleMemo,
    allreduce_lower_bound,
    alpha_beta_time,
    weight_broadcast_time,
)
from repro.comm.hierarchical import ALGORITHM as HIER, HierarchicalWorld
from repro.comm.records import CommRecord
from repro.comm.selection import (
    SelectionTable,
    active_table_digests,
    clear_active_tables,
    get_active_table,
    install_table_payloads,
    set_active_table,
)
from repro.core import MPI_OPT
from repro.errors import CommError, ConfigError, NcclError
from repro.faults import FaultInjector, FaultPlan, LinkFault
from repro.hardware import LASSEN
from repro.hardware.cluster import build_cluster
from repro.mpi import WorldSpec
from repro.mpi.comm import GpuBuffer
from repro.nccl import NcclWorld
from repro.utils.units import KIB, MIB


def make_spec(num_ranks):
    return WorldSpec(num_ranks=num_ranks, policy=MPI_OPT.policy,
                     config=MPI_OPT.mv2)


def routed(backend, num_ranks, **kwargs):
    cluster = build_cluster(LASSEN, num_ranks)
    world_spec = make_spec(num_ranks) if backend == "mpi" else None
    _world, comm = build_communicator(
        cluster, backend, world_spec=world_spec, num_ranks=num_ranks, **kwargs
    )
    return comm


def virtual(nbytes, n):
    return [GpuBuffer.virtual(nbytes) for _ in range(n)]


@pytest.fixture(autouse=True)
def _no_active_tables():
    clear_active_tables()
    yield
    clear_active_tables()


# -- registry -------------------------------------------------------------------

class TestRegistry:
    def test_all_backends_registered(self):
        assert set(available_backends()) >= {"mpi", "nccl", "hierarchical"}

    def test_unknown_backend_is_config_error(self):
        cluster = build_cluster(LASSEN, 4)
        with pytest.raises(ConfigError, match="unknown backend"):
            build_communicator(cluster, "gloo", num_ranks=4)

    @pytest.mark.parametrize("backend", ["nccl", "hierarchical"])
    def test_no_silent_num_gpus_fallback(self, backend):
        """Regression: omitting both world_spec and num_ranks used to fall
        back to cluster.num_gpus silently; now it is a hard ConfigError."""
        cluster = build_cluster(LASSEN, 8)
        with pytest.raises(ConfigError, match="explicit world size"):
            build_communicator(cluster, backend)

    def test_no_silent_fallback_through_horovod_entry_point(self):
        from repro.horovod.backend import build_backend

        cluster = build_cluster(LASSEN, 8)
        with pytest.raises(ConfigError, match="explicit world size"):
            build_backend(cluster, "nccl")

    def test_mpi_requires_world_spec(self):
        cluster = build_cluster(LASSEN, 4)
        with pytest.raises(ConfigError, match="WorldSpec"):
            build_communicator(cluster, "mpi", num_ranks=4)

    def test_returns_routed_communicator(self):
        comm = routed("nccl", 4)
        assert isinstance(comm, RoutedCommunicator)
        assert comm.backend_name == "nccl"
        assert comm.size == 4


# -- shared cost helpers --------------------------------------------------------

class TestCost:
    def test_alpha_beta_time(self):
        assert alpha_beta_time(1000, alpha_s=1e-6, bandwidth=1e9) == \
            pytest.approx(1e-6 + 1e-6)

    def test_allreduce_lower_bound_scales_with_ranks(self):
        small = allreduce_lower_bound(1 * MIB, 2, 1e9)
        large = allreduce_lower_bound(1 * MIB, 64, 1e9)
        assert large > small
        assert large < 2 * 1 * MIB / 1e9  # approaches 2n/B from below

    def test_weight_broadcast_matches_ib_transfer(self):
        nbytes = 4 * MIB
        assert weight_broadcast_time(LASSEN, nbytes) == \
            pytest.approx(LASSEN.ib.transfer_time(nbytes))
        assert weight_broadcast_time(LASSEN, nbytes, replicas=3) == \
            pytest.approx(3 * LASSEN.ib.transfer_time(nbytes))
        assert weight_broadcast_time(LASSEN, 0) == 0.0

    def test_schedule_memo_gating_and_eviction(self):
        memo = ScheduleMemo(max_entries=2)
        built = []

        def builder(key):
            return lambda: built.append(key) or key

        assert memo.get("a", builder("a")) == "a"
        assert memo.get("a", builder("a2")) == "a"  # memo hit
        memo.get("b", builder("b"))
        memo.get("c", builder("c"))  # evicts "a" (FIFO)
        assert built == ["a", "b", "c"]
        assert len(memo) == 2
        memo.clear()
        assert len(memo) == 0


# -- selection tables -----------------------------------------------------------

class TestSelectionTable:
    def make(self):
        return SelectionTable(
            backend="mpi",
            byte_edges=(32 * KIB,),
            rank_edges=(4,),
            algorithms=(("recursive_doubling", "recursive_doubling"),
                        ("ring", "hierarchical")),
        )

    def test_lookup_buckets_are_inclusive_upper_bounds(self):
        t = self.make()
        assert t.lookup(32 * KIB, 4) == "recursive_doubling"
        assert t.lookup(32 * KIB + 1, 4) == "ring"
        assert t.lookup(64 * KIB, 5) == "hierarchical"

    def test_grid_shape_validated(self):
        with pytest.raises(ConfigError, match="grid must be"):
            SelectionTable("mpi", (1,), (1,), (("a", "b"),))

    def test_edges_must_ascend(self):
        with pytest.raises(ConfigError, match="ascending"):
            SelectionTable("mpi", (2, 1), (), (("a",), ("b",), ("c",)))

    def test_payload_round_trip_preserves_digest(self):
        t = self.make()
        again = SelectionTable.from_payload(
            json.loads(json.dumps(t.to_payload()))
        )
        assert again == t
        assert again.digest() == t.digest()

    def test_digest_covers_policy_not_provenance(self):
        t = self.make()
        tuned = SelectionTable.from_payload(
            {**t.to_payload(), "source": "tuned", "extra": {"timings": {}}}
        )
        assert tuned.digest() == t.digest()  # same routing policy
        other = SelectionTable(
            backend="mpi", byte_edges=(64 * KIB,), rank_edges=(4,),
            algorithms=t.algorithms,
        )
        assert other.digest() != t.digest()

    def test_active_registry_and_digests(self):
        assert active_table_digests() == {}
        t = self.make()
        set_active_table(t)
        assert get_active_table("mpi") is t
        assert active_table_digests() == {"mpi": t.digest()}
        install_table_payloads([default_table("nccl").to_payload()])
        # install replaces the whole active set (worker semantics)
        assert get_active_table("mpi") is None
        assert set(active_table_digests()) == {"nccl"}


# -- routed communicator --------------------------------------------------------

class TestRouting:
    def ring_only_table(self):
        return SelectionTable(
            backend="mpi", byte_edges=(), rank_edges=(),
            algorithms=(("ring",),), source="tuned",
        )

    def test_no_table_keeps_backend_heuristic(self):
        comm = routed("mpi", 4)
        timing = comm.allreduce(virtual(4 * KIB, 4))
        # small power-of-two world: the MPI heuristic picks rd
        assert timing.algorithm == "recursive_doubling"

    def test_table_routes_algorithm(self):
        comm = routed("mpi", 4, table=self.ring_only_table())
        timing = comm.allreduce(virtual(4 * KIB, 4))
        assert timing.algorithm == "ring"

    def test_explicit_algorithm_beats_table(self):
        comm = routed("mpi", 4, table=self.ring_only_table())
        timing = comm.allreduce(
            virtual(4 * KIB, 4), algorithm="recursive_doubling"
        )
        assert timing.algorithm == "recursive_doubling"

    def test_active_table_used_when_none_passed(self):
        set_active_table(self.ring_only_table())
        comm = routed("mpi", 4)
        assert comm.allreduce(virtual(4 * KIB, 4)).algorithm == "ring"

    def test_unified_records(self):
        table = self.ring_only_table()
        comm = routed("mpi", 4, table=table)
        comm.allreduce(virtual(1 * MIB, 4))
        comm.bcast(virtual(1 * MIB, 4))
        assert [r.op for r in comm.records] == ["allreduce", "bcast"]
        record = comm.records[0]
        assert isinstance(record, CommRecord)
        assert record.backend == "mpi"
        assert record.algorithm == "ring"
        assert record.nbytes == 1 * MIB
        assert record.num_ranks == 4
        assert record.table_digest == table.digest()

    def test_restrict_does_not_double_record(self):
        comm = routed("mpi", 4)
        sub = comm.restrict([0, 1])
        sub.allreduce(virtual(4 * KIB, 2))
        assert len(sub.records) == 1
        assert len(comm.records) == 0

    def test_broadcast_weights_trivial_world_is_free(self):
        comm = routed("nccl", 4)
        assert broadcast_weights(comm, 0) is None
        timing = broadcast_weights(comm, 8 * MIB)
        assert timing.time > 0
        assert comm.records[-1].op == "bcast"


# -- hierarchical backend -------------------------------------------------------

class TestHierarchicalBackend:
    def test_world_validates_size(self):
        cluster = build_cluster(LASSEN, 8)
        with pytest.raises(CommError):
            HierarchicalWorld(cluster, 0)
        with pytest.raises(CommError):
            HierarchicalWorld(cluster, 9)

    def test_single_node_has_no_inter_segment(self):
        comm = routed("hierarchical", 4)
        timing = comm.allreduce(virtual(1 * MIB, 4))
        assert timing.algorithm == HIER
        assert "inter_allreduce" not in timing.segments
        assert set(timing.segments) == {"intra_reduce_scatter",
                                        "intra_broadcast"}

    def test_multi_node_has_all_three_phases(self):
        comm = routed("hierarchical", 16)
        timing = comm.allreduce(virtual(1 * MIB, 16))
        assert set(timing.segments) == {
            "intra_reduce_scatter", "inter_allreduce", "intra_broadcast"
        }
        assert timing.time == pytest.approx(sum(timing.segments.values()))

    @pytest.mark.parametrize("num_ranks", [16, 64])
    @pytest.mark.parametrize("nbytes", [1 * MIB, 16 * MIB, 64 * MIB])
    def test_beats_flat_ring_on_multi_node_bandwidth_bound(
        self, num_ranks, nbytes
    ):
        """The paper-level claim: two-level collectives win once messages
        are bandwidth-bound on multi-node worlds (>= ~1 MB)."""
        hier = routed("hierarchical", num_ranks)
        hier_t = hier.allreduce(virtual(nbytes, num_ranks)).time
        mpi = routed("mpi", num_ranks)
        ring_t = mpi.allreduce(
            virtual(nbytes, num_ranks), algorithm="ring"
        ).time
        assert hier_t < ring_t

    def test_rejects_foreign_algorithm(self):
        comm = routed("hierarchical", 8)
        with pytest.raises(CommError, match="implements only"):
            comm.allreduce(virtual(4 * KIB, 8), algorithm="ring")

    def test_functional_allreduce_and_bcast(self):
        import numpy as np

        comm = routed("hierarchical", 8)
        arrays = [np.full(64, float(r), dtype=np.float32) for r in range(8)]
        comm.allreduce([GpuBuffer.from_array(a) for a in arrays], average=True)
        for a in arrays:
            np.testing.assert_allclose(a, np.mean(range(8)))
        arrays = [np.full(64, float(r), dtype=np.float32) for r in range(8)]
        comm.bcast([GpuBuffer.from_array(a) for a in arrays])
        for a in arrays:
            np.testing.assert_allclose(a, 0.0)

    def test_restrict_and_reform(self):
        comm = routed("hierarchical", 8)
        sub = comm.restrict([0, 1, 2, 3])
        assert sub.size == 4
        back = sub.reform(list(range(8)))
        assert back.size == 8
        with pytest.raises(CommError):
            comm.restrict([99])

    def test_ib_fault_slows_inter_phase(self):
        clean = routed("hierarchical", 16)
        base = clean.allreduce(virtual(16 * MIB, 16)).time
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.25),))
        faulty = routed("hierarchical", 16, faults=FaultInjector(plan))
        degraded = faulty.allreduce(virtual(16 * MIB, 16)).time
        assert degraded > base

    def test_barrier_scales_logarithmically(self):
        t16 = routed("hierarchical", 16).barrier().time
        t64 = routed("hierarchical", 64).barrier().time
        assert 0 < t16 < t64


# -- fault threading into the NCCL envelope (satellite: uniform --fail) --------

class TestNcclFaults:
    def allreduce_time(self, num_ranks, nbytes, faults=None):
        comm = routed("nccl", num_ranks, faults=faults)
        return comm.allreduce(virtual(nbytes, num_ranks)).time

    def test_clean_injector_is_noop(self):
        base = self.allreduce_time(8, 16 * MIB)
        clean = self.allreduce_time(8, 16 * MIB, faults=FaultInjector(FaultPlan()))
        assert clean == base

    def test_ib_fault_degrades_multi_node(self):
        base = self.allreduce_time(16, 16 * MIB)
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.5),))
        assert self.allreduce_time(16, 16 * MIB, faults=FaultInjector(plan)) > base

    def test_nvlink_fault_degrades_single_node(self):
        base = self.allreduce_time(4, 16 * MIB)
        plan = FaultPlan(
            faults=(LinkFault(kind="nvlink-p2p", bandwidth_factor=0.5),)
        )
        assert self.allreduce_time(4, 16 * MIB, faults=FaultInjector(plan)) > base

    def test_link_latency_fault_adds_alpha(self):
        base = self.allreduce_time(16, 4 * KIB)
        plan = FaultPlan(faults=(LinkFault(kind="ib", latency_add_s=1e-4),))
        assert self.allreduce_time(16, 4 * KIB, faults=FaultInjector(plan)) > base

    def test_explicit_algorithm_override(self):
        comm = routed("nccl", 16)
        ring = comm.allreduce(virtual(1 * MIB, 16), algorithm="nccl-ring")
        tree = comm.allreduce(virtual(1 * MIB, 16), algorithm="nccl-tree")
        assert ring.algorithm == "nccl-ring"
        assert tree.algorithm == "nccl-tree"
        assert ring.time != tree.time
        with pytest.raises(NcclError):
            comm.allreduce(virtual(1 * MIB, 16), algorithm="rdb")


# -- autotuner crossover properties (satellite: tuned-table invariants) --------

class TestTunerProperties:
    @pytest.fixture(scope="class")
    def table(self):
        return tune_table(TuningConfig(
            backend="mpi",
            byte_points=(4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB),
            rank_counts=(4, 16, 512),
        ))

    LATENCY_OPTIMAL = {"recursive_doubling", "hierarchical"}
    BANDWIDTH_OPTIMAL = {"ring", "reduce_scatter_allgather", "hierarchical"}

    @pytest.mark.parametrize("num_ranks", [4, 16, 512])
    def test_small_messages_pick_latency_optimal(self, table, num_ranks):
        pick = table.lookup(4 * KIB, num_ranks)
        assert pick in self.LATENCY_OPTIMAL
        assert pick != "ring"  # the 2(p-1)-step latency-worst choice

    @pytest.mark.parametrize("num_ranks", [16, 512])
    def test_multi_node_small_messages_pick_recursive_doubling(
        self, table, num_ranks
    ):
        assert table.lookup(4 * KIB, num_ranks) == "recursive_doubling"

    @pytest.mark.parametrize("num_ranks", [4, 16, 512])
    @pytest.mark.parametrize("nbytes", [16 * MIB, 64 * MIB])
    def test_large_messages_pick_bandwidth_optimal(
        self, table, nbytes, num_ranks
    ):
        pick = table.lookup(nbytes, num_ranks)
        assert pick in self.BANDWIDTH_OPTIMAL
        assert pick != "recursive_doubling"  # full-size hops every step

    def test_every_cell_is_argmin_of_sweep(self, table):
        timings = table.extra["timings"]
        for nbytes in table.extra["byte_points"]:
            for ranks in table.extra["rank_counts"]:
                cell = timings[f"{nbytes}x{ranks}"]
                pick = table.lookup(nbytes, ranks)
                assert cell[pick] == min(cell.values())

    def test_tuning_is_deterministic_and_memoized(self):
        config = TuningConfig(byte_points=(4 * KIB, 1 * MIB),
                              rank_counts=(4, 16))
        a = tune_table(config)
        b = tune_table(config)
        assert a is b  # in-process memo
        assert a.digest() == b.digest()

    def test_tuning_digest_is_config_sensitive(self):
        a = tuning_digest(TuningConfig(byte_points=(4 * KIB,), rank_counts=(4,)))
        b = tuning_digest(TuningConfig(byte_points=(8 * KIB,), rank_counts=(4,)))
        assert a != b

    def test_tuned_table_round_trips_through_cache(self, tmp_path):
        from repro.perf.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        config = TuningConfig(byte_points=(4 * KIB, 1 * MIB),
                              rank_counts=(4, 16))
        first = tune_table(config, cache=cache)
        from repro.comm.tuning import _TUNE_MEMO

        _TUNE_MEMO.clear()
        second = tune_table(config, cache=cache)
        assert second == first
        assert second.digest() == first.digest()

    def test_non_pow2_worlds_skip_pow2_algorithms(self):
        table = tune_table(TuningConfig(byte_points=(4 * KIB, 16 * MIB),
                                        rank_counts=(12,)))
        for nbytes in (4 * KIB, 16 * MIB):
            assert table.lookup(nbytes, 12) in {"ring", "hierarchical"}

    def test_candidate_lists_cover_backends(self):
        assert set(CANDIDATES) == {"mpi", "nccl", "hierarchical"}

    def test_nccl_tuned_table_routes_nccl_backend(self):
        table = tune_table(TuningConfig(
            backend="nccl", byte_points=(4 * KIB, 64 * MIB),
            rank_counts=(16,),
        ))
        comm = routed("nccl", 16, table=table)
        small = comm.allreduce(virtual(4 * KIB, 16))
        large = comm.allreduce(virtual(64 * MIB, 16))
        assert small.algorithm == table.lookup(4 * KIB, 16)
        assert large.algorithm == table.lookup(64 * MIB, 16)


# -- digest integration ---------------------------------------------------------

class TestDigestIntegration:
    def test_point_digest_changes_with_active_table(self):
        from repro.core import ScalingStudy, StudyConfig

        study = ScalingStudy(MPI_OPT, StudyConfig(measure_steps=1))
        base = study.point_digest(4)
        set_active_table(default_table("mpi"))
        assert study.point_digest(4) != base
        clear_active_tables()
        assert study.point_digest(4) == base

    def test_serve_digest_changes_with_active_table(self):
        from repro.serve.simulator import ServeScenario
        from repro.serve.sweep import ServeJob, serve_digest

        job = ServeJob(ServeScenario(), duration_s=5.0, seed=7)
        base = serve_digest(job)
        set_active_table(default_table("nccl"))
        assert serve_digest(job) != base
