"""Unit tests for the simulated CUDA runtime: masks, contexts, memory, IPC."""

import pytest

from repro.cuda import CudaRuntime, CudaVersion, VisibilityMask
from repro.cuda.kernels import KernelCostModel, KernelLaunch
from repro.cuda.stream import Stream
from repro.errors import (
    ConfigError,
    CudaInvalidDeviceError,
    CudaIpcError,
    CudaOutOfMemoryError,
)
from repro.hardware import LASSEN, Cluster, V100_16GB
from repro.sim import Environment
from repro.utils.units import GIB, MIB


@pytest.fixture
def cluster():
    return Cluster(Environment(), LASSEN, num_nodes=1)


@pytest.fixture
def runtime(cluster):
    return CudaRuntime(cluster, node_id=0)


class TestVisibilityMask:
    def test_parse_and_remap(self):
        mask = VisibilityMask.parse("2,0,3")
        assert mask.count == 3
        assert mask.to_physical(0) == 2
        assert mask.to_physical(1) == 0
        assert mask.sees(3)
        assert not mask.sees(1)

    def test_parse_empty(self):
        assert VisibilityMask.parse("").count == 0

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigError):
            VisibilityMask.parse("0,0")

    def test_out_of_range_logical(self):
        mask = VisibilityMask.single(1)
        with pytest.raises(CudaInvalidDeviceError):
            mask.to_physical(1)

    def test_all_devices(self):
        assert VisibilityMask.all_devices(4).physical == (0, 1, 2, 3)

    def test_str_roundtrip(self):
        assert str(VisibilityMask.parse("3,1")) == "3,1"


class TestCudaVersion:
    def test_parse(self):
        assert CudaVersion.parse("10.2") == CudaVersion(10, 2)
        assert CudaVersion.parse("11") == CudaVersion(11, 0)

    def test_ipc_gate(self):
        assert not CudaVersion(10, 0).supports_cross_visibility_ipc
        assert CudaVersion(10, 1).supports_cross_visibility_ipc
        assert CudaVersion(11, 0).supports_cross_visibility_ipc

    def test_ordering(self):
        assert CudaVersion(10, 1) < CudaVersion(10, 2) < CudaVersion(11, 0)


class TestContextsAndMemory:
    def test_malloc_consumes_hbm(self, cluster, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
        alloc = ctx.malloc(1 * GIB, tag="tensor")
        pool = cluster.gpu_memory(cluster.gpu_ref(0))
        overhead = LASSEN.node.gpu.context_overhead_bytes
        assert pool.used == 1 * GIB + overhead
        ctx.free(alloc)
        assert pool.used == overhead

    def test_oom_raises_cuda_error(self, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
        with pytest.raises(CudaOutOfMemoryError):
            ctx.malloc(17 * GIB)

    def test_double_free_rejected(self, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
        alloc = ctx.malloc(1024)
        ctx.free(alloc)
        with pytest.raises(Exception):
            ctx.free(alloc)

    def test_touch_all_visible_spreads_overhead_kernels(self, cluster, runtime):
        """Fig 6a: 4 undisciplined processes leave 4 contexts on each GPU."""
        ctxs = [
            runtime.create_context(pid=p, mask=VisibilityMask.all_devices(4))
            for p in range(1, 5)
        ]
        for ctx in ctxs:
            assert ctx.touch_all_visible() == 4
        overhead = LASSEN.node.gpu.context_overhead_bytes
        for g in range(4):
            pool = cluster.gpu_memory(cluster.gpu_ref(g))
            assert pool.used == 4 * overhead

    def test_restricted_mask_keeps_remote_gpus_clean(self, cluster, runtime):
        """Fig 6b: CUDA_VISIBLE_DEVICES=local_rank -> one context per GPU."""
        ctxs = [
            runtime.create_context(pid=p + 1, mask=VisibilityMask.single(p))
            for p in range(4)
        ]
        for ctx in ctxs:
            ctx.touch_all_visible()
        overhead = LASSEN.node.gpu.context_overhead_bytes
        for g in range(4):
            pool = cluster.gpu_memory(cluster.gpu_ref(g))
            assert pool.used == overhead

    def test_set_device_changes_allocation_target(self, cluster, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.parse("1,3"))
        ctx.set_device(1)  # logical 1 -> physical 3
        ctx.malloc(128 * MIB)
        assert cluster.gpu_memory(cluster.gpu_ref(3)).used > 0
        assert cluster.gpu_memory(cluster.gpu_ref(1)).used == 0

    def test_destroy_releases_everything(self, cluster, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.all_devices(4))
        ctx.touch_all_visible()
        ctx.malloc(1 * GIB)
        ctx.destroy()
        for g in range(4):
            assert cluster.gpu_memory(cluster.gpu_ref(g)).used == 0

    def test_mask_beyond_node_rejected(self, runtime):
        with pytest.raises(CudaInvalidDeviceError):
            runtime.create_context(pid=1, mask=VisibilityMask.parse("0,4"))


class TestIpc:
    def _two_ranks(self, runtime, mask_a, mask_b):
        a = runtime.create_context(pid=1, mask=mask_a)
        b = runtime.create_context(pid=2, mask=mask_b)
        return a, b

    def test_ipc_allowed_with_full_visibility_any_version(self, cluster):
        runtime = CudaRuntime(cluster, 0, version=CudaVersion(10, 0))
        a, b = self._two_ranks(
            runtime, VisibilityMask.all_devices(4), VisibilityMask.all_devices(4)
        )
        a.set_device(0)
        handle = a.get_ipc_handle(a.malloc(64 * MIB))
        b.set_device(1)
        assert runtime.can_open_ipc(b, handle)
        b.open_ipc_handle(handle)
        assert b.has_open_handle(handle)

    def test_legacy_runtime_blocks_ipc_under_singleton_mask(self, cluster):
        """Pre-10.1 + CUDA_VISIBLE_DEVICES=local_rank: the paper's broken path."""
        runtime = CudaRuntime(cluster, 0, version=CudaVersion(10, 0))
        a, b = self._two_ranks(
            runtime, VisibilityMask.single(0), VisibilityMask.single(1)
        )
        handle = a.get_ipc_handle(a.malloc(64 * MIB))
        assert not runtime.can_open_ipc(b, handle)
        with pytest.raises(CudaIpcError):
            b.open_ipc_handle(handle)

    def test_modern_runtime_allows_ipc_under_singleton_mask(self, cluster):
        """CUDA >= 10.1 lifts the restriction (paper's §III-C key fact)."""
        runtime = CudaRuntime(cluster, 0, version=CudaVersion(10, 2))
        a, b = self._two_ranks(
            runtime, VisibilityMask.single(0), VisibilityMask.single(1)
        )
        handle = a.get_ipc_handle(a.malloc(64 * MIB))
        assert runtime.can_open_ipc(b, handle)

    def test_ipc_never_crosses_nodes(self):
        env = Environment()
        cluster = Cluster(env, LASSEN, num_nodes=2)
        rt0 = CudaRuntime(cluster, 0)
        rt1 = CudaRuntime(cluster, 1)
        a = rt0.create_context(pid=1, mask=VisibilityMask.single(0))
        b = rt1.create_context(pid=2, mask=VisibilityMask.single(0))
        handle = a.get_ipc_handle(a.malloc(1 * MIB))
        assert not rt1.can_open_ipc(b, handle)

    def test_ipc_not_for_own_process(self, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.all_devices(4))
        handle = ctx.get_ipc_handle(ctx.malloc(1 * MIB))
        assert not runtime.can_open_ipc(ctx, handle)

    def test_cannot_export_foreign_buffer(self, runtime):
        a = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
        b = runtime.create_context(pid=2, mask=VisibilityMask.single(1))
        alloc = a.malloc(1 * MIB)
        with pytest.raises(CudaIpcError):
            b.get_ipc_handle(alloc)


class TestCopiesAndKernels:
    def test_d2h_and_peer_copy_times(self, runtime):
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.all_devices(4))
        ctx.set_device(0)
        d2h = ctx.d2h_time(64 * MIB)
        peer_same_socket = ctx.memcpy_time(
            runtime.physical_ref(0), runtime.physical_ref(1), 64 * MIB
        )
        peer_cross_socket = ctx.memcpy_time(
            runtime.physical_ref(0), runtime.physical_ref(2), 64 * MIB
        )
        assert d2h > 0
        assert peer_same_socket < peer_cross_socket

    def test_kernel_roofline(self):
        model = KernelCostModel(V100_16GB)
        compute_heavy = KernelLaunch("conv", flops=1e12, bytes_accessed=1e6)
        memory_heavy = KernelLaunch("copy", flops=1e6, bytes_accessed=90e9)
        t_c = model.duration(compute_heavy)
        t_m = model.duration(memory_heavy)
        assert t_c == pytest.approx(
            V100_16GB.kernel_launch_overhead_s + 1e12 / V100_16GB.sustained_fp32_flops
        )
        assert t_m == pytest.approx(
            V100_16GB.kernel_launch_overhead_s + 90e9 / V100_16GB.hbm_bandwidth
        )

    def test_utilization_scales_compute(self):
        model = KernelCostModel(V100_16GB)
        full = model.duration(KernelLaunch("k", flops=1e12, bytes_accessed=0))
        half = model.duration(
            KernelLaunch("k", flops=1e12, bytes_accessed=0, utilization=0.5)
        )
        assert half > full

    def test_device_reduce_time_positive(self):
        model = KernelCostModel(V100_16GB)
        assert model.device_reduce_time(64 * MIB) > 0

    def test_stream_serializes_work(self):
        stream = Stream(device=None)
        end1 = stream.enqueue(now=0.0, duration=2.0)
        end2 = stream.enqueue(now=1.0, duration=3.0)
        assert end1 == 2.0
        assert end2 == 5.0
        assert stream.synchronize(now=0.0) == 5.0

    def test_bad_kernel_launch_rejected(self):
        with pytest.raises(ConfigError):
            KernelLaunch("bad", flops=-1, bytes_accessed=0)
        with pytest.raises(ConfigError):
            KernelLaunch("bad", flops=0, bytes_accessed=0, utilization=0)
