"""Tests for nn.Module mechanics, layers, optimizers, and LR schedulers."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError, TensorError
from repro.tensor import Tensor, functional as F
from repro.tensor.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    PixelShuffle,
    ReLU,
    Sequential,
    init,
)
from repro.tensor.optim import SGD, Adam, MultiStepLR, StepLR

RNG = np.random.default_rng(21)


class TestModuleMechanics:
    def test_parameter_registration_and_order(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.zeros(2))
                self.inner = Linear(2, 3)
                self.b = Parameter(np.zeros(1))

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["a", "b", "inner.weight", "inner.bias"]
        assert net.num_parameters() == 2 + 1 + 6 + 3

    def test_train_eval_propagates(self):
        net = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2))
        net.eval()
        assert not net.training
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_state_dict_roundtrip_and_errors(self):
        a = Linear(3, 2, rng=np.random.default_rng(1))
        b = Linear(3, 2, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        with pytest.raises(TensorError):
            b.load_state_dict({"weight": np.zeros((2, 3))})  # missing bias
        bad = a.state_dict()
        bad["weight"] = np.zeros((5, 5))
        with pytest.raises(TensorError):
            b.load_state_dict(bad)

    def test_zero_grad_clears_all(self):
        net = Linear(2, 2)
        (net(Tensor(np.ones((1, 2), dtype=np.float32)))).sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes_and_math(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        x = RNG.standard_normal((5, 4)).astype(np.float32)
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5)

    def test_conv_default_same_padding(self):
        conv = Conv2d(3, 8, 3)
        assert conv.padding == 1
        out = conv(Tensor(RNG.standard_normal((1, 3, 6, 6)).astype(np.float32)))
        assert out.shape == (1, 8, 6, 6)

    def test_relu_leaky_identity_flatten(self):
        x = Tensor(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_allclose(ReLU()(x).numpy(), [[0, 2]])
        np.testing.assert_allclose(
            LeakyReLU(0.1)(x).numpy(), [[-0.1, 2]], rtol=1e-6
        )
        assert Identity()(x) is x
        assert Flatten()(Tensor(np.ones((2, 3, 4, 5)))).shape == (2, 60)

    def test_pixel_shuffle_layer(self):
        layer = PixelShuffle(2)
        out = layer(Tensor(np.ones((1, 8, 3, 3), dtype=np.float32)))
        assert out.shape == (1, 2, 6, 6)
        with pytest.raises(ConfigError):
            PixelShuffle(0)

    def test_batchnorm_normalizes_and_tracks_running_stats(self):
        bn = BatchNorm2d(3)
        x = RNG.standard_normal((8, 3, 4, 4)).astype(np.float32) * 5 + 2
        out = bn(Tensor(x)).numpy()
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.15
        assert not np.allclose(bn.running_mean, 0.0)
        # eval mode uses the running stats
        bn.eval()
        out_eval = bn(Tensor(x)).numpy()
        assert out_eval.shape == x.shape

    def test_batchnorm_shape_check(self):
        with pytest.raises(ShapeError):
            BatchNorm2d(3)(Tensor(np.ones((1, 4, 2, 2), dtype=np.float32)))

    def test_sequential_indexing(self):
        seq = Sequential(ReLU(), Identity())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)

    def test_init_fans(self):
        w = init.kaiming_normal((16, 8, 3, 3), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / (8 * 9)), rel=0.25)
        u = init.xavier_uniform((10, 20), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 30)
        assert u.min() >= -bound and u.max() <= bound
        with pytest.raises(ConfigError):
            init.kaiming_normal((3,), np.random.default_rng(0))


class TestOptimizers:
    def _param(self, value=1.0):
        return Parameter(np.full(3, value, dtype=np.float32))

    def test_sgd_vanilla_step(self):
        p = self._param()
        opt = SGD([p], lr=0.1)
        p.grad = np.full(3, 2.0, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, 1.0 - 0.2, rtol=1e-6)

    def test_sgd_momentum_accumulates(self):
        p = self._param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.5)
        for _ in range(2):
            p.grad = np.ones(3, dtype=np.float32)
            opt.step()
        # v1 = 1, v2 = 1.5 -> total update 2.5
        np.testing.assert_allclose(p.data, -2.5, rtol=1e-6)

    def test_sgd_weight_decay(self):
        p = self._param(1.0)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, 1.0 - 0.1 * 0.5, rtol=1e-6)

    def test_adam_first_step_is_lr_sized(self):
        p = self._param(0.0)
        opt = Adam([p], lr=0.01)
        p.grad = np.full(3, 7.0, dtype=np.float32)
        opt.step()
        # bias-corrected first step ~= lr * sign(grad)
        np.testing.assert_allclose(p.data, -0.01, rtol=1e-3)

    def test_adam_state_is_per_parameter(self):
        p1, p2 = self._param(), self._param()
        opt = Adam([p1, p2], lr=0.01)
        p1.grad = np.ones(3, dtype=np.float32)
        p2.grad = None  # untouched parameter is skipped
        opt.step()
        np.testing.assert_allclose(p2.data, 1.0)
        assert p1.data[0] < 1.0

    def test_optimizer_validation(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigError):
            SGD([self._param()], lr=0)
        with pytest.raises(ConfigError):
            SGD([self._param()], lr=0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            Adam([self._param()], lr=0.1, betas=(1.0, 0.9))

    def test_zero_grad(self):
        p = self._param()
        p.grad = np.ones(3, dtype=np.float32)
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestSchedulers:
    def test_step_lr_halves_on_schedule(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25]

    def test_multistep_lr_milestones(self):
        """EDSR's schedule: halve at fixed milestones."""
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1e-4)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1e-4, 5e-5, 5e-5, 2.5e-5, 2.5e-5])

    def test_scheduler_validation(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        with pytest.raises(ConfigError):
            StepLR(opt, step_size=0)
        with pytest.raises(ConfigError):
            MultiStepLR(opt, milestones=[4, 2])
