"""Tests for gather/scatter/alltoall and the timeline chrome-trace export."""

import json

import numpy as np
import pytest

from repro.errors import MpiError
from repro.hardware import LASSEN, Cluster
from repro.horovod import Timeline
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.comm import GpuBuffer
from repro.mpi.process import SingletonDevicePolicy
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_comm(num_gpus=4):
    nodes = max(1, (num_gpus + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(
        num_ranks=num_gpus,
        policy=SingletonDevicePolicy(),
        config=Mv2Config(mv2_visible_devices="all", registration_cache=True),
    )
    return MpiWorld(cluster, spec).communicator()


class TestGatherScatter:
    def test_gather_collects_everything(self):
        comm = make_comm(4)
        arrays = [np.full(8, float(r), dtype=np.float32) for r in range(4)]
        gathered, timing = comm.gather([GpuBuffer.from_array(a) for a in arrays])
        assert timing.time > 0
        assert len(gathered) == 4
        np.testing.assert_array_equal(gathered[3], 3.0)

    def test_scatter_distributes_blocks(self):
        comm = make_comm(4)
        arrays = [np.zeros(8, dtype=np.float32) for _ in range(4)]
        blocks = [np.full(8, float(r * 10), dtype=np.float32) for r in range(4)]
        timing = comm.scatter(blocks, [GpuBuffer.from_array(a) for a in arrays])
        assert timing.time > 0
        for r, a in enumerate(arrays):
            np.testing.assert_array_equal(a, float(r * 10))

    def test_scatter_block_count_validated(self):
        comm = make_comm(4)
        arrays = [np.zeros(4, dtype=np.float32) for _ in range(4)]
        with pytest.raises(MpiError):
            comm.scatter(
                [np.zeros(4, dtype=np.float32)],
                [GpuBuffer.from_array(a) for a in arrays],
            )

    def test_gather_single_rank_free(self):
        comm = make_comm(1)
        _, timing = comm.gather([GpuBuffer.virtual(1 * MIB)])
        assert timing.time == 0.0

    def test_alltoall_scales_with_world(self):
        small = make_comm(4).alltoall(64 * KIB)
        large = make_comm(8).alltoall(64 * KIB)
        assert 0 < small.time < large.time

    def test_multi_node_gather_never_faster_than_intra(self):
        # at 32 MiB the inter-node IB wire dominates the staged intra path
        intra = make_comm(4)
        inter = make_comm(8)
        _, t_intra = intra.gather([GpuBuffer.virtual(32 * MIB) for _ in range(4)])
        _, t_inter = inter.gather([GpuBuffer.virtual(32 * MIB) for _ in range(8)])
        assert t_inter.time >= t_intra.time
        assert t_intra.time > 0


class TestChromeTrace:
    def test_export_structure(self):
        timeline = Timeline()
        timeline.record("allreduce", start=0.010, duration=0.005,
                        nbytes=32 * MIB, detail="slot0")
        timeline.record("bcast", start=0.020, duration=0.001)
        trace = timeline.to_chrome_trace()
        assert len(trace) == 2
        event = trace[0]
        assert event["ph"] == "X"
        assert event["name"] == "allreduce"
        assert event["ts"] == pytest.approx(10_000)  # us
        assert event["dur"] == pytest.approx(5_000)
        assert event["args"]["nbytes"] == 32 * MIB

    def test_save_and_reload(self, tmp_path):
        timeline = Timeline()
        timeline.record("allreduce", start=0.0, duration=0.001, nbytes=100)
        path = str(tmp_path / "trace.json")
        timeline.save_chrome_trace(path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded[0]["name"] == "allreduce"

    def test_trace_from_real_engine_run(self, tmp_path):
        from repro.horovod import HorovodConfig, HorovodEngine, PendingTensor

        comm = make_comm(4)
        timeline = Timeline()
        engine = HorovodEngine(comm, HorovodConfig(cycle_time_s=1e-3),
                               timeline=timeline)
        engine.run_step([PendingTensor("g", 8 * MIB)])
        trace = timeline.to_chrome_trace()
        assert trace
        assert all(e["dur"] > 0 for e in trace)
