"""Tests for training loops: single-process, distributed, checkpointing."""

import os

import numpy as np
import pytest

from repro.core.scenarios import MPI_OPT
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.data.loader import PatchLoader
from repro.errors import ConfigError
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY, bicubic_upscale
from repro.metrics import psnr
from repro.mpi import MpiWorld, WorldSpec
from repro.sim import Environment
from repro.tensor.optim import Adam
from repro.trainer import (
    DistributedTrainer,
    ThroughputMeter,
    evaluate_sr,
    load_checkpoint,
    save_checkpoint,
    train_sr,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    src = SyntheticDiv2k(height=32, width=32, seed=7)
    return SRDataset(src, split="train", degradation=DegradationConfig(scale=2))


@pytest.fixture(scope="module")
def val_dataset():
    src = SyntheticDiv2k(height=32, width=32, seed=7)
    return SRDataset(src, split="val", degradation=DegradationConfig(scale=2))


class TestThroughputMeter:
    def test_rate_computation_skips_warmup(self):
        meter = ThroughputMeter(skip_first=1)
        meter.record(4, 10.0)  # warmup, skipped
        meter.record(4, 1.0)
        meter.record(4, 1.0)
        assert meter.images_per_second() == pytest.approx(4.0)
        assert meter.mean_step_time() == pytest.approx(1.0)

    def test_wall_clock_interface(self):
        meter = ThroughputMeter(skip_first=0)
        meter.start()
        elapsed = meter.stop(images=8)
        assert elapsed >= 0
        assert meter.step_count == 1

    def test_stop_without_start_rejected(self):
        with pytest.raises(ConfigError):
            ThroughputMeter().stop(images=1)

    def test_empty_meter_reports_zero(self):
        assert ThroughputMeter().images_per_second() == 0.0


class TestSingleProcessTraining:
    def test_loss_decreases(self, tiny_dataset):
        model = EDSR(EDSR_TINY, rng=np.random.default_rng(0))
        loader = PatchLoader(tiny_dataset, batch_size=2, lr_patch=8, seed=0)
        opt = Adam(model.parameters(), lr=2e-3)
        result = train_sr(model, loader, opt, steps=12)
        assert result.steps == 12
        first = np.mean(result.losses[:3])
        last = np.mean(result.losses[-3:])
        assert last < first

    def test_throughput_positive(self, tiny_dataset):
        model = EDSR(EDSR_TINY)
        loader = PatchLoader(tiny_dataset, batch_size=2, lr_patch=8)
        result = train_sr(model, loader, Adam(model.parameters(), lr=1e-3), steps=3)
        assert result.images_per_second > 0

    def test_bad_loss_name_rejected(self, tiny_dataset):
        model = EDSR(EDSR_TINY)
        loader = PatchLoader(tiny_dataset, batch_size=1, lr_patch=8)
        with pytest.raises(ConfigError):
            train_sr(model, loader, Adam(model.parameters(), lr=1e-3),
                     steps=1, loss="huber")

    def test_evaluate_reports_metrics(self, val_dataset):
        model = EDSR(EDSR_TINY)
        metrics = evaluate_sr(model, val_dataset, max_images=2)
        assert set(metrics) == {"psnr", "ssim", "images"}
        assert metrics["images"] == 2
        assert np.isfinite(metrics["psnr"])

    def test_training_improves_validation_psnr(self, tiny_dataset, val_dataset):
        """End-to-end sanity: brief training lifts held-out PSNR well above
        the untrained network (outperforming bicubic needs far more
        training than a unit test allows — see examples/quickstart.py)."""
        model = EDSR(EDSR_TINY, rng=np.random.default_rng(1))
        before = evaluate_sr(model, val_dataset, max_images=3)["psnr"]
        loader = PatchLoader(tiny_dataset, batch_size=4, lr_patch=12, seed=1)
        train_sr(model, loader, Adam(model.parameters(), lr=3e-3), steps=40)
        after = evaluate_sr(model, val_dataset, max_images=3)["psnr"]
        assert after > before + 3.0
        # and bicubic remains a meaningful reference point
        bic = np.mean([
            psnr(bicubic_upscale(val_dataset[i][0], 2), val_dataset[i][1])
            for i in range(3)
        ])
        assert np.isfinite(bic)


class TestDistributedTraining:
    def _engine(self, num_gpus):
        cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, num_gpus // 4))
        spec = WorldSpec(num_ranks=num_gpus, policy=MPI_OPT.policy,
                         config=MPI_OPT.mv2)
        comm = MpiWorld(cluster, spec).communicator()
        return HorovodEngine(comm, HorovodConfig(cycle_time_s=1e-3))

    def test_distributed_loss_decreases_and_replicas_sync(self, tiny_dataset):
        engine = self._engine(2)
        trainer = DistributedTrainer(
            lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(10 + rank)),
            engine,
            tiny_dataset,
            batch_per_rank=2,
            lr_patch=8,
            base_lr=1e-3,
        )
        assert trainer.replicas_in_sync()  # broadcast happened
        result = trainer.train(steps=6)
        assert result.steps == 6
        assert trainer.replicas_in_sync()
        assert np.mean(result.losses[-2:]) < np.mean(result.losses[:2])

    def test_simulated_step_times_recorded(self, tiny_dataset):
        engine = self._engine(2)
        trainer = DistributedTrainer(
            lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(rank)),
            engine, tiny_dataset, batch_per_rank=1, lr_patch=8,
        )
        result = trainer.train(steps=2)
        assert len(result.simulated_step_times) == 2
        assert all(t > 0 for t in result.simulated_step_times)

    def test_lr_scaled_by_world_size(self, tiny_dataset):
        engine = self._engine(4)
        trainer = DistributedTrainer(
            lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(rank)),
            engine, tiny_dataset, batch_per_rank=1, lr_patch=8,
            base_lr=1e-4, scale_lr=True,
        )
        assert trainer.dist_opt.optimizers[0].lr == pytest.approx(4e-4)


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        model = EDSR(EDSR_TINY, rng=np.random.default_rng(3))
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(model, path, step=17)
        clone = EDSR(EDSR_TINY, rng=np.random.default_rng(99))
        step = load_checkpoint(clone, path)
        assert step == 17
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_missing_file_rejected(self, tmp_path):
        model = EDSR(EDSR_TINY)
        with pytest.raises(ConfigError):
            load_checkpoint(model, os.path.join(tmp_path, "nope.npz"))
