"""Model-agnosticism tests: the MPI-Opt methodology transfers to a second,
architecturally different workload (DeepLabv3-class segmentation, as in the
paper's reference [7])."""

import pytest

from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig
from repro.hardware import V100_16GB
from repro.models import get_model_cost
from repro.models.costing import ThroughputModel, TrainingMemoryModel
from repro.models.segmentation import DEEPLAB_V3, SegmentationConfig, segmentation_cost
from repro.errors import ConfigError
from repro.utils.units import GIB, MIB


class TestSegmentationCost:
    def test_registered(self):
        cost = get_model_cost("deeplabv3-rn50")
        assert cost.name == "deeplabv3-rn50"

    def test_magnitudes(self):
        cost = segmentation_cost()
        # DeepLabv3-RN50 @513: tens of millions of params, hundreds of
        # GFLOPs per crop (dense prediction)
        assert 30e6 < cost.total_params < 60e6
        assert 80e9 < cost.flops_forward < 900e9
        # gradient volume in the same regime as EDSR -> same fusion story
        assert 100 * MIB < cost.gradient_bytes < 250 * MIB

    def test_dense_prediction_much_costlier_than_classifier(self):
        seg = segmentation_cost()
        classifier = get_model_cost("resnet-50")
        assert seg.flops_forward > 10 * classifier.flops_forward

    def test_memory_model_feasible_on_v100(self):
        mm = TrainingMemoryModel(segmentation_cost())
        assert mm.bytes_required(2) < V100_16GB.memory_bytes
        assert mm.max_batch(V100_16GB.memory_bytes) >= 2

    def test_gradient_schedule_consistent(self):
        cost = segmentation_cost()
        sched = cost.gradient_schedule()
        assert sum(t.nbytes for t in sched) == cost.gradient_bytes
        fractions = [t.ready_fraction for t in sched]
        assert fractions == sorted(fractions)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            SegmentationConfig(crop=32)
        with pytest.raises(ConfigError):
            SegmentationConfig(num_classes=1)


class TestMethodologyTransfers:
    """The paper's §VIII claim: the insights generalize to other
    compute/communication-intensive DNNs."""

    def test_mpi_opt_beats_default_on_segmentation(self):
        config = StudyConfig(
            model="deeplabv3-rn50", batch_per_gpu=2,
            measure_steps=1, warmup_steps=1,
        )
        default = ScalingStudy(MPI_DEFAULT, config).run_point(16)
        opt = ScalingStudy(MPI_OPT, config).run_point(16)
        assert opt.images_per_second > 1.05 * default.images_per_second
        assert default.blocking_time > opt.blocking_time

    def test_segmentation_fused_messages_also_large(self):
        """Same fusion regime: the gradient stream produces >=16 MB
        messages, so the same IPC fix applies."""
        config = StudyConfig(
            model="deeplabv3-rn50", batch_per_gpu=2,
            measure_steps=1, warmup_steps=0,
        )
        point = ScalingStudy(MPI_OPT, config).run_point(4)
        assert max(point.message_sizes) >= 16 * MIB

    def test_throughput_model_sane(self):
        tm = ThroughputModel(segmentation_cost(), V100_16GB)
        rate = tm.images_per_second(2)
        # dense 513x513 crops: single-digit to low-double-digit img/s on V100
        assert 1.0 < rate < 40.0
