"""Unit tests for the performance layer (``repro.perf``).

Covers the content-addressed digest (stability and sensitivity), the
on-disk result cache (byte-identical hits, clean ``--no-cache`` bypass),
steady-state detection, im2col workspace reuse, and the CLI surface
(``--jobs``, ``--no-cache``, ``--profile``, ``cache``).
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.__main__ import main
from repro.core import ScalingStudy, StudyConfig, scenario_by_name
from repro.core.study import point_from_payload, point_payload
from repro.errors import ConfigError
from repro.faults import FaultPlan, StragglerFault
from repro.perf import (
    CACHE_VERSION_SALT,
    ResultCache,
    SteadyStateDetector,
    canonical_digest,
    env_knobs,
)
from repro.perf.digest import canonical_json


class TestCanonicalDigest:
    def test_stable_across_calls_and_dict_order(self):
        a = {"model": "edsr-paper", "gpus": 16, "knobs": {"x": 1, "y": 2}}
        b = {"knobs": {"y": 2, "x": 1}, "gpus": 16, "model": "edsr-paper"}
        assert canonical_digest(a) == canonical_digest(b)

    def test_sensitive_to_any_field(self):
        base = {"model": "edsr-paper", "gpus": 16}
        assert canonical_digest(base) != canonical_digest({**base, "gpus": 32})
        assert canonical_digest(base) != canonical_digest(
            {**base, "model": "edsr-tiny"}
        )

    def test_salt_invalidates_wholesale(self):
        obj = {"gpus": 16}
        other = CACHE_VERSION_SALT + "-next"
        assert canonical_digest(obj) != canonical_digest(obj, salt=other)
        assert canonical_digest(obj) == canonical_digest(
            obj, salt=CACHE_VERSION_SALT
        )

    def test_floats_round_trip_exactly(self):
        # repr-based canonicalization: nearby floats must not collide
        assert canonical_digest(0.1) != canonical_digest(
            0.1 + 2.7755575615628914e-17
        )

    def test_dataclasses_and_enums_canonicalize(self):
        config = StudyConfig(jitter_sigma=0.0)
        text = canonical_json(config)
        assert "StudyConfig" in text
        assert canonical_digest(config) == canonical_digest(StudyConfig(jitter_sigma=0.0))
        assert canonical_digest(config) != canonical_digest(StudyConfig())

    def test_unserializable_object_raises(self):
        with pytest.raises(ConfigError):
            canonical_digest({"fn": open})  # builtin: no __dict__/__slots__ state


class TestEnvKnobs:
    def test_filters_to_simulation_prefixes(self):
        env = {
            "MV2_USE_CUDA": "1",
            "HOROVOD_FUSION_THRESHOLD": "67108864",
            "REPRO_SIM_SEED": "7",
            "PATH": "/usr/bin",
            "HOME": "/root",
        }
        knobs = env_knobs(env)
        assert set(knobs) == {
            "MV2_USE_CUDA", "HOROVOD_FUSION_THRESHOLD", "REPRO_SIM_SEED"
        }

    def test_point_digest_changes_with_env_knob(self, monkeypatch):
        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        before = study.point_digest(16)
        monkeypatch.setenv("MV2_SOME_TUNABLE", "42")
        assert study.point_digest(16) != before

    def test_point_digest_ignores_unrelated_env(self, monkeypatch):
        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        before = study.point_digest(16)
        monkeypatch.setenv("SOME_UNRELATED_VAR", "42")
        assert study.point_digest(16) == before


class TestPointDigest:
    def test_stable_and_scale_sensitive(self):
        study = ScalingStudy(scenario_by_name("MPI-Opt"), StudyConfig())
        assert study.point_digest(16) == study.point_digest(16)
        assert study.point_digest(16) != study.point_digest(32)

    def test_scenario_and_model_sensitive(self):
        config = StudyConfig()
        mpi = ScalingStudy(scenario_by_name("MPI"), config)
        opt = ScalingStudy(scenario_by_name("MPI-Opt"), config)
        assert mpi.point_digest(16) != opt.point_digest(16)
        tiny = ScalingStudy(
            scenario_by_name("MPI"), StudyConfig(model="edsr-tiny")
        )
        assert mpi.point_digest(16) != tiny.point_digest(16)

    def test_fault_plan_sensitive(self):
        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        clean = study.point_digest(16)
        plan = FaultPlan(seed=3, faults=(StragglerFault(rank=0, factor=2.0),))
        assert study.point_digest(16, fault_plan=plan) != clean
        # empty plan is still a distinct configuration from "no plan"
        assert study.point_digest(16, fault_plan=FaultPlan(seed=3)) != clean


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = "0" * 64
        assert cache.get(digest) is None
        cache.put(digest, {"x": [1, 2], "y": 0.25})
        assert cache.get(digest) == {"x": [1, 2], "y": 0.25}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert cache.entry_count() == 1

    def test_disabled_cache_bypasses_cleanly(self, tmp_path):
        cache = ResultCache(str(tmp_path), enabled=False)
        digest = "1" * 64
        cache.put(digest, {"x": 1})
        assert cache.get(digest) is None
        assert list(tmp_path.iterdir()) == []

    def test_torn_write_counts_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = "2" * 64
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), f"{digest}.json"), "w") as fh:
            fh.write('{"truncated": ')
        assert cache.get(digest) is None

    def test_malformed_digest_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ConfigError):
            cache.get("../../etc/passwd")
        with pytest.raises(ConfigError):
            cache.put("abc", {})

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("3" * 64, {"v": 1})
        cache.put("4" * 64, {"v": 2})
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestStudyCacheIntegration:
    def test_cached_point_identical_to_fresh(self, tmp_path):
        study = ScalingStudy(scenario_by_name("MPI-Opt"), StudyConfig())
        cache = ResultCache(str(tmp_path))
        fresh = study.run_point(8, cache=cache)
        cached = study.run_point(8, cache=cache)
        assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)
        assert cache.hits == 1

    def test_cache_payload_is_byte_identical_json(self, tmp_path):
        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        cache = ResultCache(str(tmp_path))
        point = study.run_point(8, cache=cache)
        digest = study.point_digest(8)
        raw = cache.get(digest)
        assert point_from_payload(raw) == point
        # a JSON round trip of the payload is byte-identical (floats repr)
        assert json.loads(json.dumps(raw)) == point_payload(point)

    def test_no_cache_means_no_files(self, tmp_path):
        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        cache = ResultCache(str(tmp_path), enabled=False)
        study.run_point(8, cache=cache)
        assert list(tmp_path.iterdir()) == []

    def test_hvprof_runs_bypass_cache(self, tmp_path):
        from repro.profiling import Hvprof

        study = ScalingStudy(scenario_by_name("MPI"), StudyConfig())
        cache = ResultCache(str(tmp_path))
        study.run_point(4, hvprof=Hvprof(), cache=cache)
        assert cache.entry_count() == 0
        hv = Hvprof()
        study.run_point(4, hvprof=hv, cache=cache)
        assert hv.op_count("allreduce") > 0  # profiled live, not replayed


class TestSteadyStateDetector:
    def test_requires_sane_parameters(self):
        with pytest.raises(ConfigError):
            SteadyStateDetector(window=1)
        with pytest.raises(ConfigError):
            SteadyStateDetector(rel_tol=-1.0)
        with pytest.raises(ConfigError):
            SteadyStateDetector().steady_value()

    def test_converges_on_identical_samples(self):
        det = SteadyStateDetector(window=3, rel_tol=0.0)
        for _ in range(2):
            det.observe(0.5)
        assert not det.converged()
        det.observe(0.5)
        assert det.converged()
        assert det.steady_value() == 0.5

    def test_does_not_converge_on_jittered_samples(self):
        det = SteadyStateDetector(window=3, rel_tol=1e-9)
        for s in (0.5, 0.51, 0.49, 0.502, 0.498):
            det.observe(s)
            assert not det.converged()

    def test_wide_tolerance_converges_with_mean(self):
        det = SteadyStateDetector(window=3, rel_tol=0.1)
        for s in (0.50, 0.51, 0.49):
            det.observe(s)
        assert det.converged()
        assert det.steady_value() == pytest.approx(0.5)

    def test_rearm_forgets_converged_window(self):
        """Regression: after a world perturbation the detector must demand
        a *fresh* window — a stale pre-fault window must never keep
        reporting the old converged value."""
        det = SteadyStateDetector(window=3, rel_tol=0.0)
        for _ in range(3):
            det.observe(0.5)
        assert det.converged()
        det.rearm()
        assert not det.converged()
        assert det.samples == []
        # fewer than `window` post-recovery samples: still not converged,
        # even though the pre-fault window would have straddled them
        det.observe(0.8)
        det.observe(0.8)
        assert not det.converged()
        det.observe(0.8)
        assert det.converged()
        assert det.steady_value() == 0.8  # post-recovery value, not 0.5

    def test_faulty_run_extrapolates_post_fault_step_time(self):
        """End-to-end regression for the mid-run-fault re-arm: with zero
        jitter the detector converges *before* the failure, so without the
        re-arm the extrapolated tail would replay the 8-rank step time on
        a 7-rank world.  The extrapolating run must match the full
        simulation."""
        from repro.faults import RankFailure
        from repro.resilience import RecoveryPolicy

        def run(steady_detect):
            study = ScalingStudy(
                scenario_by_name("MPI-Opt"),
                StudyConfig(warmup_steps=1, measure_steps=12,
                            jitter_sigma=0.0, steady_detect=steady_detect),
                fault_plan=FaultPlan(
                    seed=11, faults=[RankFailure(rank=3, time=2.0)]),
                recovery=RecoveryPolicy(restart=False),
            )
            return study.run_point(8)

        full = run(False)
        extrapolated = run(True)
        assert full.extrapolated_steps == 0
        assert extrapolated.extrapolated_steps > 0
        assert extrapolated.images_per_second == pytest.approx(
            full.images_per_second, rel=1e-12)
        assert extrapolated.step_time == pytest.approx(
            full.step_time, rel=1e-12)
        assert (extrapolated.resilience["final_world_size"]
                == full.resilience["final_world_size"] == 7)


class TestConvWorkspace:
    def test_buffer_reused_per_shape(self):
        from repro.tensor.functional import ConvWorkspace

        ws = ConvWorkspace()
        a = ws.buffer((2, 3, 4), np.float64)
        b = ws.buffer((2, 3, 4), np.float64)
        c = ws.buffer((2, 3, 5), np.float64)
        assert a is b and a is not c
        assert ws.nbytes() == a.nbytes + c.nbytes

    def test_workspace_conv_matches_fresh_allocation(self):
        from repro.tensor import functional as F
        from repro.tensor.functional import ConvWorkspace
        from repro.tensor.tensor import Tensor

        rng = np.random.default_rng(11)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        ws = ConvWorkspace()
        for _ in range(3):  # reuse across calls must not corrupt anything
            x1 = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
            x2 = Tensor(x1.data.copy(), requires_grad=True)
            out_ws = F.conv2d(x1, w, stride=1, padding=1, workspace=ws)
            out_ref = F.conv2d(x2, w, stride=1, padding=1)
            assert np.array_equal(out_ws.data, out_ref.data)
            out_ws.sum().backward()
            gw_ws = w.grad.copy()
            w.grad = None
            out_ref.sum().backward()
            assert np.array_equal(gw_ws, w.grad)
            assert np.array_equal(x1.grad, x2.grad)
            w.grad = None
        assert len(ws._buffers) == 1

    def test_conv2d_layer_owns_a_workspace(self):
        from repro.tensor.nn.layers import Conv2d
        from repro.tensor.tensor import Tensor

        layer = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(1, 3, 8, 8)))
        layer.forward(x)
        buffers = dict(layer._workspace._buffers)
        layer.forward(x)
        assert dict(layer._workspace._buffers).keys() == buffers.keys()
        assert all(
            layer._workspace._buffers[k] is buffers[k] for k in buffers
        )


class TestCli:
    def test_scale_with_cache_and_jobs(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "scale", "--gpus", "4,8", "--jobs", "1",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "result cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hit(s)" in second
        # the rendered table is identical on the warm pass
        assert first.splitlines()[:7] == second.splitlines()[:7]

    def test_scale_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "scale", "--gpus", "4", "--no-cache",
            "--cache-dir", str(cache_dir),
        ]) == 0
        assert "result cache" not in capsys.readouterr().out
        assert not cache_dir.exists()

    def test_profile_flag_writes_pstats(self, tmp_path, capsys):
        out = str(tmp_path / "prof.pstats")
        assert main(["--profile", "--profile-out", out, "models"]) == 0
        text = capsys.readouterr().out
        assert "cumulative" in text
        assert f"profile written to {out}" in text
        import pstats

        stats = pstats.Stats(out)
        assert stats.total_calls > 0

    def test_cache_subcommand_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        ResultCache(cache_dir).put("5" * 64, {"v": 1})
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert ResultCache(cache_dir).entry_count() == 0
