"""Bit-identity of the unified comm stack with the raw backends.

The repro.comm refactor is behavior-preserving: with no selection table
installed, a RoutedCommunicator must reproduce the raw backend
communicators' timings *exactly* (==, not approx) — same algorithms, same
collective times, same engine step timings — from single-node worlds up
to the paper's 128-node (512-GPU) scale.
"""

import pytest

from repro.comm.registry import build_communicator
from repro.comm.selection import clear_active_tables
from repro.core import MPI_OPT
from repro.hardware import LASSEN
from repro.hardware.cluster import build_cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.horovod.backend import build_backend
from repro.horovod.fusion import PendingTensor
from repro.mpi import MpiWorld, WorldSpec
from repro.mpi.comm import GpuBuffer
from repro.nccl import NcclWorld
from repro.utils.units import KIB, MIB

#: 1 node up to the paper's 128-node scale
RANK_COUNTS = (4, 16, 128, 512)
SIZES = (4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB)


@pytest.fixture(autouse=True)
def _no_active_tables():
    clear_active_tables()
    yield
    clear_active_tables()


def make_spec(num_ranks):
    return WorldSpec(num_ranks=num_ranks, policy=MPI_OPT.policy,
                     config=MPI_OPT.mv2)


def raw_comm(backend, num_ranks):
    cluster = build_cluster(LASSEN, num_ranks)
    if backend == "mpi":
        return MpiWorld(cluster, make_spec(num_ranks)).communicator()
    return NcclWorld(cluster, num_ranks).communicator()


def routed_comm(backend, num_ranks):
    cluster = build_cluster(LASSEN, num_ranks)
    spec = make_spec(num_ranks) if backend == "mpi" else None
    _world, comm = build_communicator(
        cluster, backend, world_spec=spec, num_ranks=num_ranks
    )
    return comm


def virtual(nbytes, n):
    return [GpuBuffer.virtual(nbytes) for _ in range(n)]


class TestCollectiveBitIdentity:
    @pytest.mark.parametrize("backend", ["mpi", "nccl"])
    @pytest.mark.parametrize("num_ranks", RANK_COUNTS)
    def test_allreduce_identical_across_sizes(self, backend, num_ranks):
        raw = raw_comm(backend, num_ranks)
        routed = routed_comm(backend, num_ranks)
        for nbytes in SIZES:
            a = raw.allreduce(virtual(nbytes, num_ranks))
            b = routed.allreduce(virtual(nbytes, num_ranks))
            assert b.time == a.time  # bit-identical, not approx
            assert b.algorithm == a.algorithm
            assert b.segments == a.segments

    @pytest.mark.parametrize("backend", ["mpi", "nccl"])
    @pytest.mark.parametrize("num_ranks", (4, 16, 512))
    def test_bcast_and_barrier_identical(self, backend, num_ranks):
        raw = raw_comm(backend, num_ranks)
        routed = routed_comm(backend, num_ranks)
        for nbytes in (64 * KIB, 16 * MIB):
            a = raw.bcast(virtual(nbytes, num_ranks))
            b = routed.bcast(virtual(nbytes, num_ranks))
            assert b.time == a.time
        assert routed.barrier().time == raw.barrier().time

    @pytest.mark.parametrize("num_ranks", (8, 64))
    def test_restricted_ring_stays_identical(self, num_ranks):
        raw = raw_comm("mpi", num_ranks).restrict(range(num_ranks - 1))
        routed = routed_comm("mpi", num_ranks).restrict(range(num_ranks - 1))
        for nbytes in (64 * KIB, 16 * MIB):
            a = raw.allreduce(virtual(nbytes, num_ranks - 1))
            b = routed.allreduce(virtual(nbytes, num_ranks - 1))
            assert b.time == a.time
            assert b.algorithm == a.algorithm


class TestEngineStepIdentity:
    def stream(self):
        return [
            PendingTensor(name=f"grad{i}", nbytes=(i + 1) * 256 * KIB,
                          ready_time=i * 1e-3)
            for i in range(6)
        ]

    @pytest.mark.parametrize("backend", ["mpi", "nccl"])
    @pytest.mark.parametrize("num_ranks", (4, 16))
    def test_step_timing_identical(self, backend, num_ranks):
        config = HorovodConfig(cycle_time_s=1e-3)
        raw = HorovodEngine(raw_comm(backend, num_ranks), config)
        routed = HorovodEngine(routed_comm(backend, num_ranks), config)
        a = raw.run_step(self.stream(), backward_time=5e-3)
        b = routed.run_step(self.stream(), backward_time=5e-3)
        assert b.comm_finish == a.comm_finish
        assert b.coordination_time == a.coordination_time
        assert b.cycles_used == a.cycles_used
        assert [(m.nbytes, m.start, m.finish, m.algorithm)
                for m in b.messages] == \
               [(m.nbytes, m.start, m.finish, m.algorithm)
                for m in a.messages]

    def test_build_backend_is_the_registry(self):
        """The horovod entry point and the registry hand back the same
        routed stack (one seam, not two)."""
        cluster = build_cluster(LASSEN, 8)
        _w, via_horovod = build_backend(
            cluster, "mpi", world_spec=make_spec(8)
        )
        _w, via_registry = build_communicator(
            cluster, "mpi", world_spec=make_spec(8)
        )
        a = via_horovod.allreduce(virtual(1 * MIB, 8))
        b = via_registry.allreduce(virtual(1 * MIB, 8))
        assert a.time == b.time
        assert type(via_horovod) is type(via_registry)


class TestStudyIdentity:
    def test_scaling_point_unchanged_by_refactor_seam(self):
        """A study point driven through build_backend (the refactored path)
        equals one driven through a hand-built raw engine."""
        from repro.core import ScalingStudy, StudyConfig

        config = StudyConfig(measure_steps=2)
        study = ScalingStudy(MPI_OPT, config)
        point = study.run_point(8)
        again = ScalingStudy(MPI_OPT, config).run_point(8)
        assert again.step_time == point.step_time
        assert again.images_per_second == point.images_per_second
