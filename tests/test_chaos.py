"""Chaos campaign runner: scenarios, invariants, digest reproducibility.

The campaign's contract is checked from three angles:

* the scenario registry lowers to valid, seed-staggered fault plans with
  the blast radii the topology implies;
* the invariant predicates themselves (pure functions over payloads)
  accept conserving ledgers and reject cooked ones;
* an end-to-end campaign is green, its digest is identical across
  ``jobs=1`` / ``jobs=2`` / a warm-cache re-run, and the fast engine is
  bit-identical to the exact engine for partition and switch-failure
  cells at 16 ranks — the acceptance bar of the chaos PR.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chaos import (
    POLICY_NAMES,
    SCENARIOS,
    SERVE_SCENARIOS,
    TRAIN_SCENARIOS,
    CampaignConfig,
    build_plan,
    run_campaign,
)
from repro.chaos.invariants import (
    blast_radius,
    corruption_detected,
    fast_exact_identity,
    ledger_conservation,
    request_conservation,
)
from repro.chaos.scenarios import scenario_by_name
from repro.errors import ConfigError
from repro.faults import CorruptionFault, NodeFailure, PartitionFault, SwitchFailure
from repro.faults.domains import Topology
from repro.perf.cache import ResultCache

# 4 Lassen nodes x 4 GPUs behind 2 leaf switches: the 16-rank world the
# acceptance criteria pin
TOPO = Topology(num_nodes=4)


class TestScenarioRegistry:
    def test_registry_covers_training_and_serving(self):
        assert set(TRAIN_SCENARIOS) | set(SERVE_SCENARIOS) == set(SCENARIOS)
        assert "partition" in TRAIN_SCENARIOS
        assert "serve-failover" in SERVE_SCENARIOS

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown chaos scenario"):
            scenario_by_name("meteor-strike")

    def test_plans_are_seeded_and_staggered(self):
        times = set()
        for seed in range(4):
            plan = build_plan("node-failure", seed, TOPO)
            assert plan.seed == seed
            (fault,) = plan.of_type(NodeFailure)
            times.add(fault.time)
        assert len(times) == 4  # each seed lands at a different phase

    def test_switch_failure_needs_survivors(self):
        # one switch carries every node: no surviving side would remain
        with pytest.raises(ConfigError, match="switch-failure"):
            build_plan("switch-failure", 0, Topology(num_nodes=2))
        plan = build_plan("switch-failure", 0, TOPO)
        (fault,) = plan.of_type(SwitchFailure)
        assert fault.switch == TOPO.num_switches - 1

    def test_partition_severs_the_upper_half(self):
        plan = build_plan("partition", 0, TOPO)
        (fault,) = plan.of_type(PartitionFault)
        assert fault.nodes == (2, 3)
        assert fault.duration is not None  # heals, so regrow is possible

    def test_wire_corruption_window_is_permanent(self):
        # message faults run on the collective-local clock (each engine
        # step starts near 0), so only a start-0 permanent window can fire
        plan = build_plan("wire-corruption", 1, TOPO)
        (fault,) = plan.of_type(CorruptionFault)
        assert fault.start == 0.0 and fault.duration is None

    def test_expected_survivors_match_topology(self):
        expected = {
            "node-failure": 12,   # minus one 4-GPU node
            "switch-failure": 8,  # minus the 2 nodes behind the last TOR
            "partition": 8,       # minus the severed upper half
            "wire-corruption": 16,  # CRC+retry: nobody leaves the job
        }
        for name, survivors in expected.items():
            assert SCENARIOS[name].expected_survivors(TOPO) == survivors


class TestInvariantPredicates:
    RES = {
        "productive_s": 6.0, "checkpoint_s": 1.0, "detection_s": 0.5,
        "lost_work_s": 0.25, "recovery_s": 0.25, "wall_clock_s": 8.0,
    }

    def test_ledger_conservation_accepts_exact_sum(self):
        assert ledger_conservation(self.RES).ok

    def test_ledger_conservation_rejects_leaked_time(self):
        cooked = dict(self.RES, wall_clock_s=9.0)
        result = ledger_conservation(cooked)
        assert not result.ok and "rel err" in result.detail

    def test_corruption_must_pair_with_crc(self):
        assert corruption_detected({"wire-corrupt": 3, "crc-detected": 3}).ok
        assert not corruption_detected({"wire-corrupt": 3, "crc-detected": 2}).ok
        assert corruption_detected({}).ok  # clean cell

    def test_blast_radius_checks_final_world(self):
        assert blast_radius({"final_world_size": 12}, 12).ok
        assert not blast_radius({"final_world_size": 16}, 12).ok

    def test_request_conservation(self):
        assert request_conservation(
            {"arrived": 10, "completed": 8, "shed": 2}).ok
        assert not request_conservation(
            {"arrived": 10, "completed": 8, "shed": 1}).ok

    def test_identity_reports_first_differing_path(self):
        a = {"resilience": {"goodput": 0.9, "restarts": 1}}
        b = {"resilience": {"goodput": 0.8, "restarts": 1}}
        assert fast_exact_identity(a, a).ok
        result = fast_exact_identity(a, b)
        assert not result.ok
        assert "resilience.goodput" in result.detail


class TestCampaignConfig:
    def test_default_covers_every_scenario_and_policy(self):
        config = CampaignConfig()
        assert set(config.scenarios) == set(SCENARIOS)
        assert config.policies == POLICY_NAMES
        assert len(config.cells()) == \
            len(SCENARIOS) * len(POLICY_NAMES) * config.seeds

    def test_rejects_unknown_names_and_bad_sizes(self):
        with pytest.raises(ConfigError):
            CampaignConfig(scenarios=("meteor-strike",))
        with pytest.raises(ConfigError):
            CampaignConfig(policies=("pray",))
        with pytest.raises(ConfigError):
            CampaignConfig(seeds=0)
        with pytest.raises(ConfigError):
            CampaignConfig(num_gpus=1)

    def test_cell_order_is_scenario_major(self):
        config = CampaignConfig(
            scenarios=("partition", "node-failure"),
            policies=("shrink",), seeds=2)
        assert config.cells() == [
            ("partition", "shrink", 0), ("partition", "shrink", 1),
            ("node-failure", "shrink", 0), ("node-failure", "shrink", 1),
        ]


def small_campaign(**overrides):
    """Two training scenarios, one policy, one seed: 4 engine runs."""
    defaults = dict(
        scenarios=("partition", "switch-failure"),
        policies=("shrink",), seeds=1, num_gpus=16, measure_steps=12,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestCampaignRun:
    def test_invariants_green_and_rows_in_cell_order(self):
        config = small_campaign()
        report = run_campaign(config)
        assert report.ok, report.failures()
        assert [(r["scenario"], r["policy"], r["seed"]) for r in report.rows] \
            == config.cells()
        assert report.digest and report.to_payload()["ok"]

    def test_fast_exact_identity_at_16_ranks(self):
        """The acceptance bar: partition and switch-failure cells replay
        bit-identically on the fast engine at 16 ranks."""
        report = run_campaign(small_campaign())
        for row in report.rows:
            assert row["fast"] == row["exact"], row["scenario"]
            names = [inv["name"] for inv in row["invariants"]]
            assert "fast-exact-identity" in names
        worlds = {row["exact"]["resilience"]["world_sizes"][0]
                  for row in report.rows}
        assert worlds == {16}

    def test_digest_identical_across_jobs_and_cache(self, tmp_path):
        config = small_campaign()
        cache = ResultCache(str(tmp_path))
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2, cache=cache)
        cached = run_campaign(config, jobs=2, cache=cache)
        assert serial.digest == parallel.digest == cached.digest
        assert cache.stats()["hits"] >= 4  # warm re-run hit every cell
        assert serial.rows == parallel.rows == cached.rows

    def test_digest_moves_with_the_config(self):
        base = run_campaign(small_campaign())
        more_steps = run_campaign(small_campaign(measure_steps=13))
        assert base.digest != more_steps.digest

    def test_serve_cell_green(self):
        config = CampaignConfig(
            scenarios=("serve-failover",), policies=("restart",),
            seeds=1, serve_duration_s=40.0)
        report = run_campaign(config)
        assert report.ok, report.failures()
        (row,) = report.rows
        assert row["kind"] == "serve"
        summary = row["exact"]["summary"]
        assert summary["completed"] + summary["shed"] == summary["arrived"]
        assert summary["detections"] >= 1

    def test_red_cell_is_located_by_coordinates(self):
        report = run_campaign(small_campaign())
        # cook one invariant to prove failures() pins the cell
        report.rows[1]["invariants"][0]["ok"] = False
        report.rows[1]["invariants"][0]["detail"] = "cooked"
        assert not report.ok
        (failure,) = report.failures()
        assert failure["scenario"] == "switch-failure"
        assert failure["detail"] == "cooked"


def run_cli(*argv):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos", *argv],
        capture_output=True, text=True, env=env, cwd=repo,
    )


class TestChaosCli:
    def test_cli_campaign_green_and_report_written(self, tmp_path):
        report_path = tmp_path / "campaign.json"
        proc = run_cli(
            "--scenarios", "node-failure", "--policies", "shrink",
            "--seeds", "1", "--steps", "12", "--no-cache",
            "--report", str(report_path))
        assert proc.returncode == 0, proc.stderr
        assert "invariant check(s) green" in proc.stdout
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["digest"] in proc.stdout

    def test_cli_rejects_unknown_scenario(self):
        proc = run_cli("--scenarios", "meteor-strike", "--no-cache")
        assert proc.returncode != 0
