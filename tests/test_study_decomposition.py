"""Accounting consistency of the scaling study, plus degraded-fabric runs."""

from dataclasses import replace

import pytest

from repro.core import MPI_DEFAULT, MPI_OPT, ScalingStudy, StudyConfig
from repro.hardware.specs import LASSEN, LinkSpec
from repro.utils.units import GB

FAST = StudyConfig(measure_steps=1, warmup_steps=1)


class TestStepDecomposition:
    @pytest.mark.parametrize("scenario", [MPI_DEFAULT, MPI_OPT])
    def test_step_time_equals_component_sum(self, scenario):
        point = ScalingStudy(scenario, FAST).run_point(8)
        reconstructed = (
            point.forward_time
            + max(point.backward_time,
                  point.backward_time + point.exposed_comm_time)
            + point.blocking_time
            + point.update_time
        )
        assert point.step_time == pytest.approx(reconstructed, rel=1e-6)

    def test_throughput_consistent_with_step_time(self):
        point = ScalingStudy(MPI_OPT, FAST).run_point(8)
        assert point.images_per_second == pytest.approx(
            8 * 4 / point.step_time, rel=1e-6
        )
        assert point.per_gpu_rate == pytest.approx(
            point.images_per_second / 8
        )

    def test_gradient_bytes_conserved_at_every_scale(self):
        study = ScalingStudy(MPI_OPT, FAST)
        for gpus in (4, 16, 64):
            point = study.run_point(gpus)
            assert sum(point.message_sizes) == study.cost.gradient_bytes

    def test_forward_backward_ratio(self):
        """Backward is 2x forward (the standard training FLOP split)."""
        point = ScalingStudy(MPI_OPT, FAST).run_point(4)
        straggler_free_backward = point.backward_time
        # backward_time carries the straggler factor; ratio still ~2x
        assert 1.9 < straggler_free_backward / point.forward_time < 2.4


class TestDegradedFabric:
    def test_quarter_speed_ib_reduces_multi_node_throughput(self):
        slow_ib = replace(
            LASSEN, ib=LinkSpec("ib-slow", LASSEN.ib.latency_s,
                                LASSEN.ib.bandwidth / 4)
        )
        healthy = ScalingStudy(MPI_OPT, FAST).run_point(32)
        degraded_cfg = StudyConfig(cluster=slow_ib, measure_steps=1,
                                   warmup_steps=1)
        degraded = ScalingStudy(MPI_OPT, degraded_cfg).run_point(32)
        assert degraded.images_per_second < healthy.images_per_second
        # single-node runs are untouched by the fabric change
        healthy_1n = ScalingStudy(MPI_OPT, FAST).run_point(4)
        degraded_1n = ScalingStudy(MPI_OPT, degraded_cfg).run_point(4)
        assert degraded_1n.images_per_second == pytest.approx(
            healthy_1n.images_per_second, rel=1e-6
        )

    def test_high_latency_fabric_hurts_small_messages_most(self):
        """100x IB latency: chunked inter-node rings absorb a per-step cost."""
        laggy = replace(
            LASSEN, ib=LinkSpec("ib-laggy", LASSEN.ib.latency_s * 100,
                                LASSEN.ib.bandwidth)
        )
        cfg = StudyConfig(cluster=laggy, measure_steps=1, warmup_steps=1)
        healthy = ScalingStudy(MPI_OPT, FAST).run_point(32)
        delayed = ScalingStudy(MPI_OPT, cfg).run_point(32)
        assert delayed.comm_wall_time > healthy.comm_wall_time
