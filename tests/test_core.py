"""Tests for the paper-core layer: scenarios, visibility mechanism,
scaling study, efficiency math, and the optimization pipeline."""

import pytest

from repro.core import (
    MPI_DEFAULT,
    MPI_OPT,
    MPI_REG,
    NCCL_SCENARIO,
    OptimizationPipeline,
    ScalingStudy,
    StudyConfig,
    scaling_efficiency,
    scenario_by_name,
    speedup,
    visibility_table,
)
from repro.core.efficiency import efficiency_gain_points
from repro.core.visible_devices import ipc_matrix, overhead_kernel_report
from repro.errors import ConfigError
from repro.hardware import LASSEN, Cluster
from repro.mpi import WorldSpec, build_world
from repro.mpi.transports import TransportModel
from repro.sim import Environment

FAST = StudyConfig(measure_steps=1, warmup_steps=1)


class TestScenarios:
    def test_four_scenarios_defined(self):
        names = {s.name for s in (MPI_DEFAULT, MPI_REG, MPI_OPT, NCCL_SCENARIO)}
        assert names == {"MPI", "MPI-Reg", "MPI-Opt", "NCCL"}

    def test_scenario_knobs_match_paper(self):
        assert not MPI_DEFAULT.mv2.registration_cache
        assert MPI_DEFAULT.mv2.mv2_visible_devices is None
        assert MPI_REG.mv2.registration_cache
        assert MPI_REG.mv2.mv2_visible_devices is None
        assert MPI_OPT.mv2.registration_cache
        assert MPI_OPT.mv2.mv2_visible_devices == "all"
        assert NCCL_SCENARIO.backend == "nccl"

    def test_lookup_by_name(self):
        assert scenario_by_name("mpi-opt") is MPI_OPT
        with pytest.raises(ConfigError):
            scenario_by_name("bogus")


class TestVisibilityDiagnostics:
    def _ranks(self, scenario, num_gpus=4):
        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        spec = WorldSpec(num_ranks=num_gpus, policy=scenario.policy,
                         config=scenario.mv2)
        ranks = build_world(cluster, spec)
        return cluster, ranks, TransportModel(cluster, scenario.mv2, ranks)

    def test_visibility_table_shows_fig7_layout(self):
        _, ranks, _ = self._ranks(MPI_OPT)
        table = visibility_table(ranks)
        assert "0,1,2,3" in table  # MV2-effective column
        for rank in range(4):
            assert f"{rank}" in table

    def test_default_scenario_has_no_intra_node_ipc(self):
        _, ranks, tm = self._ranks(MPI_DEFAULT)
        matrix = ipc_matrix(tm, ranks)
        assert "yes | no" in matrix.replace("  ", " ") or "no" in matrix
        assert not tm.can_ipc(ranks[0], ranks[1])

    def test_opt_scenario_restores_ipc(self):
        _, ranks, tm = self._ranks(MPI_OPT)
        assert tm.can_ipc(ranks[0], ranks[1])
        assert tm.can_ipc(ranks[0], ranks[3])

    def test_overhead_kernel_report_counts_contexts(self):
        cluster, ranks, _ = self._ranks(MPI_DEFAULT)
        report = overhead_kernel_report(cluster, ranks)
        assert "gpu0" in report
        # singleton policy: exactly one context per GPU
        assert report.count(" 1 ") >= 4


class TestEfficiencyMath:
    def test_perfect_scaling_is_one(self):
        assert scaling_efficiency(103.0, 10, 10.3) == pytest.approx(1.0)

    def test_paper_headline_numbers_consistent(self):
        """+15.6 efficiency points at 512 GPUs ~ 1.26x speedup."""
        default_eff, opt_eff = 0.58, 0.58 + 0.156
        assert efficiency_gain_points(opt_eff, default_eff) == pytest.approx(15.6)
        assert speedup(opt_eff, default_eff) == pytest.approx(1.269, abs=0.01)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            scaling_efficiency(1.0, 0, 1.0)
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)


class TestScalingStudy:
    def test_single_gpu_matches_fig1_anchor(self):
        study = ScalingStudy(MPI_OPT, FAST)
        assert study.single_gpu_rate() == pytest.approx(10.3, rel=0.1)

    def test_throughput_increases_with_gpus(self):
        study = ScalingStudy(MPI_OPT, FAST)
        p4 = study.run_point(4)
        p16 = study.run_point(16)
        assert p16.images_per_second > 2 * p4.images_per_second

    def test_efficiency_declines_with_scale(self):
        study = ScalingStudy(MPI_DEFAULT, FAST)
        points = study.run([4, 64])
        assert points[0].efficiency > points[1].efficiency

    def test_opt_beats_default_at_scale(self):
        default = ScalingStudy(MPI_DEFAULT, FAST).run_point(64)
        opt = ScalingStudy(MPI_OPT, FAST).run_point(64)
        assert opt.images_per_second > 1.1 * default.images_per_second
        assert default.blocking_time > 0
        # small (<4 MiB) messages still stage under MPI-Opt (Table I's
        # unchanged small bins), but the staged volume nearly vanishes
        assert opt.blocking_time < 0.1 * default.blocking_time

    def test_nccl_unaffected_by_visibility(self):
        nccl = ScalingStudy(NCCL_SCENARIO, FAST).run_point(16)
        assert nccl.blocking_time == 0
        assert nccl.regcache_hit_rate is None

    def test_fused_message_sizes_in_table1_range(self):
        from repro.utils.units import MIB

        point = ScalingStudy(MPI_OPT, FAST).run_point(4)
        assert sum(point.message_sizes) == pytest.approx(
            ScalingStudy(MPI_OPT, FAST).cost.gradient_bytes
        )
        assert max(point.message_sizes) >= 16 * MIB

    def test_point_records_regcache_stats_for_mpi(self):
        point = ScalingStudy(MPI_REG, FAST).run_point(8)
        assert point.regcache_hit_rate is not None


class TestOptimizationPipeline:
    def test_pipeline_diagnoses_and_recommends(self):
        pipeline = OptimizationPipeline(num_gpus=4, steps=3)
        report = pipeline.run()
        assert report.throughput_gain_pct > 5
        assert any("CUDA IPC" in d for d in report.diagnosis)
        assert any("MV2_VISIBLE_DEVICES" in r for r in report.recommendations)
        assert any("registration cache" in r.lower() for r in report.recommendations)
        assert report.improvement_pct["Total"] > 20

    def test_pipeline_table_renders(self):
        report = OptimizationPipeline(num_gpus=4, steps=2).run()
        table = report.table()
        assert "16 MB - 32 MB" in table or "32 MB - 64 MB" in table
        assert "Total Time" in table


class TestCrossCluster:
    """The paper ran on both Lassen (LLNL) and Longhorn (TACC); the harness
    is system-agnostic (§I-C)."""

    def test_longhorn_study_runs(self):
        from dataclasses import replace

        from repro.hardware.specs import LONGHORN

        config = StudyConfig(cluster=LONGHORN, measure_steps=1, warmup_steps=1)
        point = ScalingStudy(MPI_OPT, config).run_point(16)
        assert point.images_per_second > 0
        assert point.num_gpus == 16

    def test_longhorn_capacity_enforced(self):
        from repro.errors import HardwareError
        from repro.hardware.specs import LONGHORN

        config = StudyConfig(cluster=LONGHORN, measure_steps=1)
        study = ScalingStudy(MPI_OPT, config)
        with pytest.raises(HardwareError):
            study.run_point(512)  # Longhorn has 96 nodes = 384 GPUs

    def test_oversubscribed_network_hurts_at_scale(self):
        from dataclasses import replace

        from repro.hardware.specs import LASSEN

        tapered = replace(LASSEN, oversubscription=4.0)
        full = StudyConfig(measure_steps=1, warmup_steps=1)
        cut = StudyConfig(cluster=tapered, measure_steps=1, warmup_steps=1)
        fat_tree = ScalingStudy(MPI_OPT, full).run_point(64)
        oversub = ScalingStudy(MPI_OPT, cut).run_point(64)
        assert oversub.images_per_second < fat_tree.images_per_second


class TestMemoryFeasibility:
    def test_oversized_batch_rejected(self):
        config = StudyConfig(batch_per_gpu=128, measure_steps=1)
        study = ScalingStudy(MPI_OPT, config)
        with pytest.raises(ConfigError, match="OOM"):
            study.run_point(4)

    def test_paper_batch_fits(self):
        study = ScalingStudy(MPI_OPT, StudyConfig(measure_steps=1))
        study.check_memory_feasible(4)  # must not raise

    def test_check_can_be_disabled(self):
        config = StudyConfig(batch_per_gpu=128, measure_steps=1,
                             warmup_steps=0, check_memory=False)
        point = ScalingStudy(MPI_OPT, config).run_point(4)
        assert point.images_per_second > 0


class TestLegacyAllVisibleScenario:
    """Fig. 6a's workaround as a first-class scenario: IPC works, but the
    overhead kernels shrink the batch space."""

    def test_ipc_works_without_mv2_override(self):
        from repro.core import MPI_ALL_VISIBLE

        _cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        spec = WorldSpec(num_ranks=4, policy=MPI_ALL_VISIBLE.policy,
                         config=MPI_ALL_VISIBLE.mv2)
        ranks = build_world(_cluster, spec)
        tm = TransportModel(_cluster, MPI_ALL_VISIBLE.mv2, ranks)
        assert tm.can_ipc(ranks[0], ranks[1])

    def test_comm_performance_matches_opt_but_batch_space_shrinks(self):
        from repro.core import MPI_ALL_VISIBLE

        fast = StudyConfig(measure_steps=1, warmup_steps=1)
        legacy = ScalingStudy(MPI_ALL_VISIBLE, fast)
        opt = ScalingStudy(MPI_OPT, fast)
        # same communication path -> nearly identical throughput
        r_legacy = legacy.run_point(4).images_per_second
        r_opt = opt.run_point(4).images_per_second
        assert r_legacy == pytest.approx(r_opt, rel=0.05)
        # but 4 contexts per GPU instead of 1 -> smaller max batch
        assert legacy.contexts_per_gpu() == 4
        assert opt.contexts_per_gpu() == 1
        assert legacy.max_feasible_batch() < opt.max_feasible_batch()


class TestStrongScaling:
    def test_strong_scaling_shrinks_per_gpu_batch(self):
        config = StudyConfig(global_batch=64, measure_steps=1, warmup_steps=1)
        study = ScalingStudy(MPI_OPT, config)
        assert study.batch_for(1) == 64
        assert study.batch_for(16) == 4
        assert study.batch_for(128) == 1

    def test_strong_scaling_efficiency_decays_faster_than_weak(self):
        weak = StudyConfig(batch_per_gpu=4, measure_steps=1, warmup_steps=1)
        strong = StudyConfig(global_batch=4 * 64, measure_steps=1,
                             warmup_steps=1)
        weak_pts = ScalingStudy(MPI_OPT, weak).run([4, 64])
        strong_pts = ScalingStudy(MPI_OPT, strong).run([4, 64])
        weak_decay = weak_pts[1].efficiency / weak_pts[0].efficiency
        strong_decay = strong_pts[1].efficiency / strong_pts[0].efficiency
        # at 64 GPUs strong scaling runs batch 4 (same as weak) but its
        # 4-GPU point ran batch 64 (better utilization) -> steeper decay
        assert strong_decay < weak_decay


class TestOddWorldSizes:
    """No power-of-two or full-node assumptions may crash the stack."""

    @pytest.mark.parametrize("num_gpus", [2, 3, 6, 12, 24])
    def test_study_runs_at_odd_sizes(self, num_gpus):
        point = ScalingStudy(MPI_OPT, FAST).run_point(num_gpus)
        assert point.images_per_second > 0
        assert sum(point.message_sizes) > 0

    def test_partial_node_occupancy(self):
        """6 ranks on 2 nodes: the second node hosts only 2 ranks."""
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        spec = WorldSpec(num_ranks=6, policy=MPI_OPT.policy, config=MPI_OPT.mv2)
        ranks = build_world(cluster, spec)
        assert [r.node_id for r in ranks] == [0, 0, 0, 0, 1, 1]
        assert [r.local_rank for r in ranks] == [0, 1, 2, 3, 0, 1]
