"""Autograd correctness: analytic gradients vs. central finite differences,
plus graph-mechanics tests."""

import numpy as np
import pytest

from repro.errors import GradError, ShapeError, TensorError
from repro.tensor import Tensor, functional as F, no_grad

RNG = np.random.default_rng(42)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt x (float64 internally)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = fn(x.astype(np.float32))
        flat_x[i] = orig - eps
        minus = fn(x.astype(np.float32))
        flat_x[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(op, x_data: np.ndarray, atol=1e-2, rtol=1e-2):
    x = Tensor(x_data, requires_grad=True)
    out = op(x)
    loss = out.sum() if out.size > 1 else out
    loss.backward()

    def scalar_fn(data):
        return op(Tensor(data)).numpy().sum()

    expected = numeric_grad(scalar_fn, x_data)
    np.testing.assert_allclose(x.grad, expected, atol=atol, rtol=rtol)


class TestBasicOps:
    def test_add_backward(self):
        check_grad(lambda x: x + 3.0, RNG.standard_normal((3, 4)).astype(np.float32))

    def test_mul_backward(self):
        check_grad(lambda x: x * x, RNG.standard_normal((3, 4)).astype(np.float32))

    def test_div_backward(self):
        data = RNG.standard_normal((3, 4)).astype(np.float32) + 3.0
        check_grad(lambda x: 2.0 / x, data)

    def test_pow_backward(self):
        data = np.abs(RNG.standard_normal((5,))).astype(np.float32) + 0.5
        check_grad(lambda x: x**3, data)

    def test_broadcast_add_backward(self):
        a = Tensor(RNG.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(RNG.standard_normal((4,)).astype(np.float32), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_matmul_backward(self):
        a_data = RNG.standard_normal((3, 4)).astype(np.float32)
        b_data = RNG.standard_normal((4, 2)).astype(np.float32)
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_data.T, atol=1e-5)
        np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 2)), atol=1e-5)

    def test_mean_backward(self):
        check_grad(lambda x: x.mean(), RNG.standard_normal((4, 4)).astype(np.float32))

    def test_sum_axis_backward(self):
        check_grad(
            lambda x: F.sum_(x, axis=1).sum(),
            RNG.standard_normal((3, 5)).astype(np.float32),
        )

    def test_reshape_transpose_backward(self):
        check_grad(
            lambda x: (F.transpose(F.reshape(x, (4, 3))) * 2.0).sum(),
            RNG.standard_normal((3, 4)).astype(np.float32),
        )

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = F.concatenate([a, b], axis=0)
        (out * Tensor(np.arange(10, dtype=np.float32).reshape(5, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
        np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    @pytest.mark.parametrize("fn", [F.exp, F.log, F.sqrt, F.abs_])
    def test_unary_backward(self, fn):
        data = np.abs(RNG.standard_normal((6,))).astype(np.float32) + 0.5
        check_grad(fn, data)

    def test_clip_backward(self):
        data = np.linspace(-2, 2, 9, dtype=np.float32)
        x = Tensor(data, requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        expected = ((data >= -1) & (data <= 1)).astype(np.float32)
        np.testing.assert_allclose(x.grad, expected)


class TestActivations:
    @pytest.mark.parametrize(
        "fn",
        [F.relu, lambda x: F.leaky_relu(x, 0.1), F.sigmoid, F.tanh],
    )
    def test_activation_gradients(self, fn):
        data = RNG.standard_normal((4, 5)).astype(np.float32) + 0.05
        check_grad(fn, data)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((3, 7)).astype(np.float32))
        out = F.softmax(x)
        np.testing.assert_allclose(out.numpy().sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_gradient(self):
        data = RNG.standard_normal((2, 5)).astype(np.float32)
        weights = RNG.standard_normal((2, 5)).astype(np.float32)
        check_grad(lambda x: (F.softmax(x) * Tensor(weights)).sum(), data)


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradError):
            (x * 2).backward()

    def test_backward_on_no_grad_tensor_rejected(self):
        x = Tensor(np.ones(3))
        with pytest.raises(GradError):
            x.sum().backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, 4.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * 3
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_shared_subexpression_deep_chain(self):
        x = Tensor(np.array([1.5], dtype=np.float32), requires_grad=True)
        a = x * x  # x^2
        b = a * x  # x^3
        c = (a + b).sum()  # x^2 + x^3 -> grad = 2x + 3x^2
        c.backward()
        np.testing.assert_allclose(x.grad, [2 * 1.5 + 3 * 1.5**2], rtol=1e-5)

    def test_no_grad_context_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    def test_float64_coerced_to_float32(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.dtype == np.float32

    def test_wrapping_tensor_rejected(self):
        with pytest.raises(TensorError):
            Tensor(Tensor(np.ones(2)))

    def test_item_requires_scalar(self):
        with pytest.raises(TensorError):
            Tensor(np.ones(3)).item()

    def test_gradient_shape_mismatch_rejected(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with pytest.raises(GradError):
            x.accumulate_grad(np.ones((3, 2), dtype=np.float32))


class TestLosses:
    def test_mse_matches_formula(self):
        p = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32), requires_grad=True)
        t = Tensor(np.array([0.0, 0.0, 0.0], dtype=np.float32))
        loss = F.mse_loss(p, t)
        assert loss.item() == pytest.approx((1 + 4 + 9) / 3)
        loss.backward()
        np.testing.assert_allclose(p.grad, 2 * np.array([1, 2, 3]) / 3, rtol=1e-5)

    def test_l1_gradient_is_sign(self):
        p = Tensor(np.array([2.0, -3.0], dtype=np.float32), requires_grad=True)
        t = Tensor(np.zeros(2, dtype=np.float32))
        F.l1_loss(p, t).backward()
        np.testing.assert_allclose(p.grad, [0.5, -0.5])

    def test_cross_entropy_gradient(self):
        logits_data = RNG.standard_normal((4, 6)).astype(np.float32)
        labels = np.array([0, 2, 5, 1])
        logits = Tensor(logits_data, requires_grad=True)
        F.cross_entropy(logits, labels).backward()

        def fn(data):
            return F.cross_entropy(Tensor(data), labels).item()

        expected = numeric_grad(fn, logits_data)
        np.testing.assert_allclose(logits.grad, expected, atol=2e-2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            F.mse_loss(Tensor(np.ones(3)), Tensor(np.ones(4)))
