"""Tests for repro.serve: workload determinism, batcher invariants
(property-based), routing, autoscaling, SLO accounting, failover, cached
policy sweeps, trace export, functional bit-exactness, and the CLI."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.faults import FaultPlan, RankFailure
from repro.perf import ResultCache
from repro.perf.digest import CACHE_VERSION_SALT
from repro.profiling import chrome_trace, write_chrome_trace
from repro.serve import (
    DEFAULT_MIX,
    POLICY_NAMES,
    AdmissionConfig,
    AutoscalerConfig,
    BatchingConfig,
    DynamicBatcher,
    JoinShortestQueue,
    LeastLoaded,
    Request,
    RequestClass,
    RoundRobin,
    ServeJob,
    ServeReport,
    ServeScenario,
    ServingCostModel,
    SLOConfig,
    SLOLedger,
    WorkloadConfig,
    generate_arrivals,
    make_routing_policy,
    nearest_rank,
    run_serve_jobs,
    serve_digest,
    simulate_serve,
)

FAST = settings(max_examples=50, deadline=None)


# -- workload generators -------------------------------------------------------

class TestWorkload:
    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_same_seed_identical_trace(self, kind):
        cfg = WorkloadConfig(kind=kind, rate_rps=30.0)
        a = generate_arrivals(cfg, 20.0, seed=5)
        b = generate_arrivals(cfg, 20.0, seed=5)
        assert a == b
        assert len(a) > 0
        # arrivals are sorted, in-window, and densely rid-numbered
        times = [r.arrival for r in a]
        assert times == sorted(times)
        assert all(0.0 <= t < 20.0 for t in times)
        assert [r.rid for r in a] == list(range(len(a)))

    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_different_seeds_differ(self, kind):
        cfg = WorkloadConfig(kind=kind, rate_rps=30.0)
        assert generate_arrivals(cfg, 20.0, seed=5) != generate_arrivals(
            cfg, 20.0, seed=6
        )

    def test_rate_scales_volume(self):
        slow = generate_arrivals(WorkloadConfig(rate_rps=5.0), 60.0, seed=1)
        fast = generate_arrivals(WorkloadConfig(rate_rps=50.0), 60.0, seed=1)
        assert len(fast) > 3 * len(slow)

    def test_class_mix_follows_weights(self):
        trace = generate_arrivals(WorkloadConfig(rate_rps=100.0), 60.0, seed=2)
        counts = {c.name: 0 for c in DEFAULT_MIX}
        for r in trace:
            counts[r.cls.name] += 1
        # thumb-x2 outweighs photo-x4 6:1 in expectation
        assert counts["thumb-x2"] > counts["photo-x4"] * 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(kind="sawtooth")
        with pytest.raises(ConfigError):
            WorkloadConfig(rate_rps=0.0)
        with pytest.raises(ConfigError):
            WorkloadConfig(classes=())
        with pytest.raises(ConfigError):
            RequestClass("bad", scale=5)
        with pytest.raises(ConfigError):
            generate_arrivals(WorkloadConfig(), 0.0, seed=1)


# -- dynamic batcher (property-based) ------------------------------------------

def _req(i: int, t: float) -> Request:
    return Request(rid=i, cls=DEFAULT_MIX[0], arrival=t)


# monotone enqueue clocks plus a driver that dispatches whenever ready
arrival_gaps = st.lists(
    st.floats(0.0, 0.1, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


class TestBatcherProperties:
    @given(gaps=arrival_gaps, max_batch=st.integers(1, 9),
           timeout_ms=st.floats(0.0, 50.0, allow_nan=False))
    @FAST
    def test_driver_invariants(self, gaps, max_batch, timeout_ms):
        """Simulate the replica driver loop over an arbitrary arrival
        pattern: batches never exceed max_batch, no request's batch
        dispatches later than its enqueue time + timeout, and dispatch
        order is globally FIFO (hence FIFO within each class)."""
        config = BatchingConfig(
            max_batch=max_batch, timeout_s=timeout_ms / 1e3
        )
        batcher = DynamicBatcher(config)
        now = 0.0
        enqueued_at = {}
        dispatched = []

        for i, gap in enumerate(gaps):
            arrival = now + gap
            # dispatch any batch whose deadline expires before this arrival
            while len(batcher) and batcher.next_deadline() <= arrival:
                at = max(now, batcher.next_deadline())
                assert batcher.ready(at)
                batch = batcher.pop_batch(at)
                assert 1 <= len(batch) <= max_batch
                dispatched.extend((r.rid, at) for r in batch)
            now = arrival
            req = _req(i, now)
            batcher.enqueue(req, now)
            enqueued_at[req.rid] = now
            # a full batcher dispatches immediately
            while batcher.ready(now):
                batch = batcher.pop_batch(now)
                assert 1 <= len(batch) <= max_batch
                dispatched.extend((r.rid, now) for r in batch)
        # drain the tail at each pending deadline
        while len(batcher):
            now = max(now, batcher.next_deadline())
            assert batcher.ready(now)
            batch = batcher.pop_batch(now)
            assert 1 <= len(batch) <= max_batch
            dispatched.extend((r.rid, now) for r in batch)

        rids = [rid for rid, _ in dispatched]
        assert rids == sorted(rids)  # global FIFO
        assert set(rids) == set(enqueued_at)  # nothing lost or duplicated
        for rid, at in dispatched:
            assert at <= enqueued_at[rid] + config.timeout_s + 1e-9

    def test_clock_must_be_monotone(self):
        batcher = DynamicBatcher(BatchingConfig())
        batcher.enqueue(_req(0, 5.0), 5.0)
        with pytest.raises(ConfigError):
            batcher.enqueue(_req(1, 1.0), 1.0)

    def test_pop_empty_raises_and_drain_clears(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch=4))
        with pytest.raises(ConfigError):
            batcher.pop_batch(0.0)
        for i in range(3):
            batcher.enqueue(_req(i, 0.0), 0.0)
        assert [r.rid for r in batcher.drain()] == [0, 1, 2]
        assert len(batcher) == 0


# -- routing policies ----------------------------------------------------------

class _FakeReplica:
    def __init__(self, id, queue, backlog):
        self.id, self._queue, self._backlog = id, queue, backlog

    def queue_len(self):
        return self._queue

    def backlog_s(self, now):
        return self._backlog


class TestRouting:
    def test_round_robin_cycles_in_id_order(self):
        reps = [_FakeReplica(2, 0, 0), _FakeReplica(0, 9, 9), _FakeReplica(1, 5, 5)]
        rr = RoundRobin()
        picks = [rr.choose(reps, 0.0).id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_min_queue_ties_to_lowest_id(self):
        reps = [_FakeReplica(3, 2, 0), _FakeReplica(1, 2, 9), _FakeReplica(2, 5, 1)]
        assert JoinShortestQueue().choose(reps, 0.0).id == 1

    def test_least_loaded_uses_backlog(self):
        reps = [_FakeReplica(0, 1, 3.0), _FakeReplica(1, 9, 0.5)]
        assert LeastLoaded().choose(reps, 0.0).id == 1

    def test_empty_pool_and_factory(self):
        assert RoundRobin().choose([], 0.0) is None
        for name in POLICY_NAMES:
            assert make_routing_policy(name).name == name
        assert make_routing_policy("round-robin").name == "rr"
        with pytest.raises(ConfigError):
            make_routing_policy("random")
        with pytest.raises(ConfigError):
            AdmissionConfig(queue_capacity=0)


# -- autoscaler decision function ----------------------------------------------

class TestAutoscaler:
    def test_thresholds_and_limits(self):
        cfg = AutoscalerConfig(min_replicas=1, max_replicas=4,
                               scale_up_at=4.0, scale_down_at=0.5,
                               cooldown_s=5.0)
        up = dict(now=100.0, last_action_at=0.0)
        assert cfg.decide(queued=20, replicas=2, **up) == +1
        assert cfg.decide(queued=20, replicas=4, **up) == 0  # at ceiling
        assert cfg.decide(queued=0, replicas=2, **up) == -1
        assert cfg.decide(queued=0, replicas=1, **up) == 0  # at floor
        assert cfg.decide(queued=4, replicas=2, **up) == 0  # in band

    def test_cooldown_and_disabled(self):
        cfg = AutoscalerConfig(cooldown_s=5.0)
        assert cfg.decide(queued=99, replicas=1, now=3.0, last_action_at=0.0) == 0
        off = AutoscalerConfig(enabled=False)
        assert off.decide(queued=99, replicas=1, now=50.0, last_action_at=0.0) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigError):
            AutoscalerConfig(scale_up_at=0.5, scale_down_at=0.5)


# -- SLO ledger ----------------------------------------------------------------

class TestSLOLedger:
    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(vals, 0.50) == 2.0
        assert nearest_rank(vals, 0.99) == 4.0
        assert nearest_rank([], 0.5) == 0.0

    def test_accounting_and_terminal_states(self):
        ledger = SLOLedger(SLOConfig(target_latency_s=0.5))
        r0, r1 = _req(0, 0.0), _req(1, 1.0)
        ledger.note_arrival(r0)
        ledger.note_arrival(r1)
        with pytest.raises(SimulationError):
            ledger.note_arrival(r0)  # duplicate arrival
        with pytest.raises(SimulationError):
            ledger.finalize(10.0)  # still pending
        ledger.note_completed(r0, 0.25)
        ledger.note_shed(r1, 1.0)
        with pytest.raises(SimulationError):
            ledger.note_completed(r0, 9.0)  # double terminal
        summary = ledger.finalize(10.0)
        assert summary["arrived"] == 2
        assert summary["completed"] == 1 and summary["shed"] == 1
        assert summary["slo_attainment"] == 1.0
        assert summary["goodput_rps"] == pytest.approx(0.1)


# -- the serving cost model ----------------------------------------------------

class TestServingCost:
    def test_padding_aware_batch_latency(self):
        cost = ServingCostModel()
        cheap, heavy = DEFAULT_MIX[0], DEFAULT_MIX[2]
        mixed = [_req(0, 0.0), Request(rid=1, cls=heavy, arrival=0.0)]
        pure_heavy = [Request(rid=i, cls=heavy, arrival=0.0) for i in range(2)]
        # a mixed batch is charged exactly like an all-heavy batch
        assert cost.batch_latency(mixed) == cost.batch_latency(pure_heavy)
        assert cost.request_latency(heavy) > cost.request_latency(cheap)

    def test_batching_amortizes(self):
        cost = ServingCostModel()
        reqs = [_req(i, 0.0) for i in range(8)]
        per_req = cost.batch_latency(reqs) / 8
        assert per_req < cost.request_latency(DEFAULT_MIX[0])

    def test_cold_start_positive(self):
        from repro.resilience import CheckpointPolicy

        cold = ServingCostModel().cold_start_s(CheckpointPolicy())
        assert cold > 0.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            ServingCostModel(model="vgg-99")


# -- end-to-end simulation -----------------------------------------------------

class TestSimulation:
    def test_run_twice_identical_ledger(self):
        scn = ServeScenario()
        a = simulate_serve(scn, duration_s=8.0, seed=7)
        b = simulate_serve(scn, duration_s=8.0, seed=7)
        assert a.summary == b.summary
        assert a.summary["arrived"] == (
            a.summary["completed"] + a.summary["shed"]
        )

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_policy_resolves_all_requests(self, policy):
        report = simulate_serve(
            ServeScenario(routing=policy), duration_s=6.0, seed=3
        )
        s = report.summary
        assert s["arrived"] > 0
        assert s["arrived"] == s["completed"] + s["shed"]
        assert s["latency_ms"]["p99"] >= s["latency_ms"]["p50"] > 0

    def test_shedding_under_tiny_queues(self):
        scn = ServeScenario(
            initial_replicas=1,
            workload=WorkloadConfig(rate_rps=80.0),
            admission=AdmissionConfig(queue_capacity=2),
            autoscaler=AutoscalerConfig(enabled=False),
        )
        s = simulate_serve(scn, duration_s=5.0, seed=1).summary
        assert s["shed"] > 0
        assert s["arrived"] == s["completed"] + s["shed"]

    def test_autoscaler_reacts_to_bursts(self):
        scn = ServeScenario(
            initial_replicas=1,
            workload=WorkloadConfig(kind="bursty", rate_rps=20.0),
            autoscaler=AutoscalerConfig(max_replicas=6, cooldown_s=1.0),
        )
        s = simulate_serve(scn, duration_s=20.0, seed=4).summary
        assert s["cold_starts"] > 0 and s["cold_start_s"] > 0.0
        no_scale = ServeScenario(
            initial_replicas=1,
            workload=WorkloadConfig(kind="bursty", rate_rps=20.0),
            autoscaler=AutoscalerConfig(enabled=False),
        )
        s2 = simulate_serve(no_scale, duration_s=20.0, seed=4).summary
        assert s2["cold_starts"] == 0

    def test_failover_accounts_for_every_request(self):
        plan = FaultPlan(faults=(RankFailure(rank=0, time=3.0),))
        s = simulate_serve(
            ServeScenario(), duration_s=12.0, seed=7, fault_plan=plan
        ).summary
        assert s["detections"] == 1
        assert s["retried_requests"] >= 1
        assert s["arrived"] == s["completed"] + s["shed"]

    def test_failure_of_unknown_replica_is_noop(self):
        plan = FaultPlan(faults=(RankFailure(rank=99, time=1.0),))
        s = simulate_serve(
            ServeScenario(), duration_s=4.0, seed=2, fault_plan=plan
        ).summary
        assert s["detections"] == 0
        assert s["arrived"] == s["completed"] + s["shed"]

    def test_failover_is_deterministic(self):
        plan = FaultPlan(faults=(RankFailure(rank=1, time=2.0),))
        a = simulate_serve(ServeScenario(), duration_s=8.0, seed=9,
                           fault_plan=plan)
        b = simulate_serve(ServeScenario(), duration_s=8.0, seed=9,
                           fault_plan=plan)
        assert a.summary == b.summary

    def test_report_payload_round_trip(self):
        report = simulate_serve(ServeScenario(), duration_s=4.0, seed=1)
        clone = ServeReport.from_payload(report.to_payload())
        assert clone.to_payload() == report.to_payload()
        assert any("latency" in line for line in clone.lines())


# -- sweeps, digests, cache ----------------------------------------------------

class TestSweep:
    def _jobs(self):
        return [
            ServeJob(ServeScenario(routing=p), duration_s=5.0, seed=7)
            for p in POLICY_NAMES
        ]

    def test_jobs1_vs_jobs2_identical(self):
        serial = run_serve_jobs(self._jobs(), workers=1)
        parallel = run_serve_jobs(self._jobs(), workers=2)
        assert [r.to_payload() for r in serial] == [
            r.to_payload() for r in parallel
        ]

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = run_serve_jobs(self._jobs(), workers=1, cache=cache)
        warm = run_serve_jobs(self._jobs(), workers=1, cache=cache)
        assert [r.to_payload() for r in cold] == [
            r.to_payload() for r in warm
        ]
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 3

    def test_digest_sensitivity(self):
        base = ServeJob(ServeScenario(), duration_s=5.0, seed=7)
        assert serve_digest(base) == serve_digest(
            ServeJob(ServeScenario(), duration_s=5.0, seed=7)
        )
        variants = [
            ServeJob(ServeScenario(routing="rr"), duration_s=5.0, seed=7),
            ServeJob(ServeScenario(), duration_s=6.0, seed=7),
            ServeJob(ServeScenario(), duration_s=5.0, seed=8),
            ServeJob(
                ServeScenario(batching=BatchingConfig(max_batch=4)),
                duration_s=5.0, seed=7,
            ),
            ServeJob(
                ServeScenario(), duration_s=5.0, seed=7,
                fault_plan=FaultPlan(faults=(RankFailure(rank=0, time=1.0),)),
            ),
        ]
        digests = {serve_digest(v) for v in variants}
        assert len(digests) == len(variants)
        assert serve_digest(base) not in digests

    def test_serve_digest_never_aliases_training(self):
        # serving preimages are keyed "serve-point"; the training sweeps
        # use "scaling-point" — plus the v8 salt guards stale v7 caches
        # (v8: hybrid parallel layouts folded into what a cached point
        # contains)
        assert CACHE_VERSION_SALT == "repro-perf-v9"
        from repro.perf.digest import canonical_json

        job = ServeJob(ServeScenario(), duration_s=5.0, seed=7)
        preimage = {
            "kind": "serve-point",
            "scenario": job.scenario,
            "duration_s": job.duration_s,
            "seed": job.seed,
        }
        assert '"serve-point"' in canonical_json(preimage)


# -- chrome trace export -------------------------------------------------------

class TestTraceExport:
    def test_serve_trace_is_valid_chrome_json(self, tmp_path):
        report = simulate_serve(
            ServeScenario(), duration_s=4.0, seed=1, collect_trace=True
        )
        assert report.trace, "collect_trace produced no events"
        doc = chrome_trace(report.trace)
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)
            assert ev["ph"] in ("X", "i")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), report.trace)
        on_disk = json.loads(path.read_text())
        assert len(on_disk["traceEvents"]) == n == len(doc["traceEvents"])

    def test_trace_disabled_by_default(self):
        report = simulate_serve(ServeScenario(), duration_s=2.0, seed=1)
        assert report.trace is None

    def test_hvprof_timeline_export(self):
        from repro.core import MPI_OPT, ScalingStudy, StudyConfig
        from repro.profiling import Hvprof, hvprof_trace_events

        hv = Hvprof()
        ScalingStudy(MPI_OPT, StudyConfig(measure_steps=2)).run_point(
            4, hvprof=hv
        )
        events = hvprof_trace_events(hv)
        assert events
        assert all(ev.pid == "hvprof" for ev in events)


# -- functional serving path ---------------------------------------------------

class TestFunctionalServer:
    def test_served_equals_offline_bitwise(self, tmp_path):
        from repro.models.edsr import EDSR, EDSR_TINY
        from repro.serve import FunctionalServer
        from repro.trainer.checkpoint import save_checkpoint

        model = EDSR(EDSR_TINY, rng=np.random.default_rng(3))
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        server = FunctionalServer.from_checkpoint(path, EDSR_TINY)

        rng = np.random.default_rng(0)
        images = [
            rng.standard_normal((3, 12, 12)).astype(np.float32)
            for _ in range(3)
        ] + [
            rng.standard_normal((3, 16, 16)).astype(np.float32)
            for _ in range(2)
        ]
        outputs = server.serve_batch(images)
        for image, out in zip(images, outputs):
            reference = server.offline(image)
            assert out.shape == reference.shape
            assert np.array_equal(out, reference)  # bit-identical
        assert server.batches_served == 1
        assert server.requests_served == 5

    def test_checkpoint_restores_weights_exactly(self, tmp_path):
        from repro.models.edsr import EDSR, EDSR_TINY
        from repro.serve import FunctionalServer
        from repro.trainer.checkpoint import save_checkpoint

        model = EDSR(EDSR_TINY, rng=np.random.default_rng(8))
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        server = FunctionalServer.from_checkpoint(path, EDSR_TINY)
        image = np.random.default_rng(1).standard_normal((3, 10, 10)).astype(
            np.float32
        )
        assert np.array_equal(server.offline(image), model.upscale(image))

    def test_rejects_bad_batches(self):
        from repro.models.edsr import EDSR, EDSR_TINY
        from repro.serve import FunctionalServer

        server = FunctionalServer(EDSR(EDSR_TINY))
        with pytest.raises(ConfigError):
            server.serve_batch([])
        with pytest.raises(ConfigError):
            server.serve_batch([np.zeros((3, 8))])


# -- CLI -----------------------------------------------------------------------

class TestServeCLI:
    def test_single_policy_run(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--policy", "jsq", "--duration", "5",
                     "--seed", "7", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "policy jsq" in out
        assert "SLO attainment" in out

    def test_all_policies_with_failure_report_and_trace(self, capsys, tmp_path):
        from repro.__main__ import main

        report_path = str(tmp_path / "serve.json")
        trace_path = str(tmp_path / "trace.json")
        assert main([
            "serve", "--policy", "all", "--duration", "5", "--seed", "7",
            "--fail", "0@2.0", "--no-cache", "--report", report_path,
            "--trace", trace_path,
        ]) == 0
        payload = json.loads(open(report_path).read())
        assert payload["kind"] == "serve-sweep"
        assert [r["policy"] for r in payload["reports"]] == list(POLICY_NAMES)
        for r in payload["reports"]:
            s = r["summary"]
            assert s["arrived"] == s["completed"] + s["shed"]
        trace = json.loads(open(trace_path).read())
        assert trace["traceEvents"]

    def test_cli_determinism(self, capsys, tmp_path):
        from repro.__main__ import main

        paths = [str(tmp_path / f"r{i}.json") for i in range(2)]
        for path in paths:
            assert main(["serve", "--policy", "jsq", "--duration", "10",
                         "--seed", "7", "--no-cache", "--report", path]) == 0
        capsys.readouterr()
        assert open(paths[0]).read() == open(paths[1]).read()
