"""Gradient compression & communication reduction (``repro.compression``).

Pins the suite's three contracts end to end:

* **Numerics** — fp16/bf16 round-trips stay inside the dtype's ULP
  bounds (hypothesis-checked over the representable range), bf16
  truncation is idempotent and lands on the bf16 grid, and top-k error
  feedback never loses gradient mass: over *any* step sequence, what was
  sent plus what remains in the residual equals the sum of the inputs,
  exactly.
* **Wire pricing** — compressed payloads are priced at their real byte
  count everywhere on the allreduce path: ``dtype_bytes`` is threaded
  explicitly (no hard-coded ``/ 4`` survives, asserted by a source
  scan), fp16 halves the simulated allreduce time, and the engine's
  per-message records show exactly half the bytes of the fp32 run.
* **Integration** — the functional engine's compressed averages match
  the reference computation bit for bit, local-SGD replicas re-sync
  exactly on period boundaries, the periodic steady-state detector
  replays the H-step cadence, the compression autotuner emits a
  digest-keyed advisory table, and study digests keep compressed
  configurations apart (salt v6).
"""

import re
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    Bf16Compressor,
    CompressionConfig,
    Fp16Compressor,
    IdentityCompressor,
    TOPK_INDEX_BYTES,
    TOPK_VALUE_BYTES,
    build_compressor,
    sparse_wire_nbytes,
    sparsify_with_feedback,
    top_k_count,
    top_k_indices,
)
from repro.comm.cost import FLOAT32_BYTES, reduce_time
from repro.comm.tuning import TuningConfig, tune_compression_table
from repro.core.scenarios import scenario_by_name
from repro.core.study import ScalingStudy, StudyConfig
from repro.cuda.kernels import KernelCostModel
from repro.errors import ConfigError
from repro.hardware import LASSEN, Cluster
from repro.hardware.specs import V100_16GB
from repro.horovod import HorovodConfig, HorovodEngine
from repro.horovod.fusion import PendingTensor
from repro.mpi import MpiWorld, Mv2Config, WorldSpec
from repro.mpi.comm import GpuBuffer
from repro.mpi.datatypes import Datatype
from repro.mpi.process import SingletonDevicePolicy
from repro.perf.digest import CACHE_VERSION_SALT
from repro.perf.steady import PeriodicSteadyState
from repro.sim import Environment
from repro.utils.units import KIB, MIB

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_world(ranks, *, nodes=None):
    cluster = Cluster(Environment(), LASSEN,
                      num_nodes=nodes or max(1, (ranks + 3) // 4))
    spec = WorldSpec(num_ranks=ranks, policy=SingletonDevicePolicy(),
                     config=Mv2Config(mv2_visible_devices="all"))
    return MpiWorld(cluster, spec)


def make_engine(ranks=2, compression="none"):
    world = make_world(ranks)
    return HorovodEngine(
        world.communicator(), HorovodConfig(cycle_time_s=2e-3),
        compression=CompressionConfig.parse(compression),
    )


def run_point(num_gpus, **cfg):
    study = ScalingStudy(scenario_by_name("MPI-Opt"),
                         StudyConfig(engine_mode="fast", **cfg))
    return study.run_point(num_gpus)


class TestConfig:
    @pytest.mark.parametrize("spec,mode,ratio", [
        ("none", "none", 0.01),
        ("", "none", 0.01),
        ("fp16", "fp16", 0.01),
        ("bf16", "bf16", 0.01),
        ("topk", "topk", 0.01),
        ("topk:0.05", "topk", 0.05),
        ("TopK:0.05", "topk", 0.05),
        ("topk:1", "topk", 1.0),
    ])
    def test_parse(self, spec, mode, ratio):
        cfg = CompressionConfig.parse(spec)
        assert (cfg.mode, cfg.topk_ratio) == (mode, ratio)

    @pytest.mark.parametrize("spec", ["int8", "topk:zero", "topk:0",
                                      "topk:1.5", "fp16:0.5x"])
    def test_bad_spec_rejected(self, spec):
        with pytest.raises(ConfigError):
            CompressionConfig.parse(spec)

    def test_spec_round_trips(self):
        for spec in ("none", "fp16", "bf16", "topk:0.01", "topk:0.25"):
            cfg = CompressionConfig.parse(spec)
            assert CompressionConfig.parse(cfg.spec()) == cfg

    def test_build_compressor(self):
        assert isinstance(
            build_compressor(CompressionConfig.parse("none")),
            IdentityCompressor)
        assert isinstance(
            build_compressor(CompressionConfig.parse("fp16")), Fp16Compressor)
        assert isinstance(
            build_compressor(CompressionConfig.parse("bf16")), Bf16Compressor)
        # sparse selection is per-tensor in the engine; the dense fallback
        # (local-SGD parameter sync under topk) is identity
        assert isinstance(
            build_compressor(CompressionConfig.parse("topk:0.01")),
            IdentityCompressor)

    def test_study_config_validates(self):
        with pytest.raises(ConfigError):
            StudyConfig(compression="int8")
        with pytest.raises(ConfigError):
            StudyConfig(local_sgd_h=0)


finite_fp16_range = st.floats(
    min_value=-60000.0, max_value=60000.0, allow_nan=False,
    allow_infinity=False, width=32)
finite_bf16_range = st.floats(
    min_value=-(2.0**100), max_value=2.0**100, allow_nan=False,
    allow_infinity=False, width=32)


class TestDenseCompressors:
    @given(st.lists(finite_fp16_range, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fp16_round_trip_ulp_bound(self, values):
        x = np.array(values, dtype=np.float32)
        comp = Fp16Compressor()
        rt = comp.decompress(comp.compress(x))
        assert rt.dtype == np.float32
        # half precision: 10 mantissa bits -> rel error <= 2^-10 for
        # normals, plus the smallest subnormal step for values near zero
        assert np.all(np.abs(rt - x) <= 2.0**-10 * np.abs(x) + 2.0**-24)

    @given(st.lists(finite_bf16_range, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_bf16_round_trip_ulp_bound(self, values):
        x = np.array(values, dtype=np.float32)
        comp = Bf16Compressor()
        rt = comp.decompress(comp.compress(x))
        assert rt.dtype == np.float32
        # bfloat16: 8 mantissa bits (7 stored + implicit) -> rel <= 2^-8
        # for normals; fp32 subnormals lose the 16 truncated mantissa
        # bits absolutely (<= 2^16 ulp of 2^-149)
        assert np.all(np.abs(rt - x) <= 2.0**-8 * np.abs(x) + 2.0**-133)

    @given(st.lists(finite_bf16_range, min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_bf16_idempotent_on_grid(self, values):
        x = np.array(values, dtype=np.float32)
        comp = Bf16Compressor()
        once = comp.compress(x)
        # the result lives on the bf16 grid: low 16 mantissa bits cleared,
        # so a second truncation is a bitwise no-op
        assert np.all(once.view(np.uint32) & np.uint32(0xFFFF) == 0)
        assert np.array_equal(
            comp.compress(once).view(np.uint32), once.view(np.uint32))

    def test_wire_nbytes_halves(self):
        for comp in (Fp16Compressor(), Bf16Compressor()):
            assert comp.wire_nbytes(1024) == 512
        assert IdentityCompressor().wire_nbytes(1024) == 1024


class TestTopK:
    def test_top_k_count_bounds(self):
        assert top_k_count(0, 0.01) == 0
        assert top_k_count(10, 0.01) == 1     # never silently drop a tensor
        assert top_k_count(1000, 0.01) == 10
        assert top_k_count(1000, 1.0) == 1000

    def test_top_k_indices_deterministic_tie_break(self):
        flat = np.array([1.0, -2.0, 2.0, 0.5], dtype=np.float32)
        # |-2| == |2|: stable sort keeps the lower index first
        assert top_k_indices(flat, 1).tolist() == [1]
        assert top_k_indices(flat, 2).tolist() == [1, 2]

    def test_sparse_wire_nbytes(self):
        assert TOPK_INDEX_BYTES + TOPK_VALUE_BYTES == 8
        assert sparse_wire_nbytes(10) == 80

    @given(st.lists(
        st.lists(st.integers(min_value=-100, max_value=100),
                 min_size=8, max_size=8),
        min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_error_feedback_conserves_gradient_mass(self, grad_rows):
        """Over any step sequence: sent mass + residual == total gradient
        mass, element for element, exactly (integer-valued floats make
        every add exact, so the invariant holds with == not isclose)."""
        residual = np.zeros(8, dtype=np.float32)
        sent_total = np.zeros(8, dtype=np.float32)
        grand_total = np.zeros(8, dtype=np.float32)
        for row in grad_rows:
            grad = np.array(row, dtype=np.float32)
            grand_total += grad
            idx, values = sparsify_with_feedback(grad, residual, k=3)
            assert len(idx) == 3
            assert np.all(np.diff(idx) > 0)  # ascending, unique
            sent_total[idx] += values
        assert np.array_equal(sent_total + residual, grand_total)

    def test_selection_includes_deferred_mass(self):
        """A coordinate suppressed this step comes back via the residual
        and wins selection once its accumulated mass dominates."""
        residual = np.zeros(4, dtype=np.float32)
        grad = np.array([1.0, 3.0, 0.0, 0.0], dtype=np.float32)
        idx, _ = sparsify_with_feedback(grad, residual, k=1)
        assert idx.tolist() == [1]
        assert residual.tolist() == [1.0, 0.0, 0.0, 0.0]
        idx, values = sparsify_with_feedback(
            np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32), residual, k=1)
        assert idx.tolist() == [0]
        assert values.tolist() == [2.0]  # 1 deferred + 1 fresh


class TestDtypePricing:
    """Satellite: explicit dtype_bytes on the whole allreduce path."""

    #: every module on the allreduce costing path
    PRICED_FILES = (
        "comm/cost.py",
        "mpi/collectives/base.py",
        "mpi/collectives/allreduce.py",
        "mpi/collectives/allgather.py",
        "cuda/kernels.py",
        "hardware/cluster.py",
    )

    def test_float32_bytes_is_the_named_constant(self):
        assert FLOAT32_BYTES == 4
        assert Datatype.FLOAT32.size == 4
        assert Datatype.FLOAT16.size == 2

    def test_no_hardcoded_element_size_on_allreduce_path(self):
        """No ``nbytes / 4`` (or ``// 4``) survives: element counts must
        go through ``reduce_elements(nbytes, dtype_bytes)``."""
        pattern = re.compile(r"nbytes\s*//?\s*4\b")
        for rel in self.PRICED_FILES:
            text = (SRC / rel).read_text()
            assert not pattern.search(text), f"hard-coded /4 in {rel}"

    def test_host_reduce_scales_with_dtype_bytes(self):
        # same element count -> same cost, regardless of byte width
        assert reduce_time(1024, 4, reduce_flops=1e9) == reduce_time(
            512, 2, reduce_flops=1e9)

    def test_device_reduce_cheaper_at_half_width(self):
        model = KernelCostModel(V100_16GB)
        assert model.device_reduce_time(16 * MIB // 2, 2) <= \
            model.device_reduce_time(16 * MIB, 4)

    def test_fp16_allreduce_faster_than_fp32(self):
        # pin the algorithm and stay large enough that both chunk widths
        # ride CUDA IPC: halving the bytes can legitimately be *slower*
        # when the smaller chunks fall under the IPC threshold into host
        # staging with CPU-side reductions — that protocol cliff is the
        # autotuner's problem, not a pricing bug
        comm = make_world(4).communicator()
        n = 64 * MIB
        fp32 = comm.allreduce(
            [GpuBuffer.virtual(n) for _ in range(4)], algorithm="ring").time
        fp16 = comm.allreduce(
            [GpuBuffer.virtual(n // 2, Datatype.FLOAT16) for _ in range(4)],
            algorithm="ring").time
        assert fp16 < fp32


class TestEngineWire:
    """Compression changes the bytes the simulated fabric carries."""

    def test_fp16_halves_every_message(self):
        dense = run_point(8)
        fp16 = run_point(8, compression="fp16")
        assert len(fp16.message_sizes) == len(dense.message_sizes)
        assert fp16.message_sizes == [n // 2 for n in dense.message_sizes]

    def test_bf16_halves_every_message(self):
        dense = run_point(8)
        bf16 = run_point(8, compression="bf16")
        assert bf16.message_sizes == [n // 2 for n in dense.message_sizes]

    def test_topk_shrinks_wire_bytes(self):
        dense = run_point(8)
        sparse = run_point(8, compression="topk:0.01")
        # ~1% of elements at 8 bytes each vs 4 -> ~2% of dense bytes,
        # plus the min-1-element floor on tiny tensors
        assert sum(sparse.message_sizes) < sum(dense.message_sizes) / 40
        assert all(n % sparse_wire_nbytes(1) == 0
                   for n in sparse.message_sizes)

    def test_local_sgd_reduces_comm_steps(self):
        dense = run_point(8, warmup_steps=1, measure_steps=8)
        local = run_point(8, warmup_steps=1, measure_steps=8, local_sgd_h=4)
        # one parameter sync per 4 steps instead of a gradient
        # allreduce every step
        assert len(local.message_sizes) < len(dense.message_sizes)
        assert local.images_per_second > dense.images_per_second


class TestFunctionalParity:
    """The functional numpy path computes the compressed average the
    reference formula predicts — bit for bit."""

    def _run(self, compression, g0, g1):
        engine = make_engine(2, compression)
        data = [g0.copy(), g1.copy()]
        stream = [PendingTensor("grad", nbytes=g0.nbytes, ready_time=0.0,
                                data=data)]
        engine.run_step(stream, backward_time=0.0)
        assert np.array_equal(data[0], data[1])  # SPMD invariant
        assert data[0].dtype == np.float32
        return data[0]

    @pytest.fixture()
    def grads(self):
        rng = np.random.default_rng(3)
        shape = (64,)
        return (rng.normal(size=shape).astype(np.float32),
                rng.normal(size=shape).astype(np.float32))

    def test_dense_average(self, grads):
        g0, g1 = grads
        out = self._run("none", g0, g1)
        assert np.array_equal(out, (g0 + g1) / 2)

    def test_fp16_average(self, grads):
        g0, g1 = grads
        out = self._run("fp16", g0, g1)
        expected = ((g0.astype(np.float16) + g1.astype(np.float16)) / 2
                    ).astype(np.float32)
        assert np.array_equal(out, expected)

    def test_bf16_average(self, grads):
        g0, g1 = grads
        comp = Bf16Compressor()
        out = self._run("bf16", g0, g1)
        expected = comp.compress(
            (comp.compress(g0) + comp.compress(g1)) / 2)
        assert np.array_equal(out, expected)

    def test_topk_full_ratio_is_exact(self, grads):
        g0, g1 = grads
        out = self._run("topk:1", g0, g1)
        assert np.array_equal(out, (g0 + g1) / 2)

    def test_topk_partial_ratio_tracks_dense(self, grads):
        g0, g1 = grads
        engine = make_engine(2, "topk:0.25")
        data = [g0.copy(), g1.copy()]
        stream = [PendingTensor("grad", nbytes=g0.nbytes, ready_time=0.0,
                                data=data)]
        engine.run_step(stream, backward_time=0.0)
        out = data[0]
        # sparse step only transmits selected coordinates; the rest stay 0
        # this step (their mass is deferred into per-rank residuals)
        k = top_k_count(g0.size, 0.25)
        nonzero = out != 0
        assert 0 < nonzero.sum() <= 2 * k
        # both ranks accumulated error feedback for the next step
        assert {key[1] for key in engine._topk_residuals} == {"grad"}
        assert len(engine._topk_residuals) == 2
        assert all(np.any(r != 0) for r in engine._topk_residuals.values())


class TestLocalSgdTrainer:
    def _trainer(self, h, ranks=2):
        from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
        from repro.models import EDSR, EDSR_TINY
        from repro.trainer import DistributedTrainer

        engine = make_engine(ranks)
        dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                            split="train",
                            degradation=DegradationConfig(scale=2))
        return DistributedTrainer(
            lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
            engine, dataset, batch_per_rank=1, lr_patch=8, local_sgd_h=h)

    def test_replicas_sync_on_period_boundary(self):
        trainer = self._trainer(h=2)
        trainer.train(4)  # steps 0..3; step 3 is a sync step
        assert trainer.replicas_in_sync()

    def test_replicas_diverge_mid_period(self):
        trainer = self._trainer(h=2)
        trainer.train(3)  # last step is a local step
        assert not trainer.replicas_in_sync()

    def test_h1_is_synchronous_sgd(self):
        trainer = self._trainer(h=1)
        trainer.train(3)
        assert trainer.replicas_in_sync()

    def test_invalid_h_rejected(self):
        with pytest.raises(ConfigError):
            self._trainer(h=0)


class TestPeriodicSteadyState:
    def test_requires_positive_period(self):
        with pytest.raises(ConfigError):
            PeriodicSteadyState(0)

    def _converge(self, det, phases=(1.0, 2.0, 3.0), periods=3):
        for _ in range(periods):
            for phase, value in enumerate(phases):
                det.observe(value, phase)

    def test_converges_only_on_period_boundary(self):
        det = PeriodicSteadyState(3, window=3)
        self._converge(det)
        assert det.converged()
        det.observe(1.0, 0)  # mid-period again
        assert not det.converged()

    def test_leading_partial_period_ignored(self):
        det = PeriodicSteadyState(3, window=2)
        # run joins mid-period: phases 1, 2 arrive before any phase 0
        det.observe(99.0, 1)
        det.observe(99.0, 2)
        self._converge(det, periods=2)
        assert det.converged()
        assert det.phase_value(1) == 2.0  # partial-period 99s never counted

    def test_extrapolate_cycles_phases(self):
        det = PeriodicSteadyState(3, window=3)
        self._converge(det)
        assert det.extrapolate(1, 5) == [2.0, 3.0, 1.0, 2.0, 3.0]
        assert det.phase_value(4) == 2.0

    def test_phase_value_before_convergence_raises(self):
        det = PeriodicSteadyState(3)
        with pytest.raises(ConfigError):
            det.phase_value(0)

    def test_rearm_resets_everything(self):
        det = PeriodicSteadyState(3, window=2)
        self._converge(det)
        assert det.converged()
        det.rearm()
        assert not det.converged()
        # post-rearm samples wait for a fresh phase-0 boundary again
        det.observe(7.0, 2)
        self._converge(det, phases=(4.0, 5.0, 6.0), periods=2)
        assert det.converged()
        assert det.phase_value(2) == 6.0


class TestCompressionTuner:
    CFG = TuningConfig(byte_points=(4 * KIB, 1 * MIB, 16 * MIB),
                       rank_counts=(4, 16))

    def test_table_shape_and_backend_key(self):
        table = tune_compression_table(self.CFG)
        assert table.backend == "mpi+compression"
        assert table.source == "tuned"
        modes = {m for row in table.algorithms for m in row}
        assert modes <= {"none", "fp16", "topk:0.01"}
        assert table.extra["topk_ratio"] == 0.01

    def test_memoized_and_deterministic(self):
        assert tune_compression_table(self.CFG) is tune_compression_table(
            self.CFG)

    def test_cells_are_argmin_of_reported_timings(self):
        table = tune_compression_table(self.CFG)
        for i, nbytes in enumerate(self.CFG.byte_points):
            for j, ranks in enumerate(self.CFG.rank_counts):
                cell = table.extra["timings"][f"{nbytes}x{ranks}"]
                assert table.algorithms[i][j] == min(cell, key=cell.get)

    def test_every_cell_times_all_candidates(self):
        table = tune_compression_table(self.CFG)
        assert len(table.extra["timings"]) == (
            len(self.CFG.byte_points) * len(self.CFG.rank_counts))
        for cell in table.extra["timings"].values():
            assert set(cell) == {"none", "fp16", "topk:0.01"}
            assert all(t > 0 for t in cell.values())


class TestDigests:
    def test_cache_salt_bumped_for_compression(self):
        assert CACHE_VERSION_SALT == "repro-perf-v9"

    def test_compression_folds_into_point_digest(self):
        scenario = scenario_by_name("MPI-Opt")
        base = ScalingStudy(scenario, StudyConfig()).point_digest(16)
        fp16 = ScalingStudy(
            scenario, StudyConfig(compression="fp16")).point_digest(16)
        local = ScalingStudy(
            scenario, StudyConfig(local_sgd_h=2)).point_digest(16)
        assert len({base, fp16, local}) == 3
