"""Tests for environment-variable config surfaces and scenario plumbing."""

import pytest

from repro.errors import ConfigError, NcclError
from repro.hardware import LASSEN, Cluster
from repro.horovod.env import HorovodConfig
from repro.mpi.env import Mv2Config
from repro.nccl.protocol import DEFAULT_PROTOCOL
from repro.nccl.rings import ring_bandwidth
from repro.sim import Environment
from repro.utils.units import KIB, MIB


class TestMv2EnvParsing:
    def test_full_environment(self):
        config = Mv2Config.from_env(
            {
                "MV2_IBA_EAGER_THRESHOLD": "128K",
                "MV2_CUDA_IPC": "0",
                "MV2_VISIBLE_DEVICES": "all",
                "MV2_USE_REGISTRATION_CACHE": "1",
                "MV2_USE_GPUDIRECT": "off",
                "MV2_ALLREDUCE_ALGORITHM": "hierarchical",
            }
        )
        assert config.eager_threshold == 128 * KIB
        assert config.cuda_ipc_enabled is False
        assert config.mv2_visible_devices == "all"
        assert config.registration_cache is True
        assert config.gdr_enabled is False
        assert config.allreduce_algorithm == "hierarchical"

    def test_empty_environment_gives_defaults(self):
        config = Mv2Config.from_env({})
        assert config == Mv2Config()

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            Mv2Config.from_env({"MV2_ALLREDUCE_ALGORITHM": "magic"})

    def test_describe_mentions_key_knobs(self):
        text = Mv2Config(mv2_visible_devices="all").describe()
        assert "mv2_visible=all" in text
        assert "regcache=off" in text

    def test_replace_is_functional(self):
        base = Mv2Config()
        changed = base.replace(registration_cache=True)
        assert changed.registration_cache and not base.registration_cache


class TestHorovodEnvParsing:
    def test_parses_horovod_variables(self):
        config = HorovodConfig.from_env(
            {
                "HOROVOD_FUSION_THRESHOLD": str(32 * MIB),
                "HOROVOD_CYCLE_TIME": "10",  # milliseconds, like Horovod
                "HOROVOD_GPU_ALLREDUCE": "NCCL",
            }
        )
        assert config.fusion_threshold == 32 * MIB
        assert config.cycle_time_s == pytest.approx(10e-3)
        assert config.backend == "nccl"

    def test_defaults_match_horovod_0_19(self):
        config = HorovodConfig()
        assert config.fusion_threshold == 64 * MIB
        assert config.cycle_time_s == pytest.approx(3.5e-3)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigError):
            HorovodConfig(backend="gloo")

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            HorovodConfig(fusion_threshold=-1)


class TestNcclChannels:
    def _cluster(self, nodes=1):
        return Cluster(Environment(), LASSEN, num_nodes=nodes)

    def test_channels_scale_intra_node_bandwidth(self):
        cluster = self._cluster()
        one = ring_bandwidth(cluster, [0, 1, 2, 3], DEFAULT_PROTOCOL, channels=1)
        two = ring_bandwidth(cluster, [0, 1, 2, 3], DEFAULT_PROTOCOL, channels=2)
        assert two == pytest.approx(2 * one)

    def test_channels_capped_at_brick_count(self):
        cluster = self._cluster()
        three = ring_bandwidth(cluster, [0, 1, 2, 3], DEFAULT_PROTOCOL, channels=3)
        eight = ring_bandwidth(cluster, [0, 1, 2, 3], DEFAULT_PROTOCOL, channels=8)
        assert eight == pytest.approx(three)

    def test_channels_do_not_help_ib_bound_rings(self):
        cluster = self._cluster(nodes=2)
        one = ring_bandwidth(cluster, list(range(8)), DEFAULT_PROTOCOL, channels=1)
        four = ring_bandwidth(cluster, list(range(8)), DEFAULT_PROTOCOL, channels=4)
        assert four == pytest.approx(one)  # single HCA per node

    def test_invalid_channels_rejected(self):
        cluster = self._cluster()
        with pytest.raises(NcclError):
            ring_bandwidth(cluster, [0, 1], DEFAULT_PROTOCOL, channels=0)
