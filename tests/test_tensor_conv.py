"""Gradient and semantics tests for conv2d, pooling, padding, pixel shuffle."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, functional as F

RNG = np.random.default_rng(7)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat_x, flat_g = x.reshape(-1), grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = fn(x.astype(np.float32))
        flat_x[i] = orig - eps
        minus = fn(x.astype(np.float32))
        flat_x[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestConv2d:
    def test_forward_matches_direct_convolution(self):
        x = RNG.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = RNG.standard_normal((3, 2, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), padding=0).numpy()
        assert out.shape == (1, 3, 3, 3)
        # direct computation for one output element
        expected = (x[0, :, 1:4, 2:5] * w[1]).sum()
        assert out[0, 1, 1, 2] == pytest.approx(expected, rel=1e-4)

    def test_same_padding_preserves_spatial_dims(self):
        x = Tensor(RNG.standard_normal((2, 4, 8, 8)).astype(np.float32))
        w = Tensor(RNG.standard_normal((4, 4, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, padding=1)
        assert out.shape == (2, 4, 8, 8)

    def test_stride_reduces_output(self):
        x = Tensor(RNG.standard_normal((1, 1, 8, 8)).astype(np.float32))
        w = Tensor(RNG.standard_normal((1, 1, 2, 2)).astype(np.float32))
        out = F.conv2d(x, w, stride=2)
        assert out.shape == (1, 1, 4, 4)

    def test_weight_gradient_numerically(self):
        x = RNG.standard_normal((2, 2, 5, 5)).astype(np.float32)
        w0 = RNG.standard_normal((3, 2, 3, 3)).astype(np.float32)
        w = Tensor(w0, requires_grad=True)
        F.conv2d(Tensor(x), w, padding=1).sum().backward()

        def fn(wd):
            return F.conv2d(Tensor(x), Tensor(wd), padding=1).numpy().sum()

        expected = numeric_grad(fn, w0)
        np.testing.assert_allclose(w.grad, expected, atol=2e-2, rtol=2e-2)

    def test_input_gradient_numerically(self):
        x0 = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = RNG.standard_normal((2, 2, 3, 3)).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        F.conv2d(x, Tensor(w), padding=1).sum().backward()

        def fn(xd):
            return F.conv2d(Tensor(xd), Tensor(w), padding=1).numpy().sum()

        expected = numeric_grad(fn, x0)
        np.testing.assert_allclose(x.grad, expected, atol=2e-2, rtol=2e-2)

    def test_bias_gradient(self):
        x = Tensor(RNG.standard_normal((2, 1, 4, 4)).astype(np.float32))
        w = Tensor(RNG.standard_normal((3, 1, 3, 3)).astype(np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        np.testing.assert_allclose(b.grad, 2 * 4 * 4)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            F.conv2d(
                Tensor(np.ones((1, 3, 4, 4), dtype=np.float32)),
                Tensor(np.ones((1, 2, 3, 3), dtype=np.float32)),
            )

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(ShapeError):
            F.conv2d(
                Tensor(np.ones((1, 1, 2, 2), dtype=np.float32)),
                Tensor(np.ones((1, 1, 5, 5), dtype=np.float32)),
            )


class TestPixelShuffle:
    def test_rearrangement_semantics(self):
        # channel c*r^2 layout: out[y*r+dy, x*r+dx] = in[c*r^2 slot (dy*r+dx)]
        x = np.arange(1 * 4 * 2 * 2, dtype=np.float32).reshape(1, 4, 2, 2)
        out = F.pixel_shuffle(Tensor(x), 2).numpy()
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == x[0, 0, 0, 0]
        assert out[0, 0, 0, 1] == x[0, 1, 0, 0]
        assert out[0, 0, 1, 0] == x[0, 2, 0, 0]
        assert out[0, 0, 1, 1] == x[0, 3, 0, 0]

    def test_gradient_is_permutation(self):
        x0 = RNG.standard_normal((2, 8, 3, 3)).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        weights = RNG.standard_normal((2, 2, 6, 6)).astype(np.float32)
        (F.pixel_shuffle(x, 2) * Tensor(weights)).sum().backward()

        def fn(xd):
            return (F.pixel_shuffle(Tensor(xd), 2) * Tensor(weights)).numpy().sum()

        expected = numeric_grad(fn, x0)
        np.testing.assert_allclose(x.grad, expected, atol=1e-2)

    def test_bad_channel_count_rejected(self):
        with pytest.raises(ShapeError):
            F.pixel_shuffle(Tensor(np.ones((1, 3, 2, 2), dtype=np.float32)), 2)

    def test_roundtrip_with_inverse(self):
        x = RNG.standard_normal((1, 4, 3, 3)).astype(np.float32)
        up = F.pixel_shuffle(Tensor(x), 2).numpy()
        # inverse rearrangement
        recovered = (
            up.reshape(1, 1, 3, 2, 3, 2).transpose(0, 1, 3, 5, 2, 4).reshape(1, 4, 3, 3)
        )
        np.testing.assert_allclose(recovered, x)


class TestPoolingAndPad:
    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self):
        x0 = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, 0.25)

    def test_max_pool_forward_and_gradient(self):
        x0 = np.array(
            [[[[1, 2, 0, 1], [3, 4, 1, 0], [0, 1, 9, 2], [1, 0, 3, 4]]]],
            dtype=np.float32,
        )
        x = Tensor(x0, requires_grad=True)
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[4, 1], [1, 9]])
        out.sum().backward()
        assert x.grad[0, 0, 1, 1] == 1.0  # the 4
        assert x.grad[0, 0, 2, 2] == 1.0  # the 9
        assert x.grad.sum() == 4.0

    def test_max_pool_gradient_numerically(self):
        x0 = RNG.standard_normal((2, 2, 6, 6)).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        weights = RNG.standard_normal((2, 2, 3, 3)).astype(np.float32)
        (F.max_pool2d(x, 2) * Tensor(weights)).sum().backward()

        def fn(xd):
            return (F.max_pool2d(Tensor(xd), 2) * Tensor(weights)).numpy().sum()

        expected = numeric_grad(fn, x0)
        np.testing.assert_allclose(x.grad, expected, atol=2e-2)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), 1.0)

    def test_pad2d_forward_backward(self):
        x0 = RNG.standard_normal((1, 1, 3, 3)).astype(np.float32)
        x = Tensor(x0, requires_grad=True)
        out = F.pad2d(x, 2)
        assert out.shape == (1, 1, 7, 7)
        np.testing.assert_allclose(out.numpy()[0, 0, :2, :], 0.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)

    def test_pad_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 3, 3), dtype=np.float32))
        assert F.pad2d(x, 0) is x
