"""Chaos suite for the deterministic fault-injection subsystem.

Exercises every injector point: compute stragglers/jitter, link
degradation and flapping, message drop/delay with retry + backoff,
and rank failure under both resilience policies — plus the two core
guarantees (zero-fault identity, seed-reproducibility).
"""

import json

import numpy as np
import pytest

from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.errors import (
    ConfigError,
    DeadlockError,
    FaultPlanError,
    MpiTimeoutError,
    RankFailedError,
)
from repro.faults import (
    CorruptionFault,
    FaultInjector,
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    NodeFailure,
    PartitionFault,
    RankFailure,
    RetryPolicy,
    StragglerFault,
    SwitchFailure,
    Topology,
    lower_domain_faults,
    window_active,
)
from repro.hardware import LASSEN, Cluster
from repro.horovod import (
    FaultTolerantCoordinator,
    HorovodConfig,
    HorovodEngine,
    ResiliencePolicy,
)
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, Mv2Config, WorldSpec, build_world
from repro.mpi.p2p import P2PFabric
from repro.mpi.process import SingletonDevicePolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.trainer import DistributedTrainer


def make_fabric(plan=None, *, retry=None, num_nodes=1, topology=None):
    """P2P fabric with an optional fault plan wired into the transport."""
    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=num_nodes)
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=cluster.num_gpus, policy=SingletonDevicePolicy(),
                     config=config)
    ranks = build_world(cluster, spec)
    injector = (
        FaultInjector(plan, topology=topology) if plan is not None else None
    )
    transport = TransportModel(cluster, config, ranks, faults=injector,
                               retry=retry)
    return env, P2PFabric(transport), injector


def make_trainer(plan, *, ranks=4, steps_policy="shrink", detect=0.05):
    """Small distributed EDSR trainer with an optional fault plan."""
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, (ranks + 3) // 4))
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=ranks, policy=SingletonDevicePolicy(),
                     config=config)
    injector = FaultInjector(plan) if plan is not None else None
    world = MpiWorld(cluster, spec, faults=injector)
    engine = HorovodEngine(world.communicator(), HorovodConfig(cycle_time_s=2e-3))
    dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                        split="train", degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
        engine,
        dataset,
        batch_per_rank=1,
        lr_patch=8,
        faults=injector,
        resilience=steps_policy,
        detect_timeout_s=detect,
    )
    return trainer, injector


class TestFaultPlan:
    def test_rejects_speedup_straggler(self):
        with pytest.raises(FaultPlanError):
            StragglerFault(rank=0, factor=0.5)

    def test_rejects_out_of_range_drop_prob(self):
        with pytest.raises(FaultPlanError):
            MessageFault(drop_prob=1.5)

    def test_rejects_link_fault_that_degrades_nothing(self):
        with pytest.raises(FaultPlanError):
            LinkFault(kind="ib")

    def test_rejects_message_fault_that_does_nothing(self):
        with pytest.raises(FaultPlanError):
            MessageFault(src=0, dst=1)

    def test_json_roundtrip_preserves_plan(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                StragglerFault(rank=1, factor=2.0, start=0.1, duration=1.0),
                JitterFault(sigma=0.1),
                LinkFault(kind="ib", bandwidth_factor=0.25, flap_period_s=0.5),
                MessageFault(src=0, dst=3, drop_prob=0.5, delay_s=1e-4),
                RankFailure(rank=2, time=3.0),
            ),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        # canonical encoding: a re-dump is byte-identical
        assert restored.to_json() == plan.to_json()
        assert json.loads(plan.to_json())["seed"] == 7

    def test_of_type_and_failures(self):
        plan = FaultPlan(faults=(RankFailure(rank=3, time=1.0),
                                 StragglerFault(rank=0, factor=1.5)))
        assert len(plan.of_type(StragglerFault)) == 1
        assert [f.rank for f in plan.failures] == [3]


class TestComputeFaults:
    def test_straggler_window_on_off(self):
        plan = FaultPlan(faults=(
            StragglerFault(rank=2, factor=1.5, start=1.0, duration=2.0),))
        inj = FaultInjector(plan)
        assert inj.compute_factor(2, 0.5) == 1.0   # before the window
        assert inj.compute_factor(2, 1.5) == 1.5   # inside
        assert inj.compute_factor(2, 3.5) == 1.0   # recovered
        assert inj.compute_factor(0, 1.5) == 1.0   # other ranks untouched
        kinds = [e.kind for e in inj.trace]
        assert "straggler-on" in kinds and "straggler-off" in kinds

    def test_jitter_monotone_in_sigma(self):
        """For a fixed seed the jitter draw is shared, so step slowdown is
        monotone in sigma — the chaos knob scales, it doesn't reshuffle."""
        factors = []
        for sigma in (0.0, 0.05, 0.2, 0.8):
            inj = FaultInjector(
                FaultPlan(seed=13, faults=(JitterFault(sigma=sigma),)))
            factors.append(inj.compute_factor(1, 0.0, step=3))
        assert factors == sorted(factors)
        assert factors[0] == 1.0

    def test_straggler_slows_training_steps(self):
        base, _ = make_trainer(FaultPlan(seed=1))
        slow, _ = make_trainer(FaultPlan(seed=1, faults=(
            StragglerFault(rank=0, factor=2.0),)))
        t_base = base.train(steps=2).simulated_step_times
        t_slow = slow.train(steps=2).simulated_step_times
        assert all(s > b for s, b in zip(t_slow, t_base))


class TestLinkFaults:
    def test_degraded_link_slows_transfers(self):
        plan = FaultPlan(faults=(
            LinkFault(kind="ib", bandwidth_factor=0.5, latency_add_s=1e-5),))
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        cluster.apply_fault_injector(FaultInjector(plan))
        healthy = Cluster(Environment(), LASSEN, num_nodes=2)
        a, b = cluster.gpu_ref(0), cluster.gpu_ref(4)  # cross-node: uses IB
        ha, hb = healthy.gpu_ref(0), healthy.gpu_ref(4)
        nbytes = 8 * 2**20
        assert cluster.path_cost(a, b, nbytes) > healthy.path_cost(ha, hb, nbytes)

    def test_flapping_alternates_half_periods(self):
        plan = FaultPlan(faults=(
            LinkFault(kind="ib", bandwidth_factor=0.5, flap_period_s=1.0),))
        inj = FaultInjector(plan)
        degraded, _ = inj.link_state("ib", 0.25)   # first half: down
        healthy, _ = inj.link_state("ib", 0.75)    # second half: restored
        degraded2, _ = inj.link_state("ib", 1.25)  # next cycle: down again
        assert degraded == degraded2 == 0.5
        assert healthy == 1.0
        kinds = [e.kind for e in inj.trace]
        assert "link-degraded" in kinds and "link-restored" in kinds

    def test_unmatched_kind_untouched(self):
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.1),))
        inj = FaultInjector(plan)
        assert inj.link_state("nvlink", 0.0) == (1.0, 0.0)


class TestMessageFaults:
    def test_lossy_link_retries_until_delivered(self):
        """Moderate loss: the retry/backoff loop converges and the message
        lands — chaos degrades timing, not correctness."""
        plan = FaultPlan(seed=3, faults=(
            MessageFault(src=0, dst=1, drop_prob=0.6),))
        env, fabric, inj = make_fabric(
            plan, retry=RetryPolicy(max_retries=20))
        payload = np.arange(32, dtype=np.float32)
        out = np.zeros(32, dtype=np.float32)
        fabric.isend(0, 1, data=payload)
        fabric.irecv(1, source=0, out=out)
        env.run()
        np.testing.assert_array_equal(out, payload)
        assert inj.trace.count("msg-retry") >= 1
        assert inj.trace.count("msg-timeout") == 0

    def test_total_loss_raises_timeout_not_deadlock(self):
        """A dead path must surface a typed error within the retry budget —
        never hang the simulation."""
        plan = FaultPlan(seed=3, faults=(
            MessageFault(src=0, dst=1, drop_prob=1.0),))
        retry = RetryPolicy(max_retries=3, ack_timeout_s=1e-4,
                            base_backoff_s=1e-4)
        env, fabric, inj = make_fabric(plan, retry=retry)
        fabric.isend(0, 1, nbytes=256)
        fabric.irecv(1, source=0, nbytes=256)
        with pytest.raises(MpiTimeoutError):
            env.run()
        assert inj.trace.count("msg-retry") == retry.max_retries
        assert inj.trace.count("msg-timeout") == 1
        # all retries were spent before giving up
        budget = sum(retry.ack_timeout_s + retry.backoff(k)
                     for k in range(1, retry.max_retries + 1))
        assert env.now >= budget

    def test_delay_adds_wire_time(self):
        delay = 0.05
        plan = FaultPlan(faults=(MessageFault(delay_s=delay),))
        env, fabric, _ = make_fabric(plan)
        base_env, base_fabric, _ = make_fabric(None)
        for e, f in ((env, fabric), (base_env, base_fabric)):
            f.isend(0, 1, nbytes=1024)
            f.irecv(1, source=0, nbytes=1024)
            e.run()
        assert env.now >= base_env.now + delay

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_s=1e-4, backoff_factor=2.0)
        waits = [policy.backoff(k) for k in (1, 2, 3)]
        assert waits == [1e-4, 2e-4, 4e-4]


class TestRankFailure:
    def test_shrink_policy_continues_on_survivors(self):
        plan = FaultPlan(faults=(RankFailure(rank=1, time=0.5),))
        trainer, inj = make_trainer(plan)
        result = trainer.train(steps=4)
        assert result.steps == 4
        assert result.world_sizes[0] == 4
        assert result.world_sizes[-1] == 3
        assert trainer.active_ranks == [0, 2, 3]
        assert trainer.replicas_in_sync()
        assert inj.trace.count("ring-shrink") == 1

    def test_abort_policy_raises_typed_error(self):
        plan = FaultPlan(faults=(RankFailure(rank=1, time=0.5),))
        trainer, inj = make_trainer(plan, steps_policy="abort", detect=0.05)
        with pytest.raises(RankFailedError):
            trainer.train(steps=4)
        # detection is stamped within the configured timeout of the poll
        abort = [e for e in inj.trace if e.kind == "abort"]
        failed = [e for e in inj.trace if e.kind == "rank-failed"]
        assert abort and failed
        assert abort[0].time >= failed[0].time

    def test_coordinator_abort_within_timeout(self):
        inj = FaultInjector(FaultPlan(faults=(RankFailure(rank=0, time=1.0),)))
        coord = FaultTolerantCoordinator(
            range(2), policy=ResiliencePolicy.ABORT, detect_timeout_s=0.2,
            injector=inj)
        with pytest.raises(RankFailedError):
            coord.poll(1.0)
        abort = [e for e in inj.trace if e.kind == "abort"]
        assert abort[0].time == pytest.approx(1.2)

    def test_all_ranks_dead_raises(self):
        inj = FaultInjector(FaultPlan(faults=(
            RankFailure(rank=0, time=0.0), RankFailure(rank=1, time=0.0))))
        coord = FaultTolerantCoordinator(range(2), injector=inj)
        with pytest.raises(RankFailedError):
            coord.poll(0.0)


class TestZeroFaultIdentity:
    def test_empty_plan_is_arithmetic_identity(self):
        inj = FaultInjector(FaultPlan(seed=42))
        assert inj.compute_factor(0, 1.0) == 1.0
        assert inj.link_state("ib", 1.0) == (1.0, 0.0)
        verdict = inj.message_verdict(0, 1, 1.0)
        assert not verdict.drop and verdict.delay_s == 0.0
        assert not inj.any_faults
        assert len(inj.trace) == 0

    def test_empty_plan_reproduces_baseline_exactly(self):
        baseline, _ = make_trainer(None)
        zero, _ = make_trainer(FaultPlan(seed=42))
        r_base = baseline.train(steps=2)
        r_zero = zero.train(steps=2)
        assert r_zero.simulated_step_times == r_base.simulated_step_times
        assert r_zero.losses == r_base.losses


class TestDeterminism:
    def test_same_seed_same_run(self):
        """Identical seed + plan: byte-identical trace, identical timing."""
        plan = FaultPlan(seed=9, faults=(
            StragglerFault(rank=1, factor=1.7, duration=1.0),
            JitterFault(sigma=0.1),
            LinkFault(kind="ib", bandwidth_factor=0.5, flap_period_s=0.7),
            RankFailure(rank=3, time=1.0),
        ))
        results = []
        for _ in range(2):
            trainer, inj = make_trainer(plan)
            result = trainer.train(steps=4)
            results.append((result.simulated_step_times,
                            result.simulated_images_per_second,
                            result.world_sizes,
                            inj.trace.digest()))
        assert results[0] == results[1]

    def test_different_seed_different_drops(self):
        def drops(seed):
            inj = FaultInjector(FaultPlan(seed=seed, faults=(
                MessageFault(drop_prob=0.5),)))
            return [inj.message_verdict(0, 1, 0.0).drop for _ in range(32)]

        assert drops(1) == drops(1)
        assert drops(1) != drops(2)


class TestRegcacheFaultChurn:
    """Registration-cache behaviour under fault-induced invalidation: a
    poisoned (stale) registration must never be reused as a hit."""

    def make_cache(self, max_entries=4):
        from repro.net.regcache import RegistrationCache

        cache = RegistrationCache(max_entries=max_entries)
        cache.begin_transaction()
        return cache

    def test_poisoned_entry_not_reused(self):
        cache = self.make_cache()
        cache.acquire(1, 4096)
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0  # warm: a genuine hit
        assert cache.hits == 1
        cache.poison(1)
        cache.begin_transaction()
        cost = cache.acquire(1, 4096)
        # stale entry: teardown + fresh registration, counted as a miss
        assert cost == pytest.approx(
            cache.cost.deregister_time(4096) + cache.cost.register_time(4096))
        assert cache.hits == 1 and cache.misses == 2
        assert cache.stats()["invalidations"] == 1
        # once re-registered the entry is healthy again
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0

    def test_poison_uncached_buffer_is_noop(self):
        cache = self.make_cache()
        cache.poison(99)
        assert cache.stats()["invalidations"] == 0

    def test_invalidate_discards_poison(self):
        cache = self.make_cache()
        cache.acquire(1, 4096)
        cache.poison(1)
        assert cache.invalidate(1) > 0.0
        cache.begin_transaction()
        # fresh registration only — no stale-teardown double charge
        assert cache.acquire(1, 4096) == pytest.approx(
            cache.cost.register_time(4096))

    def test_eviction_churn_clears_poison(self):
        """A poisoned entry evicted by LRU churn must not resurrect as
        stale state when its buffer id is registered again."""
        cache = self.make_cache(max_entries=2)
        cache.acquire(1, 4096)
        cache.poison(1)
        for buffer_id in (2, 3, 4):  # churn rank 1 out of the LRU
            cache.begin_transaction()
            cache.acquire(buffer_id, 4096)
        assert cache.evictions >= 1
        cache.begin_transaction()
        cost = cache.acquire(1, 4096)
        # registration plus the LRU eviction it forces — but no stale-entry
        # teardown: the poison died with the eviction
        assert cost == pytest.approx(
            cache.cost.register_time(4096) + cache.cost.deregister_time(4096))
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0  # and it hits again

    def test_invalidate_all_flushes_everything(self):
        cache = self.make_cache()
        for buffer_id in (1, 2, 3):
            cache.acquire(buffer_id, 8192)
        time = cache.invalidate_all()
        assert time == pytest.approx(3 * cache.cost.deregister_time(8192))
        assert cache.stats()["entries"] == 0
        assert cache.stats()["invalidations"] == 3
        cache.begin_transaction()
        assert cache.acquire(1, 8192) > 0.0  # cold again

    def test_transport_flush_records_fault_event(self):
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.9),))
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
        spec = WorldSpec(num_ranks=cluster.num_gpus,
                         policy=SingletonDevicePolicy(), config=config)
        ranks = build_world(cluster, spec)
        inj = FaultInjector(plan)
        transport = TransportModel(cluster, config, ranks, faults=inj)
        assert transport.drop_registrations() >= 0.0
        assert inj.trace.count("regcache-flush") == 1


class TestDeadlockRegression:
    def test_fault_stranded_recv_raises_deadlock(self):
        """A recv waiting on a rank that died before sending must surface
        DeadlockError from Environment.run(), not hang."""
        inj = FaultInjector(FaultPlan(faults=(RankFailure(rank=0, time=0.0),)))
        env, fabric, _ = make_fabric(None)

        def survivor(env):
            yield fabric.irecv(1, source=0, nbytes=256)

        env.process(survivor(env))
        if 0 not in inj.failed_ranks(env.now):  # dead rank never sends
            fabric.isend(0, 1, nbytes=256)
        with pytest.raises(DeadlockError):
            env.run()


class TestWindowSemantics:
    """The half-open [start, start+duration) contract every fault window
    shares — an off-by-one here double-fires back-to-back windows."""

    def test_start_inclusive_end_exclusive(self):
        assert not window_active(1.0, 2.0, 0.999)
        assert window_active(1.0, 2.0, 1.0)      # active AT the start
        assert window_active(1.0, 2.0, 2.999)
        assert not window_active(1.0, 2.0, 3.0)  # inactive AT the end

    def test_back_to_back_windows_tile_without_overlap(self):
        for t in (0.0, 0.5, 1.0, 1.5, 2.0, 2.5):
            first = window_active(0.0, 1.0, t)
            second = window_active(1.0, 1.0, t)
            assert not (first and second)
            assert (first or second) == (t < 2.0)

    def test_none_duration_is_permanent(self):
        assert window_active(0.5, None, 0.5)
        assert window_active(0.5, None, 1e9)
        assert not window_active(0.5, None, 0.25)

    def test_zero_duration_rejected_at_spec_construction(self):
        # a [t, t) window is empty and can never fire: plan validation
        # rejects it instead of silently shipping a no-op fault
        with pytest.raises(FaultPlanError, match="duration"):
            StragglerFault(rank=0, factor=2.0, start=1.0, duration=0.0)
        with pytest.raises(FaultPlanError, match="duration"):
            CorruptionFault(target="wire", prob=0.5, duration=0.0)


class TestRetryPolicyValidation:
    def test_rejects_nonpositive_ack_timeout(self):
        with pytest.raises(ConfigError, match="ack_timeout_s"):
            RetryPolicy(ack_timeout_s=0.0)

    def test_rejects_negative_backoff_and_shrinking_factor(self):
        with pytest.raises(ConfigError, match="base_backoff_s"):
            RetryPolicy(base_backoff_s=-1e-6)
        with pytest.raises(ConfigError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(ConfigError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_ladder_time_sums_timeouts_and_backoffs(self):
        policy = RetryPolicy(max_retries=3, ack_timeout_s=1e-4,
                             base_backoff_s=1e-4, backoff_factor=2.0)
        # 3 * ack + (1 + 2 + 4) * base
        assert policy.ladder_time() == pytest.approx(3e-4 + 7e-4)
        assert RetryPolicy(max_retries=0).ladder_time() == 0.0

    def test_zero_retries_fails_fast_on_first_loss(self):
        plan = FaultPlan(seed=3, faults=(
            MessageFault(src=0, dst=1, drop_prob=1.0),))
        env, fabric, inj = make_fabric(plan, retry=RetryPolicy(max_retries=0))
        fabric.isend(0, 1, nbytes=256)
        fabric.irecv(1, source=0, nbytes=256)
        with pytest.raises(MpiTimeoutError):
            env.run()
        assert inj.trace.count("msg-retry") == 0  # no retransmission at all


class TestDomainFaultSpecs:
    def test_rejects_negative_addresses(self):
        with pytest.raises(FaultPlanError):
            NodeFailure(node=-1)
        with pytest.raises(FaultPlanError):
            SwitchFailure(switch=-2)
        with pytest.raises(FaultPlanError):
            PartitionFault(nodes=(1, -3))

    def test_partition_must_not_sever_the_coordinator(self):
        with pytest.raises(FaultPlanError, match="coordinator"):
            PartitionFault(nodes=(0, 1))
        with pytest.raises(FaultPlanError, match="duplicate"):
            PartitionFault(nodes=(1, 1))
        with pytest.raises(FaultPlanError, match="at least one"):
            PartitionFault(nodes=())

    def test_corruption_target_and_prob_validated(self):
        with pytest.raises(FaultPlanError, match="target"):
            CorruptionFault(target="ram", prob=0.5)
        with pytest.raises(FaultPlanError, match="prob"):
            CorruptionFault(target="wire", prob=0.0)
        with pytest.raises(FaultPlanError, match="prob"):
            CorruptionFault(target="wire", prob=1.5)

    def test_domain_specs_round_trip_json(self):
        plan = FaultPlan(
            seed=13,
            faults=(
                NodeFailure(node=2, time=1.5, down_s=4.0),
                SwitchFailure(switch=1, time=2.0),
                PartitionFault(nodes=(2, 3), start=1.0, duration=6.0),
                CorruptionFault(target="checkpoint", prob=0.25),
            ),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.to_json() == plan.to_json()


class TestTopology:
    TOPO = Topology(num_nodes=4, gpus_per_node=4, nodes_per_switch=2)

    def test_addressing(self):
        topo = self.TOPO
        assert topo.num_ranks == 16 and topo.num_switches == 2
        assert topo.node_of_rank(5) == 1
        assert topo.switch_of_rank(5) == 0
        assert topo.switch_of_rank(9) == 1
        assert topo.ranks_of_node(2) == (8, 9, 10, 11)
        assert topo.nodes_behind_switch(1) == (2, 3)
        assert topo.ranks_behind_switch(1) == tuple(range(8, 16))

    def test_ragged_last_switch(self):
        topo = Topology(num_nodes=3, nodes_per_switch=2)
        assert topo.num_switches == 2
        assert topo.nodes_behind_switch(1) == (2,)

    def test_from_spec_matches_cluster_shape(self):
        topo = Topology.from_spec(LASSEN, num_nodes=4)
        assert topo.gpus_per_node == LASSEN.node.gpus_per_node
        assert topo.nodes_per_switch == LASSEN.nodes_per_switch

    def test_node_failure_lowers_to_whole_node(self):
        plan = FaultPlan(faults=(NodeFailure(node=1, time=2.0, down_s=3.0),))
        lowered = lower_domain_faults(plan, self.TOPO)
        assert [e.rank for e in lowered] == [4, 5, 6, 7]
        assert all(e.domain == "node:1" for e in lowered)
        assert all(e.time == 2.0 and e.down_s == 3.0 for e in lowered)

    def test_switch_failure_lowers_to_every_node_behind_it(self):
        plan = FaultPlan(faults=(SwitchFailure(switch=1, time=1.0),))
        lowered = lower_domain_faults(plan, self.TOPO)
        assert [e.rank for e in lowered] == list(range(8, 16))
        assert all(e.domain == "switch:1" for e in lowered)

    def test_partition_lowers_the_island_only(self):
        plan = FaultPlan(faults=(
            PartitionFault(nodes=(3,), start=1.0, duration=5.0),))
        lowered = lower_domain_faults(plan, self.TOPO)
        assert [e.rank for e in lowered] == [12, 13, 14, 15]
        assert all(e.domain == "partition:0" for e in lowered)
        assert all(e.down_s == 5.0 for e in lowered)  # heals with the window

    def test_earliest_failure_wins_overlapping_claims(self):
        # rank 4 is claimed by its node (t=2.0) and an independent failure
        # (t=1.0): survivors observe the earlier one
        plan = FaultPlan(faults=(
            NodeFailure(node=1, time=2.0),
            RankFailure(rank=4, time=1.0),
        ))
        lowered = {e.rank: e for e in lower_domain_faults(plan, self.TOPO)}
        assert lowered[4].time == 1.0 and lowered[4].domain == ""
        assert lowered[5].time == 2.0 and lowered[5].domain == "node:1"

    def test_out_of_range_domains_rejected(self):
        with pytest.raises(FaultPlanError, match="outside"):
            lower_domain_faults(
                FaultPlan(faults=(NodeFailure(node=9),)), self.TOPO)
        with pytest.raises(FaultPlanError, match="outside"):
            lower_domain_faults(
                FaultPlan(faults=(SwitchFailure(switch=2),)), self.TOPO)
        with pytest.raises(FaultPlanError, match="outside"):
            lower_domain_faults(
                FaultPlan(faults=(PartitionFault(nodes=(7,)),)), self.TOPO)

    def test_switch_carrying_every_node_rejected(self):
        topo = Topology(num_nodes=2, nodes_per_switch=2)
        with pytest.raises(FaultPlanError, match="surviving side"):
            lower_domain_faults(
                FaultPlan(faults=(SwitchFailure(switch=0),)), topo)

    def test_injector_requires_topology_for_domain_faults(self):
        plan = FaultPlan(faults=(NodeFailure(node=0),))
        with pytest.raises(FaultPlanError, match="topology"):
            FaultInjector(plan)
        inj = FaultInjector(plan, topology=self.TOPO)
        assert inj.failed_ranks(1.0) == {0, 1, 2, 3}
        assert inj.domain_of(2) == "node:0"


class TestSeveredPaths:
    TOPO = Topology(num_nodes=4, gpus_per_node=4, nodes_per_switch=2)

    def test_partition_severs_only_the_cut(self):
        plan = FaultPlan(faults=(
            PartitionFault(nodes=(2, 3), start=1.0, duration=4.0),))
        inj = FaultInjector(plan, topology=self.TOPO)
        assert not inj.path_severed(0, 8, 0.5)   # before the window
        assert inj.path_severed(0, 8, 2.0)       # across the cut
        assert inj.path_severed(8, 0, 2.0)       # symmetric
        assert not inj.path_severed(8, 12, 2.0)  # island-internal fabric
        assert not inj.path_severed(0, 4, 2.0)   # surviving side untouched
        assert not inj.path_severed(0, 8, 5.0)   # healed

    def test_switch_outage_severs_inter_node_paths_behind_it(self):
        plan = FaultPlan(faults=(SwitchFailure(switch=1, time=1.0),))
        inj = FaultInjector(plan, topology=self.TOPO)
        assert inj.path_severed(0, 8, 2.0)       # into the dead switch
        assert inj.path_severed(8, 12, 2.0)      # node 2 <-> node 3 via TOR
        assert not inj.path_severed(8, 9, 2.0)   # same node rides NVLink
        assert not inj.path_severed(0, 4, 2.0)   # healthy switch

    def test_severed_message_exhausts_ladder_with_typed_error(self):
        plan = FaultPlan(seed=1, faults=(
            PartitionFault(nodes=(1,), start=0.0, duration=None),))
        topo = Topology(num_nodes=2, gpus_per_node=4, nodes_per_switch=1)
        retry = RetryPolicy(max_retries=2, ack_timeout_s=1e-4,
                            base_backoff_s=1e-4)
        env, fabric, inj = make_fabric(
            plan, retry=retry, num_nodes=2, topology=topo)
        fabric.isend(0, 4, nbytes=256)  # crosses the cut
        fabric.irecv(4, source=0, nbytes=256)
        with pytest.raises(MpiTimeoutError, match="severed"):
            env.run()
        assert inj.trace.count("msg-severed") >= 1
        assert inj.trace.count("msg-timeout") == 1

    def test_severed_verdict_does_not_consume_drop_stream(self):
        """Topology verdicts are deterministic: consulting a severed path
        must not advance the seeded probabilistic drop sequence."""
        plan = FaultPlan(seed=7, faults=(
            PartitionFault(nodes=(1,), start=0.0, duration=None),
            MessageFault(src=0, dst=1, drop_prob=0.5),
        ))
        topo = Topology(num_nodes=2, gpus_per_node=4, nodes_per_switch=1)
        inj = FaultInjector(plan, topology=topo)
        baseline = FaultInjector(
            FaultPlan(seed=7, faults=(MessageFault(src=0, dst=1,
                                                   drop_prob=0.5),)))
        for _ in range(8):
            inj.message_verdict(0, 4, 1.0)  # severed: no roll consumed
        rolls = [inj.message_verdict(0, 1, 1.0).drop for _ in range(16)]
        expected = [baseline.message_verdict(0, 1, 1.0).drop
                    for _ in range(16)]
        assert rolls == expected


class TestWireCorruption:
    def test_corrupt_message_detected_retransmitted_and_paired(self):
        plan = FaultPlan(seed=2, faults=(
            CorruptionFault(target="wire", prob=1.0, start=0.0,
                            duration=1e-3),))
        env, fabric, inj = make_fabric(plan, retry=RetryPolicy(max_retries=8))
        payload = np.arange(64, dtype=np.float32)
        out = np.zeros(64, dtype=np.float32)
        fabric.isend(0, 1, data=payload)
        fabric.irecv(1, source=0, out=out)
        env.run()
        np.testing.assert_array_equal(out, payload)  # delivered intact
        assert inj.trace.count("wire-corrupt") >= 1
        # the chaos invariant: every corruption caught by a CRC check
        assert inj.trace.count("wire-corrupt") == inj.trace.count("crc-detected")

    def test_unbounded_corruption_exhausts_retry_budget(self):
        plan = FaultPlan(seed=2, faults=(
            CorruptionFault(target="wire", prob=1.0),))
        env, fabric, inj = make_fabric(plan, retry=RetryPolicy(
            max_retries=3, ack_timeout_s=1e-4, base_backoff_s=1e-4))
        fabric.isend(0, 1, nbytes=256)
        fabric.irecv(1, source=0, nbytes=256)
        with pytest.raises(MpiTimeoutError):
            env.run()
        assert inj.trace.count("wire-corrupt") == 4  # initial + 3 retries

    def test_corruption_rolls_are_seeded(self):
        def verdicts(seed):
            inj = FaultInjector(FaultPlan(seed=seed, faults=(
                CorruptionFault(target="wire", prob=0.5),)))
            return [inj.corruption_verdict(0, 1, 0.0) for _ in range(32)]

        assert verdicts(5) == verdicts(5)
        assert verdicts(5) != verdicts(6)

    def test_wire_corruption_active_tracks_windows(self):
        inj = FaultInjector(FaultPlan(faults=(
            CorruptionFault(target="wire", prob=0.1, start=1.0,
                            duration=2.0),)))
        assert not inj.wire_corruption_active(0.5)
        assert inj.wire_corruption_active(1.0)
        assert not inj.wire_corruption_active(3.0)  # end-exclusive

    def test_checkpoint_corruption_keyed_by_save_index(self):
        inj = FaultInjector(FaultPlan(seed=4, faults=(
            CorruptionFault(target="checkpoint", prob=0.5),)))
        first = [inj.checkpoint_corrupt(i, 0.0) for i in range(16)]
        again = [inj.checkpoint_corrupt(i, 0.0) for i in range(16)]
        assert first == again  # pure in save_index, not call order
        assert any(first) and not all(first)
