"""Chaos suite for the deterministic fault-injection subsystem.

Exercises every injector point: compute stragglers/jitter, link
degradation and flapping, message drop/delay with retry + backoff,
and rank failure under both resilience policies — plus the two core
guarantees (zero-fault identity, seed-reproducibility).
"""

import json

import numpy as np
import pytest

from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.errors import (
    DeadlockError,
    FaultPlanError,
    MpiTimeoutError,
    RankFailedError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    RankFailure,
    RetryPolicy,
    StragglerFault,
)
from repro.hardware import LASSEN, Cluster
from repro.horovod import (
    FaultTolerantCoordinator,
    HorovodConfig,
    HorovodEngine,
    ResiliencePolicy,
)
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, Mv2Config, WorldSpec, build_world
from repro.mpi.p2p import P2PFabric
from repro.mpi.process import SingletonDevicePolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.trainer import DistributedTrainer


def make_fabric(plan=None, *, retry=None, num_nodes=1):
    """P2P fabric with an optional fault plan wired into the transport."""
    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=num_nodes)
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=cluster.num_gpus, policy=SingletonDevicePolicy(),
                     config=config)
    ranks = build_world(cluster, spec)
    injector = FaultInjector(plan) if plan is not None else None
    transport = TransportModel(cluster, config, ranks, faults=injector,
                               retry=retry)
    return env, P2PFabric(transport), injector


def make_trainer(plan, *, ranks=4, steps_policy="shrink", detect=0.05):
    """Small distributed EDSR trainer with an optional fault plan."""
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, (ranks + 3) // 4))
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=ranks, policy=SingletonDevicePolicy(),
                     config=config)
    injector = FaultInjector(plan) if plan is not None else None
    world = MpiWorld(cluster, spec, faults=injector)
    engine = HorovodEngine(world.communicator(), HorovodConfig(cycle_time_s=2e-3))
    dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                        split="train", degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
        engine,
        dataset,
        batch_per_rank=1,
        lr_patch=8,
        faults=injector,
        resilience=steps_policy,
        detect_timeout_s=detect,
    )
    return trainer, injector


class TestFaultPlan:
    def test_rejects_speedup_straggler(self):
        with pytest.raises(FaultPlanError):
            StragglerFault(rank=0, factor=0.5)

    def test_rejects_out_of_range_drop_prob(self):
        with pytest.raises(FaultPlanError):
            MessageFault(drop_prob=1.5)

    def test_rejects_link_fault_that_degrades_nothing(self):
        with pytest.raises(FaultPlanError):
            LinkFault(kind="ib")

    def test_rejects_message_fault_that_does_nothing(self):
        with pytest.raises(FaultPlanError):
            MessageFault(src=0, dst=1)

    def test_json_roundtrip_preserves_plan(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                StragglerFault(rank=1, factor=2.0, start=0.1, duration=1.0),
                JitterFault(sigma=0.1),
                LinkFault(kind="ib", bandwidth_factor=0.25, flap_period_s=0.5),
                MessageFault(src=0, dst=3, drop_prob=0.5, delay_s=1e-4),
                RankFailure(rank=2, time=3.0),
            ),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        # canonical encoding: a re-dump is byte-identical
        assert restored.to_json() == plan.to_json()
        assert json.loads(plan.to_json())["seed"] == 7

    def test_of_type_and_failures(self):
        plan = FaultPlan(faults=(RankFailure(rank=3, time=1.0),
                                 StragglerFault(rank=0, factor=1.5)))
        assert len(plan.of_type(StragglerFault)) == 1
        assert [f.rank for f in plan.failures] == [3]


class TestComputeFaults:
    def test_straggler_window_on_off(self):
        plan = FaultPlan(faults=(
            StragglerFault(rank=2, factor=1.5, start=1.0, duration=2.0),))
        inj = FaultInjector(plan)
        assert inj.compute_factor(2, 0.5) == 1.0   # before the window
        assert inj.compute_factor(2, 1.5) == 1.5   # inside
        assert inj.compute_factor(2, 3.5) == 1.0   # recovered
        assert inj.compute_factor(0, 1.5) == 1.0   # other ranks untouched
        kinds = [e.kind for e in inj.trace]
        assert "straggler-on" in kinds and "straggler-off" in kinds

    def test_jitter_monotone_in_sigma(self):
        """For a fixed seed the jitter draw is shared, so step slowdown is
        monotone in sigma — the chaos knob scales, it doesn't reshuffle."""
        factors = []
        for sigma in (0.0, 0.05, 0.2, 0.8):
            inj = FaultInjector(
                FaultPlan(seed=13, faults=(JitterFault(sigma=sigma),)))
            factors.append(inj.compute_factor(1, 0.0, step=3))
        assert factors == sorted(factors)
        assert factors[0] == 1.0

    def test_straggler_slows_training_steps(self):
        base, _ = make_trainer(FaultPlan(seed=1))
        slow, _ = make_trainer(FaultPlan(seed=1, faults=(
            StragglerFault(rank=0, factor=2.0),)))
        t_base = base.train(steps=2).simulated_step_times
        t_slow = slow.train(steps=2).simulated_step_times
        assert all(s > b for s, b in zip(t_slow, t_base))


class TestLinkFaults:
    def test_degraded_link_slows_transfers(self):
        plan = FaultPlan(faults=(
            LinkFault(kind="ib", bandwidth_factor=0.5, latency_add_s=1e-5),))
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        cluster.apply_fault_injector(FaultInjector(plan))
        healthy = Cluster(Environment(), LASSEN, num_nodes=2)
        a, b = cluster.gpu_ref(0), cluster.gpu_ref(4)  # cross-node: uses IB
        ha, hb = healthy.gpu_ref(0), healthy.gpu_ref(4)
        nbytes = 8 * 2**20
        assert cluster.path_cost(a, b, nbytes) > healthy.path_cost(ha, hb, nbytes)

    def test_flapping_alternates_half_periods(self):
        plan = FaultPlan(faults=(
            LinkFault(kind="ib", bandwidth_factor=0.5, flap_period_s=1.0),))
        inj = FaultInjector(plan)
        degraded, _ = inj.link_state("ib", 0.25)   # first half: down
        healthy, _ = inj.link_state("ib", 0.75)    # second half: restored
        degraded2, _ = inj.link_state("ib", 1.25)  # next cycle: down again
        assert degraded == degraded2 == 0.5
        assert healthy == 1.0
        kinds = [e.kind for e in inj.trace]
        assert "link-degraded" in kinds and "link-restored" in kinds

    def test_unmatched_kind_untouched(self):
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.1),))
        inj = FaultInjector(plan)
        assert inj.link_state("nvlink", 0.0) == (1.0, 0.0)


class TestMessageFaults:
    def test_lossy_link_retries_until_delivered(self):
        """Moderate loss: the retry/backoff loop converges and the message
        lands — chaos degrades timing, not correctness."""
        plan = FaultPlan(seed=3, faults=(
            MessageFault(src=0, dst=1, drop_prob=0.6),))
        env, fabric, inj = make_fabric(
            plan, retry=RetryPolicy(max_retries=20))
        payload = np.arange(32, dtype=np.float32)
        out = np.zeros(32, dtype=np.float32)
        fabric.isend(0, 1, data=payload)
        fabric.irecv(1, source=0, out=out)
        env.run()
        np.testing.assert_array_equal(out, payload)
        assert inj.trace.count("msg-retry") >= 1
        assert inj.trace.count("msg-timeout") == 0

    def test_total_loss_raises_timeout_not_deadlock(self):
        """A dead path must surface a typed error within the retry budget —
        never hang the simulation."""
        plan = FaultPlan(seed=3, faults=(
            MessageFault(src=0, dst=1, drop_prob=1.0),))
        retry = RetryPolicy(max_retries=3, ack_timeout_s=1e-4,
                            base_backoff_s=1e-4)
        env, fabric, inj = make_fabric(plan, retry=retry)
        fabric.isend(0, 1, nbytes=256)
        fabric.irecv(1, source=0, nbytes=256)
        with pytest.raises(MpiTimeoutError):
            env.run()
        assert inj.trace.count("msg-retry") == retry.max_retries
        assert inj.trace.count("msg-timeout") == 1
        # all retries were spent before giving up
        budget = sum(retry.ack_timeout_s + retry.backoff(k)
                     for k in range(1, retry.max_retries + 1))
        assert env.now >= budget

    def test_delay_adds_wire_time(self):
        delay = 0.05
        plan = FaultPlan(faults=(MessageFault(delay_s=delay),))
        env, fabric, _ = make_fabric(plan)
        base_env, base_fabric, _ = make_fabric(None)
        for e, f in ((env, fabric), (base_env, base_fabric)):
            f.isend(0, 1, nbytes=1024)
            f.irecv(1, source=0, nbytes=1024)
            e.run()
        assert env.now >= base_env.now + delay

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_backoff_s=1e-4, backoff_factor=2.0)
        waits = [policy.backoff(k) for k in (1, 2, 3)]
        assert waits == [1e-4, 2e-4, 4e-4]


class TestRankFailure:
    def test_shrink_policy_continues_on_survivors(self):
        plan = FaultPlan(faults=(RankFailure(rank=1, time=0.5),))
        trainer, inj = make_trainer(plan)
        result = trainer.train(steps=4)
        assert result.steps == 4
        assert result.world_sizes[0] == 4
        assert result.world_sizes[-1] == 3
        assert trainer.active_ranks == [0, 2, 3]
        assert trainer.replicas_in_sync()
        assert inj.trace.count("ring-shrink") == 1

    def test_abort_policy_raises_typed_error(self):
        plan = FaultPlan(faults=(RankFailure(rank=1, time=0.5),))
        trainer, inj = make_trainer(plan, steps_policy="abort", detect=0.05)
        with pytest.raises(RankFailedError):
            trainer.train(steps=4)
        # detection is stamped within the configured timeout of the poll
        abort = [e for e in inj.trace if e.kind == "abort"]
        failed = [e for e in inj.trace if e.kind == "rank-failed"]
        assert abort and failed
        assert abort[0].time >= failed[0].time

    def test_coordinator_abort_within_timeout(self):
        inj = FaultInjector(FaultPlan(faults=(RankFailure(rank=0, time=1.0),)))
        coord = FaultTolerantCoordinator(
            range(2), policy=ResiliencePolicy.ABORT, detect_timeout_s=0.2,
            injector=inj)
        with pytest.raises(RankFailedError):
            coord.poll(1.0)
        abort = [e for e in inj.trace if e.kind == "abort"]
        assert abort[0].time == pytest.approx(1.2)

    def test_all_ranks_dead_raises(self):
        inj = FaultInjector(FaultPlan(faults=(
            RankFailure(rank=0, time=0.0), RankFailure(rank=1, time=0.0))))
        coord = FaultTolerantCoordinator(range(2), injector=inj)
        with pytest.raises(RankFailedError):
            coord.poll(0.0)


class TestZeroFaultIdentity:
    def test_empty_plan_is_arithmetic_identity(self):
        inj = FaultInjector(FaultPlan(seed=42))
        assert inj.compute_factor(0, 1.0) == 1.0
        assert inj.link_state("ib", 1.0) == (1.0, 0.0)
        verdict = inj.message_verdict(0, 1, 1.0)
        assert not verdict.drop and verdict.delay_s == 0.0
        assert not inj.any_faults
        assert len(inj.trace) == 0

    def test_empty_plan_reproduces_baseline_exactly(self):
        baseline, _ = make_trainer(None)
        zero, _ = make_trainer(FaultPlan(seed=42))
        r_base = baseline.train(steps=2)
        r_zero = zero.train(steps=2)
        assert r_zero.simulated_step_times == r_base.simulated_step_times
        assert r_zero.losses == r_base.losses


class TestDeterminism:
    def test_same_seed_same_run(self):
        """Identical seed + plan: byte-identical trace, identical timing."""
        plan = FaultPlan(seed=9, faults=(
            StragglerFault(rank=1, factor=1.7, duration=1.0),
            JitterFault(sigma=0.1),
            LinkFault(kind="ib", bandwidth_factor=0.5, flap_period_s=0.7),
            RankFailure(rank=3, time=1.0),
        ))
        results = []
        for _ in range(2):
            trainer, inj = make_trainer(plan)
            result = trainer.train(steps=4)
            results.append((result.simulated_step_times,
                            result.simulated_images_per_second,
                            result.world_sizes,
                            inj.trace.digest()))
        assert results[0] == results[1]

    def test_different_seed_different_drops(self):
        def drops(seed):
            inj = FaultInjector(FaultPlan(seed=seed, faults=(
                MessageFault(drop_prob=0.5),)))
            return [inj.message_verdict(0, 1, 0.0).drop for _ in range(32)]

        assert drops(1) == drops(1)
        assert drops(1) != drops(2)


class TestRegcacheFaultChurn:
    """Registration-cache behaviour under fault-induced invalidation: a
    poisoned (stale) registration must never be reused as a hit."""

    def make_cache(self, max_entries=4):
        from repro.net.regcache import RegistrationCache

        cache = RegistrationCache(max_entries=max_entries)
        cache.begin_transaction()
        return cache

    def test_poisoned_entry_not_reused(self):
        cache = self.make_cache()
        cache.acquire(1, 4096)
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0  # warm: a genuine hit
        assert cache.hits == 1
        cache.poison(1)
        cache.begin_transaction()
        cost = cache.acquire(1, 4096)
        # stale entry: teardown + fresh registration, counted as a miss
        assert cost == pytest.approx(
            cache.cost.deregister_time(4096) + cache.cost.register_time(4096))
        assert cache.hits == 1 and cache.misses == 2
        assert cache.stats()["invalidations"] == 1
        # once re-registered the entry is healthy again
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0

    def test_poison_uncached_buffer_is_noop(self):
        cache = self.make_cache()
        cache.poison(99)
        assert cache.stats()["invalidations"] == 0

    def test_invalidate_discards_poison(self):
        cache = self.make_cache()
        cache.acquire(1, 4096)
        cache.poison(1)
        assert cache.invalidate(1) > 0.0
        cache.begin_transaction()
        # fresh registration only — no stale-teardown double charge
        assert cache.acquire(1, 4096) == pytest.approx(
            cache.cost.register_time(4096))

    def test_eviction_churn_clears_poison(self):
        """A poisoned entry evicted by LRU churn must not resurrect as
        stale state when its buffer id is registered again."""
        cache = self.make_cache(max_entries=2)
        cache.acquire(1, 4096)
        cache.poison(1)
        for buffer_id in (2, 3, 4):  # churn rank 1 out of the LRU
            cache.begin_transaction()
            cache.acquire(buffer_id, 4096)
        assert cache.evictions >= 1
        cache.begin_transaction()
        cost = cache.acquire(1, 4096)
        # registration plus the LRU eviction it forces — but no stale-entry
        # teardown: the poison died with the eviction
        assert cost == pytest.approx(
            cache.cost.register_time(4096) + cache.cost.deregister_time(4096))
        cache.begin_transaction()
        assert cache.acquire(1, 4096) == 0.0  # and it hits again

    def test_invalidate_all_flushes_everything(self):
        cache = self.make_cache()
        for buffer_id in (1, 2, 3):
            cache.acquire(buffer_id, 8192)
        time = cache.invalidate_all()
        assert time == pytest.approx(3 * cache.cost.deregister_time(8192))
        assert cache.stats()["entries"] == 0
        assert cache.stats()["invalidations"] == 3
        cache.begin_transaction()
        assert cache.acquire(1, 8192) > 0.0  # cold again

    def test_transport_flush_records_fault_event(self):
        plan = FaultPlan(faults=(LinkFault(kind="ib", bandwidth_factor=0.9),))
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
        spec = WorldSpec(num_ranks=cluster.num_gpus,
                         policy=SingletonDevicePolicy(), config=config)
        ranks = build_world(cluster, spec)
        inj = FaultInjector(plan)
        transport = TransportModel(cluster, config, ranks, faults=inj)
        assert transport.drop_registrations() >= 0.0
        assert inj.trace.count("regcache-flush") == 1


class TestDeadlockRegression:
    def test_fault_stranded_recv_raises_deadlock(self):
        """A recv waiting on a rank that died before sending must surface
        DeadlockError from Environment.run(), not hang."""
        inj = FaultInjector(FaultPlan(faults=(RankFailure(rank=0, time=0.0),)))
        env, fabric, _ = make_fabric(None)

        def survivor(env):
            yield fabric.irecv(1, source=0, nbytes=256)

        env.process(survivor(env))
        if 0 not in inj.failed_ranks(env.now):  # dead rank never sends
            fabric.isend(0, 1, nbytes=256)
        with pytest.raises(DeadlockError):
            env.run()
