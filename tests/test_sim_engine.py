"""Unit tests for the discrete-event simulation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt, Resource, Store


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(1.5)
    assert env.now == pytest.approx(1.5)


def test_zero_delay_timeout_preserves_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates_through_yield():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "payload"

    def parent(env):
        result = yield env.process(child(env))
        return result + "!"

    p = env.process(parent(env))
    env.run()
    assert p.value == "payload!"


def test_exception_in_child_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_yielding_non_event_raises_inside_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        values = yield AllOf(env, [t1, t2])
        return env.now, values

    p = env.process(proc(env))
    env.run()
    now, values = p.value
    assert now == pytest.approx(3)
    assert values == ["a", "b"]


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        value = yield AnyOf(env, [env.timeout(5, "slow"), env.timeout(1, "fast")])
        return env.now, value

    p = env.process(proc(env))
    env.run()
    now, value = p.value
    assert now == pytest.approx(1)
    assert value == "fast"


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield AllOf(env, [])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0


def test_run_until_time_stops_midway():
    env = Environment()
    seen = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(proc(env))
    env.run(until=4.5)
    assert seen == [1, 2, 3, 4]
    assert env.now == pytest.approx(4.5)


def test_run_until_event():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == "done"
    assert env.now == pytest.approx(2)


def test_deadlock_detection_on_unmatched_wait():
    env = Environment()

    def waiter(env):
        yield env.event()  # never triggered

    env.process(waiter(env))
    with pytest.raises(DeadlockError):
        env.run()


def test_interrupt_wakes_waiting_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
            return "overslept"
        except Interrupt as irq:
            return f"interrupted:{irq.cause} at {env.now}"

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt("wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == "interrupted:wakeup at 3.0"


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc(env):
        t = env.timeout(1)
        yield env.timeout(5)  # t fires and is processed meanwhile
        value = yield t
        return env.now, value

    def other(env, t):
        # Make sure the timeout is processed (has a waiter) before re-yield.
        yield t

    t_holder = {}

    def outer(env):
        t = env.timeout(1, value="v")
        t_holder["t"] = t
        yield env.timeout(5)
        value = yield t
        return env.now, value

    p = env.process(outer(env))
    env.run()
    now, value = p.value
    assert now == pytest.approx(5)
    assert value == "v"


class TestResource:
    def test_serializes_beyond_capacity(self):
        env = Environment()
        res = Resource(env, capacity=1)
        spans = {}

        def user(env, tag):
            yield res.request()
            start = env.now
            yield env.timeout(2)
            res.release()
            spans[tag] = (start, env.now)

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert spans["a"] == (0, 2)
        assert spans["b"] == (2, 4)

    def test_capacity_two_runs_concurrently(self):
        env = Environment()
        res = Resource(env, capacity=2)
        ends = []

        def user(env):
            yield res.request()
            yield env.timeout(2)
            res.release()
            ends.append(env.now)

        for _ in range(2):
            env.process(user(env))
        env.run()
        assert ends == [2, 2]

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(env, tag, delay):
            yield env.timeout(delay)
            yield res.request()
            order.append(tag)
            yield env.timeout(1)
            res.release()

        env.process(user(env, "first", 0.0))
        env.process(user(env, "second", 0.1))
        env.process(user(env, "third", 0.2))
        env.run()
        assert order == ["first", "second", "third"]

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_wait_statistics(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env):
            yield res.request()
            yield env.timeout(5)
            res.release()

        env.process(user(env))
        env.process(user(env))
        env.run()
        assert res.grant_count == 2
        assert res.total_wait_time == pytest.approx(5)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def producer(env):
            yield env.timeout(1)
            store.put("x")

        def consumer(env):
            item = yield store.get()
            return env.now, item

        env.process(producer(env))
        c = env.process(consumer(env))
        env.run()
        assert c.value == (1.0, "x")

    def test_get_before_put_blocks(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return env.now, item

        def producer(env):
            yield env.timeout(7)
            store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (7.0, "late")

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer(env):
            for item in "abc":
                store.put(item)
                yield env.timeout(1)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["a", "b", "c"]


class TestConditionFailures:
    def test_all_of_fails_fast_on_child_failure(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("child died")

        def parent(env):
            try:
                yield AllOf(env, [env.timeout(10), env.process(failing(env))])
            except ValueError as exc:
                return f"caught at {env.now}: {exc}"

        p = env.process(parent(env))
        env.run(until=p)
        assert p.value == "caught at 1.0: child died"

    def test_any_of_failure_propagates(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("first to fire fails")

        def parent(env):
            try:
                yield AnyOf(env, [env.process(failing(env)), env.timeout(5)])
            except RuntimeError:
                return "caught"

        p = env.process(parent(env))
        env.run(until=p)
        assert p.value == "caught"

    def test_any_of_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [])

    def test_nested_conditions(self):
        env = Environment()

        def proc(env):
            inner = AllOf(env, [env.timeout(1, "a"), env.timeout(2, "b")])
            value = yield AnyOf(env, [inner, env.timeout(10, "slow")])
            return env.now, value

        p = env.process(proc(env))
        env.run()
        now, value = p.value
        assert now == pytest.approx(2)
        assert value == ["a", "b"]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_event_value_before_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")


# keep hypothesis fast and deterministic in CI
FAST = settings(max_examples=50, deadline=None)

# finite non-negative delays; tight upper bound keeps runs instantaneous
_delays = st.lists(
    st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=30,
)


def _firing_order(delays, spawn_perm):
    """Spawn one process per delay (in permuted order) and record the
    (time, tag) sequence in which they complete."""
    env = Environment()
    order = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        order.append((env.now, tag))

    for tag in spawn_perm:
        env.process(proc(env, int(tag), delays[int(tag)]))
    env.run()
    return order


class TestEventOrderingProperties:
    """The replay contract's foundation: the event queue is a *stable*
    priority queue.  Completion order is a pure function of (delays,
    spawn order) — re-running the same schedule, in any process, yields
    the identical sequence, and equal timestamps resolve in scheduling
    (FIFO) order, never by comparison of payloads or heap accidents."""

    @given(delays=_delays, seed=st.integers(0, 2**32 - 1))
    @FAST
    def test_order_deterministic_in_seed_and_schedule(self, delays, seed):
        perm = np.random.default_rng(seed).permutation(len(delays))
        assert _firing_order(delays, perm) == _firing_order(delays, perm)

    @given(delays=_delays, seed=st.integers(0, 2**32 - 1))
    @FAST
    def test_order_sorted_by_time_stable_in_spawn_order(self, delays, seed):
        perm = np.random.default_rng(seed).permutation(len(delays))
        order = _firing_order(delays, perm)
        times = [t for t, _ in order]
        assert times == sorted(times)
        # among equal timestamps, completion order == spawn order
        spawn_rank = {int(tag): i for i, tag in enumerate(perm)}
        for (t1, a), (t2, b) in zip(order, order[1:]):
            if t1 == t2:
                assert spawn_rank[a] < spawn_rank[b]

    @given(
        dup=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
        n=st.integers(2, 20),
        seed=st.integers(0, 2**32 - 1),
    )
    @FAST
    def test_identical_timestamps_fire_fifo(self, dup, n, seed):
        """All-equal delays: pure tie-break territory.  The firing order
        must be exactly the spawn order (replay-safe: no dependence on
        heap layout or hashing)."""
        perm = np.random.default_rng(seed).permutation(n)
        order = _firing_order([dup] * n, perm)
        assert [tag for _, tag in order] == [int(t) for t in perm]

    @given(delays=_delays)
    @FAST
    def test_interleaved_spawn_does_not_reorder_equal_times(self, delays):
        """Timeouts scheduled *during* the run (from a running process)
        join the back of their timestamp's FIFO class, exactly as replay
        assumes when it re-injects recorded completions."""
        env = Environment()
        order = []

        def leaf(env, tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        def spawner(env):
            for tag, d in enumerate(delays):
                env.process(leaf(env, tag, d))
                yield env.timeout(0)

        env.process(spawner(env))
        env.run()
        by_delay = sorted(range(len(delays)),
                          key=lambda i: (delays[i], i))
        assert order == by_delay
