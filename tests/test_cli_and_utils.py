"""Tests for the CLI entry point and utility modules."""

import pytest

from repro.__main__ import build_parser, main
from repro.errors import ConfigError
from repro.utils import (
    SeedSequenceFactory,
    TextTable,
    check_in,
    check_non_negative,
    check_positive,
    check_power_of_two,
    format_bytes,
    format_rate,
    format_time,
    parse_bytes,
)
from repro.utils.units import GIB, KIB, MIB


class TestUnits:
    @pytest.mark.parametrize("text,expected", [
        ("64MiB", 64 * MIB),
        ("128 KB", 128_000),
        ("128K", 128 * KIB),
        ("1.5GiB", int(1.5 * GIB)),
        ("42", 42),
        (1024, 1024),
        (3.7, 3),
    ])
    def test_parse_bytes(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12QB", -5])
    def test_parse_bytes_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_bytes(bad)

    def test_format_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(1536) == "1.50 KiB"
        assert format_bytes(64 * MIB) == "64.00 MiB"
        assert format_bytes(-KIB) == "-1.00 KiB"
        assert format_bytes(2_000_000, binary=False) == "2.00 MB"

    def test_format_time(self):
        assert format_time(0) == "0 s"
        assert format_time(5e-9) == "5.0 ns"
        assert format_time(12e-6) == "12.00 us"
        assert format_time(3.5e-3) == "3.50 ms"
        assert format_time(2.0) == "2.000 s"
        assert format_time(-1e-3) == "-1.00 ms"

    def test_format_rate(self):
        assert format_rate(12.2e9) == "12.20 GB/s"


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ConfigError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ConfigError):
            check_non_negative("x", -1)

    def test_check_power_of_two(self):
        assert check_power_of_two("x", 64) == 64
        for bad in (0, 3, -4):
            with pytest.raises(ConfigError):
                check_power_of_two("x", bad)

    def test_check_in(self):
        assert check_in("x", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigError):
            check_in("x", "c", ("a", "b"))


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(["Name", "Value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer", 2.5)
        text = table.render()
        assert "T" in text
        assert "longer" in text
        assert "2.500" in text
        lines = [l for l in text.splitlines() if "|" in l]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_extend(self):
        table = TextTable(["A"])
        table.extend([[1], [2]])
        assert len(table.rows) == 2


class TestSeedFactory:
    def test_independent_streams(self):
        factory = SeedSequenceFactory(99)
        a = factory.generator("data").random(4)
        b = factory.generator("jitter").random(4)
        a2 = SeedSequenceFactory(99).generator("data").random(4)
        assert (a == a2).all()
        assert not (a == b).all()


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("scale", "profile", "table1", "fig1", "models",
                        "diagnose"):
            assert command in text

    def test_fig1_command(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "edsr-paper" in out
        assert "resnet-50" in out

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "deeplabv3-rn50" in out

    def test_scale_command(self, capsys):
        assert main(["scale", "--gpus", "4", "--scenario", "NCCL",
                     "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "NCCL" in out
        assert "%" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "--gpus", "4", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
