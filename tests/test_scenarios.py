"""Tests for the first-class scenario layer: workload specs, multi-scale
costing, the recurrent video model + temporal trainer, video study points
(bit-identity across engines/jobs/cache), video serving sessions
(affinity, failover, jitter-buffer SLO), and the scale-pure batcher."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IMAGE_SPEC,
    MPI_OPT,
    MULTISCALE8_SPEC,
    MULTISCALE_SPEC,
    SCENARIO_SPECS,
    VIDEO_SPEC,
    ScalingStudy,
    ScenarioSpec,
    StudyConfig,
    scenario_spec_by_name,
)
from repro.core.study import point_payload
from repro.errors import ConfigError
from repro.faults import FaultPlan, RankFailure
from repro.models import (
    EDSR_TINY,
    SUPPORTED_SCALES,
    ModelCostModel,
    RecurrentEDSR,
    get_scenario_cost,
    upsampler_stage_factors,
)
from repro.perf import ResultCache
from repro.serve import (
    VIDEO_MIX,
    BatchingConfig,
    DynamicBatcher,
    Request,
    RequestClass,
    ServeScenario,
    WorkloadConfig,
    generate_arrivals,
    simulate_serve,
)
from repro.tensor.optim import Adam
from repro.trainer import synthetic_video, train_video_sr

FAST = settings(max_examples=25, deadline=None)


# -- ScenarioSpec --------------------------------------------------------------

class TestScenarioSpec:
    def test_image_spec_is_the_degenerate_case(self):
        assert IMAGE_SPEC.is_degenerate
        assert not IMAGE_SPEC.is_temporal
        assert IMAGE_SPEC.sample_shape() == (1, 3, 48, 48)

    def test_non_degenerate_members(self):
        assert not MULTISCALE_SPEC.is_degenerate
        assert not MULTISCALE8_SPEC.is_degenerate
        assert not VIDEO_SPEC.is_degenerate
        assert VIDEO_SPEC.is_temporal
        assert VIDEO_SPEC.sample_shape() == (8, 3, 48, 48)

    def test_lookup_by_name(self):
        for spec in SCENARIO_SPECS:
            assert scenario_spec_by_name(spec.name) is spec
        with pytest.raises(ConfigError):
            scenario_spec_by_name("holographic")

    def test_payload_roundtrip_is_json_plain(self):
        payload = VIDEO_SPEC.to_payload()
        assert payload == {
            "name": "video", "patch": 48, "scales": [2], "frames": 8,
            "frame_rate_fps": 24.0, "recurrent": True,
        }

    @pytest.mark.parametrize("kwargs", [
        dict(patch=4),
        dict(scales=()),
        dict(scales=(5,)),
        dict(scales=(4, 2)),          # not increasing
        dict(scales=(2, 2)),          # not unique
        dict(frames=0),
        dict(frames=2, frame_rate_fps=0.0),
        dict(frames=1, recurrent=True),  # hidden state needs >= 2 frames
    ])
    def test_validation_raises_typed_errors(self, kwargs):
        with pytest.raises(ConfigError):
            ScenarioSpec(name="bad", **kwargs)


# -- multi-scale costing -------------------------------------------------------

class TestMultiScaleCosting:
    def test_supported_scales_replace_the_old_special_case(self):
        # x3 used to be an ad-hoc branch; now every supported factor has a
        # declared stage plan and everything else is a typed ConfigError
        assert upsampler_stage_factors(2) == (2,)
        assert upsampler_stage_factors(3) == (3,)
        assert upsampler_stage_factors(4) == (2, 2)
        assert upsampler_stage_factors(8) == (2, 2, 2)
        for bad in (1, 5, 6, 7):
            with pytest.raises(ConfigError):
                upsampler_stage_factors(bad)

    def test_multi_head_params_match_the_trainable_model(self):
        for scales, recurrent in [
            ((2,), False), ((2, 4), False), ((2, 4, 8), False), ((2,), True),
        ]:
            cost = ModelCostModel.for_edsr_multi(
                EDSR_TINY, scales, recurrent=recurrent
            )
            model = RecurrentEDSR(EDSR_TINY, scales, recurrent=recurrent)
            assert cost.total_params == model.num_parameters(), (
                scales, recurrent,
            )

    def test_single_scale_collapses_to_the_registered_model(self):
        # the degenerate spec must not move any existing anchor
        single = ModelCostModel.for_edsr(EDSR_TINY)
        multi = ModelCostModel.for_edsr_multi(EDSR_TINY, (2,))
        assert multi.total_params == single.total_params
        assert multi.gradient_bytes == single.gradient_bytes

    def test_more_heads_cost_more(self):
        x2 = get_scenario_cost("edsr-paper", scales=(2,))
        x248 = get_scenario_cost("edsr-paper", scales=(2, 4, 8))
        assert x248.total_params > x2.total_params
        assert x248.flops_forward > x2.flops_forward

    def test_recurrent_fusion_is_priced(self):
        plain = ModelCostModel.for_edsr_multi(EDSR_TINY, (2,))
        rec = ModelCostModel.for_edsr_multi(EDSR_TINY, (2,), recurrent=True)
        assert rec.total_params > plain.total_params
        assert any("temporal.fuse" in l.name for l in rec.layers)

    def test_non_edsr_presets_are_rejected(self):
        with pytest.raises(ConfigError):
            get_scenario_cost("resnet50", scales=(2, 4))


# -- the trainable video model + temporal trainer ------------------------------

class TestVideoTraining:
    def test_forward_shapes_and_hidden_carry(self):
        model = RecurrentEDSR(EDSR_TINY, (2, 4), recurrent=True)
        from repro.tensor import Tensor
        x = Tensor(np.random.default_rng(0).random((2, 3, 8, 8), dtype=np.float32))
        outs, hidden = model(x)
        assert set(outs) == {2, 4}
        assert outs[2].data.shape == (2, 3, 16, 16)
        assert outs[4].data.shape == (2, 3, 32, 32)
        assert hidden.data.shape == (2, EDSR_TINY.n_feats, 8, 8)
        outs2, hidden2 = model(x, hidden)
        # the carried state changes the outputs (the fusion conv is live)
        assert not np.allclose(outs[2].data, outs2[2].data)
        assert hidden2.data.shape == hidden.data.shape

    def test_loss_decreases_over_sequences(self):
        model = RecurrentEDSR(EDSR_TINY, (2,), recurrent=True)
        clips = synthetic_video(
            sequences=6, frames=3, batch=2, patch=8, scales=(2,), seed=0
        )
        result = train_video_sr(model, clips, Adam(model.parameters(), lr=2e-3))
        assert result.sequences == 6
        assert result.final_loss < result.losses[0]
        assert set(result.per_scale_losses) == {2}
        assert len(result.per_scale_losses[2]) == 6
        assert result.frames_per_second > 0

    def test_synthetic_video_is_seed_deterministic(self):
        a = list(synthetic_video(
            sequences=2, frames=2, batch=1, patch=8, scales=(2, 4), seed=3))
        b = list(synthetic_video(
            sequences=2, frames=2, batch=1, patch=8, scales=(2, 4), seed=3))
        for (lr_a, hr_a), (lr_b, hr_b) in zip(a, b):
            assert np.array_equal(lr_a, lr_b)
            for s in (2, 4):
                assert np.array_equal(hr_a[s], hr_b[s])


# -- study integration ---------------------------------------------------------

STUDY_FAST = StudyConfig(measure_steps=16, warmup_steps=1)


def study_config(spec, **overrides):
    return dataclasses.replace(STUDY_FAST, workload=spec, **overrides)


class TestStudyScenarios:
    def test_config_rejects_conflicting_cadences(self):
        # video owns the periodic step structure; local-SGD may not stack
        with pytest.raises(ConfigError):
            study_config(VIDEO_SPEC, local_sgd_h=4)

    def test_config_requires_a_full_sequence(self):
        with pytest.raises(ConfigError):
            study_config(VIDEO_SPEC, measure_steps=4)

    def test_fault_plans_only_run_the_degenerate_workload(self):
        plan = FaultPlan(seed=0, faults=(RankFailure(rank=1, time=1.0),))
        with pytest.raises(ConfigError):
            ScalingStudy(MPI_OPT, study_config(VIDEO_SPEC), fault_plan=plan)

    def test_degenerate_spec_changes_nothing(self):
        base = ScalingStudy(MPI_OPT, STUDY_FAST).run_point(4)
        explicit = ScalingStudy(
            MPI_OPT, study_config(IMAGE_SPEC)
        ).run_point(4)
        assert point_payload(base) == point_payload(explicit)
        assert point_payload(base)["workload"] is None

    @pytest.mark.parametrize("spec", [MULTISCALE_SPEC, VIDEO_SPEC])
    def test_fast_exact_identity(self, spec):
        exact = ScalingStudy(MPI_OPT, study_config(spec)).run_point(4)
        fast = ScalingStudy(
            MPI_OPT, study_config(spec, engine_mode="fast")
        ).run_point(4)
        assert point_payload(exact) == point_payload(fast)
        assert point_payload(exact)["workload"] == spec.to_payload()

    @pytest.mark.parametrize("spec", [MULTISCALE8_SPEC, VIDEO_SPEC])
    def test_jobs_and_cache_identity(self, spec, tmp_path):
        cache = ResultCache(str(tmp_path))
        study = ScalingStudy(MPI_OPT, study_config(spec))
        serial = study.run([1, 2, 4])
        parallel = study.run([1, 2, 4], jobs=2, cache=cache)
        warm = study.run([1, 2, 4], jobs=2, cache=cache)
        for a, b, c in zip(serial, parallel, warm):
            assert point_payload(a) == point_payload(b) == point_payload(c)
        assert cache.stats()["hits"] >= 3

    def test_video_sequences_amortize_the_update(self):
        """Non-boundary frames skip the collective: a video point beats a
        still-image point of the same per-step compute at scale."""
        image = ScalingStudy(MPI_OPT, STUDY_FAST).run_point(16)
        video = ScalingStudy(MPI_OPT, study_config(VIDEO_SPEC)).run_point(16)
        # frames-1 of every T steps are communication-free, so the mean
        # step time must come in under the every-step-allreduce workload
        assert video.step_time < image.step_time

    def test_multiscale_costs_more_than_single_scale(self):
        image = ScalingStudy(MPI_OPT, STUDY_FAST).run_point(4)
        multi = ScalingStudy(
            MPI_OPT, study_config(MULTISCALE8_SPEC)
        ).run_point(4)
        assert multi.step_time > image.step_time


# -- video serving: sessions, affinity, failover -------------------------------

def video_workload(rate=2.0):
    return WorkloadConfig(kind="video", rate_rps=rate, classes=VIDEO_MIX)


def video_scenario(name="video-test", **overrides):
    defaults = dict(
        name=name,
        workload=video_workload(),
        batching=BatchingConfig(mix_scales=False),
        session_affinity=True,
    )
    defaults.update(overrides)
    return ServeScenario(**defaults)


class TestVideoWorkload:
    def test_request_class_validates_streaming_fields(self):
        with pytest.raises(ConfigError):
            RequestClass("bad", patch=48, scale=5)
        with pytest.raises(ConfigError):
            RequestClass("bad", patch=48, scale=2, frames=0)
        with pytest.raises(ConfigError):
            RequestClass("bad", patch=48, scale=2, frames=2,
                         frame_rate_fps=0.0)
        with pytest.raises(ConfigError):
            RequestClass("bad", patch=48, scale=2, deadline_s=0.0)

    def test_video_trace_is_seed_deterministic(self):
        cfg = video_workload()
        a = generate_arrivals(cfg, 30.0, seed=5)
        b = generate_arrivals(cfg, 30.0, seed=5)
        assert a == b
        assert a != generate_arrivals(cfg, 30.0, seed=6)
        # sessions expand to per-frame requests with dense rids
        assert [r.rid for r in a] == list(range(len(a)))
        assert all(r.session is not None for r in a)

    def test_sessions_pace_frames_at_the_class_rate(self):
        arrivals = generate_arrivals(video_workload(), 30.0, seed=1)
        by_session = {}
        for r in arrivals:
            by_session.setdefault(r.session, []).append(r)
        assert len(by_session) > 2
        for frames in by_session.values():
            frames.sort(key=lambda r: r.frame)
            cls = frames[0].cls
            assert [r.frame for r in frames] == list(range(cls.frames))
            gaps = {
                round(b.arrival - a.arrival, 9)
                for a, b in zip(frames, frames[1:])
            }
            assert gaps == {round(1.0 / cls.frame_rate_fps, 9)}

    def test_single_frame_classes_keep_the_historical_trace(self):
        # a mix whose classes are all single-frame takes the pre-session
        # return path: no expansion, no session ids, no renumbering —
        # existing digests and baselines are untouched
        classes = (RequestClass("still-x2", patch=48, scale=2),)
        video = WorkloadConfig(kind="video", rate_rps=20.0, classes=classes)
        a = generate_arrivals(video, 20.0, seed=7)
        assert all(r.session is None and r.frame == 0 for r in a)
        assert [r.rid for r in a] == list(range(len(a)))
        poisson = WorkloadConfig(kind="poisson", rate_rps=20.0)
        b = generate_arrivals(poisson, 20.0, seed=7)
        assert all(r.session is None for r in b)


class TestScalePureBatching:
    def test_pop_batch_never_mixes_scales(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch=8, mix_scales=False))
        x2 = RequestClass("x2", patch=48, scale=2)
        x4 = RequestClass("x4", patch=48, scale=4)
        for rid, cls in enumerate([x2, x2, x4, x4, x2]):
            batcher.enqueue(Request(rid=rid, cls=cls, arrival=0.0), now=0.0)
        seen = []
        while len(batcher):
            batch = batcher.pop_batch(now=10.0)
            assert len({r.cls.scale for r in batch}) == 1
            seen.append([r.rid for r in batch])
        # FIFO is preserved: the head run cuts at the first scale change
        assert seen == [[0, 1], [2, 3], [4]]

    def test_default_config_still_mixes(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch=8))
        x2 = RequestClass("x2", patch=48, scale=2)
        x4 = RequestClass("x4", patch=48, scale=4)
        for rid, cls in enumerate([x2, x4]):
            batcher.enqueue(Request(rid=rid, cls=cls, arrival=0.0), now=0.0)
        assert len(batcher.pop_batch(now=10.0)) == 2


class TestVideoServing:
    def test_clean_run_reports_jitter_buffer_slo(self):
        report = simulate_serve(video_scenario(), duration_s=40.0, seed=3)
        s = report.summary
        assert s["completed"] + s["shed"] == s["arrived"]
        v = s["video"]
        assert v["frames_completed"] + v["frames_shed"] == v["frames_arrived"]
        assert v["sessions"] >= 2
        assert 0.0 <= v["late_frame_ratio"] <= 1.0
        assert v["frame_latency_ms"]["p99"] >= v["frame_latency_ms"]["p50"]
        assert any("sessions" in line for line in report.lines())

    def test_image_summaries_carry_no_video_block(self):
        report = simulate_serve(ServeScenario(), duration_s=20.0, seed=0)
        assert "video" not in report.summary

    def test_affinity_pins_every_session_to_one_replica(self):
        report = simulate_serve(video_scenario(), duration_s=40.0, seed=3)
        homes = {}
        for rec in report.ledger.records.values():
            if rec["outcome"] != "completed":
                continue
            homes.setdefault(rec["session"], set()).add(rec["replica"])
        assert homes
        assert all(len(replicas) == 1 for replicas in homes.values())
        assert report.summary["video"]["rehomes"] == 0

    def test_mid_stream_replica_death_rehomes_whole_sessions(self):
        # replica 0 is never the autoscaler's scale-down victim (that is
        # always the highest id), so this failure lands on live streams
        plan = FaultPlan(
            seed=0, faults=(RankFailure(rank=0, time=20.0, down_s=25.0),)
        )
        report = simulate_serve(
            video_scenario(), duration_s=60.0, seed=3, fault_plan=plan
        )
        s = report.summary
        v = s["video"]
        assert s["detections"] >= 1
        assert v["rehomes"] >= 1
        # per-session frame conservation, and a session's completed frames
        # split across at most two homes (pre- and post-failover)
        sessions = {}
        for rec in report.ledger.records.values():
            sessions.setdefault(rec["session"], []).append(rec)
        for recs in sessions.values():
            done = [r for r in recs if r["outcome"] == "completed"]
            shed = [r for r in recs if r["outcome"] == "shed"]
            assert len(done) + len(shed) == len(recs)
            assert len({r["replica"] for r in done}) <= 2
        assert v["frames_completed"] + v["frames_shed"] == v["frames_arrived"]

    def test_video_cell_is_engine_mode_identical(self):
        plan = FaultPlan(
            seed=0, faults=(RankFailure(rank=0, time=20.0, down_s=25.0),)
        )
        exact = simulate_serve(
            video_scenario(), duration_s=40.0, seed=1, fault_plan=plan
        )
        fast = simulate_serve(
            video_scenario(), duration_s=40.0, seed=1, fault_plan=plan,
            engine_mode="fast",
        )
        assert exact.to_payload() == fast.to_payload()

    def test_streaming_classes_imply_affinity(self):
        scenario = ServeScenario(workload=video_workload())
        assert scenario.affinity_active
        assert not ServeScenario().affinity_active


# -- the chaos campaign's video cell -------------------------------------------

class TestVideoChaosCell:
    def test_video_failover_cell_checks_session_conservation(self):
        from repro.chaos import CampaignConfig, run_campaign

        config = CampaignConfig(
            scenarios=("video-failover",), policies=("restart",),
            seeds=1, serve_duration_s=40.0,
        )
        report = run_campaign(config)
        assert report.ok, report.failures()
        (row,) = report.rows
        names = [inv["name"] for inv in row["invariants"]]
        assert "session-conservation" in names
        assert "fast-exact-identity" in names
        assert row["exact"]["summary"]["video"]["rehomes"] >= 1


# -- property-based: video arrival traces --------------------------------------

class TestVideoTraceProperties:
    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(0.5, 6.0))
    @FAST
    def test_trace_deterministic_and_frame_paced(self, seed, rate):
        cfg = WorkloadConfig(kind="video", rate_rps=rate, classes=VIDEO_MIX)
        a = generate_arrivals(cfg, 15.0, seed=seed)
        b = generate_arrivals(cfg, 15.0, seed=seed)
        assert a == b
        times = [r.arrival for r in a]
        assert times == sorted(times)
        by_session = {}
        for r in a:
            by_session.setdefault(r.session, []).append(r)
        for frames in by_session.values():
            frames.sort(key=lambda r: r.frame)
            fps = frames[0].cls.frame_rate_fps
            for prev, cur in zip(frames, frames[1:]):
                assert cur.arrival - prev.arrival \
                    == pytest.approx(1.0 / fps, abs=1e-9)

    @given(seed=st.integers(0, 2**31 - 1))
    @FAST
    def test_every_session_is_a_full_clip(self, seed):
        arrivals = generate_arrivals(video_workload(), 15.0, seed=seed)
        by_session = {}
        for r in arrivals:
            by_session.setdefault(r.session, []).append(r)
        for frames in by_session.values():
            cls = frames[0].cls
            assert len(frames) == cls.frames
            assert sorted(r.frame for r in frames) == list(range(cls.frames))
