"""Tests for models: EDSR/SRCNN/SRResNet/ResNet forward+backward, bicubic,
and consistency between real models and their analytic cost structures."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.hardware import V100_16GB
from repro.models import (
    EDSR,
    EDSR_BASELINE,
    EDSR_PAPER,
    EDSR_TINY,
    RESNET50,
    RESNET_TINY,
    EDSRConfig,
    ModelCostModel,
    ResNet,
    SRCNN,
    SRResNet,
    bicubic_upscale,
    get_model_cost,
    list_model_costs,
)
from repro.models.bicubic import bicubic_downscale, bicubic_resize
from repro.models.costing import ThroughputModel, TrainingMemoryModel
from repro.tensor import Tensor, functional as F
from repro.utils.units import GIB, MIB

RNG = np.random.default_rng(3)


class TestEDSR:
    def test_output_shape_scale2(self):
        model = EDSR(EDSR_TINY)
        x = Tensor(RNG.random((2, 3, 12, 12)).astype(np.float32))
        out = model(x)
        assert out.shape == (2, 3, 24, 24)

    def test_output_shape_scale3_and_4(self):
        for scale in (3, 4):
            cfg = EDSRConfig(name="t", n_resblocks=1, n_feats=4, scale=scale,
                             res_scale=1.0)
            model = EDSR(cfg)
            out = model(Tensor(RNG.random((1, 3, 8, 8)).astype(np.float32)))
            assert out.shape == (1, 3, 8 * scale, 8 * scale)

    def test_backward_reaches_every_parameter(self):
        model = EDSR(EDSR_TINY)
        x = Tensor(RNG.random((1, 3, 8, 8)).astype(np.float32))
        target = Tensor(RNG.random((1, 3, 16, 16)).astype(np.float32))
        loss = F.l1_loss(model(x), target)
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.isfinite(p.grad).all(), f"non-finite gradient for {name}"

    def test_training_step_reduces_loss(self):
        from repro.tensor.optim import Adam

        model = EDSR(EDSR_TINY, rng=np.random.default_rng(0))
        opt = Adam(model.parameters(), lr=1e-3)
        x = Tensor(RNG.random((2, 3, 8, 8)).astype(np.float32))
        target = Tensor(RNG.random((2, 3, 16, 16)).astype(np.float32) * 0.5 + 0.25)
        losses = []
        for _ in range(8):
            model.zero_grad()
            loss = F.mse_loss(model(x), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_upscale_inference_helper(self):
        model = EDSR(EDSR_TINY)
        img = RNG.random((3, 10, 10)).astype(np.float32)
        out = model.upscale(img)
        assert out.shape == (3, 20, 20)

    def test_residual_scaling_applied(self):
        cfg = EDSRConfig(name="t", n_resblocks=1, n_feats=4, res_scale=0.1)
        model = EDSR(cfg)
        assert model.body[0].res_scale == 0.1

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            EDSRConfig(name="bad", scale=5)


class TestBaselines:
    def test_srcnn_preserves_resolution(self):
        model = SRCNN(f1=8, f2=4)
        out = model(Tensor(RNG.random((1, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (1, 3, 16, 16)

    def test_srcnn_upscale_pipeline(self):
        model = SRCNN(f1=8, f2=4)
        out = model.upscale(RNG.random((3, 8, 8)).astype(np.float32), scale=2)
        assert out.shape == (3, 16, 16)

    def test_srresnet_shape_and_backward(self):
        model = SRResNet(n_resblocks=1, n_feats=4, scale=2)
        x = Tensor(RNG.random((1, 3, 8, 8)).astype(np.float32))
        out = model(x)
        assert out.shape == (1, 3, 16, 16)
        F.mse_loss(out, Tensor(np.zeros(out.shape, dtype=np.float32))).backward()
        assert model.head.weight.grad is not None

    def test_resnet_tiny_forward_backward(self):
        model = ResNet(RESNET_TINY)
        x = Tensor(RNG.random((2, 3, 32, 32)).astype(np.float32))
        logits = model(x)
        assert logits.shape == (2, 10)
        F.cross_entropy(logits, np.array([1, 3])).backward()
        assert model.stem.weight.grad is not None
        assert model.fc.weight.grad is not None


class TestBicubic:
    def test_upscale_shape(self):
        img = RNG.random((3, 7, 9)).astype(np.float32)
        assert bicubic_upscale(img, 2).shape == (3, 14, 18)

    def test_constant_image_preserved(self):
        img = np.full((3, 8, 8), 0.5, dtype=np.float32)
        out = bicubic_upscale(img, 2)
        np.testing.assert_allclose(out, 0.5, atol=1e-5)

    def test_downscale_then_upscale_approximates_identity_for_smooth(self):
        yy, xx = np.mgrid[0:16, 0:16] / 16.0
        img = np.stack([yy, xx, (yy + xx) / 2]).astype(np.float32)
        recovered = bicubic_upscale(bicubic_downscale(img, 2), 2)
        interior = (slice(None), slice(2, -2), slice(2, -2))
        assert np.abs(recovered[interior] - img[interior]).mean() < 0.02

    def test_identity_resize(self):
        img = RNG.random((3, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(bicubic_resize(img, 8, 8), img)

    def test_non_divisible_downscale_rejected(self):
        with pytest.raises(DataError):
            bicubic_downscale(np.zeros((3, 9, 9), dtype=np.float32), 2)


class TestCostModels:
    @pytest.mark.parametrize("config", [EDSR_TINY, EDSR_BASELINE])
    def test_edsr_cost_params_match_real_model(self, config):
        real = EDSR(config)
        cost = ModelCostModel.for_edsr(config)
        assert cost.total_params == real.num_parameters()

    def test_resnet_tiny_cost_params_match_real_model(self):
        real = ResNet(RESNET_TINY)
        cost = ModelCostModel.for_resnet(RESNET_TINY)
        # BatchNorm affine params exist only in the real model
        bn_params = sum(
            p.size for name, p in real.named_parameters() if "bn" in name or "_bn" in name
        )
        assert cost.total_params == real.num_parameters() - bn_params

    def test_paper_scale_edsr_magnitude(self):
        cost = get_model_cost("edsr-paper")
        assert 35e6 < cost.total_params < 50e6  # ~43M in the EDSR paper
        assert 150 * MIB < cost.gradient_bytes < 180 * MIB
        assert 150e9 < cost.flops_forward < 220e9

    def test_fig1_throughput_anchors(self):
        """Single-V100 anchors from the paper: EDSR ~10.3, ResNet-50 ~360."""
        edsr = ThroughputModel(get_model_cost("edsr-paper"), V100_16GB)
        resnet = ThroughputModel(get_model_cost("resnet-50"), V100_16GB)
        assert edsr.images_per_second(4) == pytest.approx(10.3, rel=0.1)
        assert resnet.images_per_second(32) == pytest.approx(360, rel=0.1)

    def test_throughput_saturates_with_batch(self):
        tm = ThroughputModel(get_model_cost("edsr-paper"), V100_16GB)
        rates = [tm.images_per_second(b) for b in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] < 2 * rates[0]  # saturating, not linear

    def test_gradient_schedule_totals_and_order(self):
        cost = get_model_cost("edsr-paper")
        sched = cost.gradient_schedule()
        assert sum(t.nbytes for t in sched) == cost.gradient_bytes
        fractions = [t.ready_fraction for t in sched]
        assert fractions == sorted(fractions)
        assert sched[0].name.startswith("tail")  # backward starts at the tail
        assert sched[-1].name.startswith("head")
        assert fractions[-1] == pytest.approx(1.0)

    def test_memory_model_oom_boundary(self):
        cost = get_model_cost("edsr-paper")
        mm = TrainingMemoryModel(cost)
        hbm = V100_16GB.memory_bytes
        assert mm.bytes_required(4) < 2 * GIB
        max_batch = mm.max_batch(hbm)
        assert 16 < max_batch < 200
        assert mm.bytes_required(max_batch) <= hbm
        assert mm.bytes_required(max_batch + 1) > hbm

    def test_registry(self):
        assert "edsr-paper" in list_model_costs()
        with pytest.raises(ConfigError):
            get_model_cost("nope")

    def test_resnet50_flops_magnitude(self):
        cost = get_model_cost("resnet-50")
        # ~4.1 GMAC = ~8.2 GFLOP forward at 224x224
        assert 7e9 < cost.flops_forward < 9.5e9
        assert 23e6 < cost.total_params < 27e6


class TestScaleVariantCosts:
    """Cost structures must match the real models at every upscale factor."""

    @pytest.mark.parametrize("scale", [2, 3, 4])
    def test_tiny_edsr_cost_matches_real_at_scale(self, scale):
        cfg = EDSRConfig(name=f"t{scale}", n_resblocks=2, n_feats=8,
                         scale=scale, res_scale=1.0)
        real = EDSR(cfg)
        cost = ModelCostModel.for_edsr(cfg)
        assert cost.total_params == real.num_parameters()

    @pytest.mark.parametrize("scale", [2, 3, 4])
    def test_output_resolution_scales_flops(self, scale):
        cfg = EDSRConfig(name=f"t{scale}", n_resblocks=2, n_feats=8,
                         scale=scale, res_scale=1.0)
        cost = ModelCostModel.for_edsr(cfg, patch=16)
        tail = next(l for l in cost.layers if l.name == "tail")
        # tail conv runs at the upscaled resolution
        assert tail.flops_forward == pytest.approx(
            2.0 * (16 * scale) ** 2 * 8 * 3 * 9
        )

    def test_patch_size_scales_cost_quadratically(self):
        small = ModelCostModel.for_edsr(EDSR_TINY, patch=16)
        large = ModelCostModel.for_edsr(EDSR_TINY, patch=32)
        assert large.flops_forward == pytest.approx(4 * small.flops_forward)
        assert large.total_params == small.total_params
