"""Tests for the point-to-point layer: matching, protocols, errors."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MpiError, MpiTruncateError
from repro.hardware import LASSEN, Cluster
from repro.mpi import Mv2Config, WorldSpec, build_world
from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, P2PFabric, RecvStatus
from repro.mpi.process import SingletonDevicePolicy
from repro.mpi.transports import TransportModel
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_fabric(num_nodes=1, eager_threshold=16 * KIB):
    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=num_nodes)
    config = Mv2Config(
        mv2_visible_devices="all",
        registration_cache=True,
        eager_threshold=eager_threshold,
    )
    spec = WorldSpec(num_ranks=cluster.num_gpus, policy=SingletonDevicePolicy(),
                     config=config)
    ranks = build_world(cluster, spec)
    transport = TransportModel(cluster, config, ranks)
    return env, P2PFabric(transport)


class TestBasicMessaging:
    def test_send_recv_delivers_data(self):
        env, fabric = make_fabric()
        payload = np.arange(64, dtype=np.float32)
        out = np.zeros(64, dtype=np.float32)

        fabric.isend(0, 1, tag=5, data=payload)
        done = fabric.irecv(1, source=0, tag=5, out=out)
        env.run()
        assert done.value == RecvStatus(source=0, tag=5, nbytes=256)
        np.testing.assert_array_equal(out, payload)

    def test_recv_posted_before_send(self):
        env, fabric = make_fabric()
        out = np.zeros(8, dtype=np.float32)
        done = fabric.irecv(1, source=0, tag=1, out=out)
        fabric.isend(0, 1, tag=1, data=np.full(8, 3.0, dtype=np.float32))
        env.run()
        assert done.triggered
        np.testing.assert_array_equal(out, 3.0)

    def test_send_buffer_copied_at_send_time(self):
        """Mutating the user buffer after isend must not corrupt delivery."""
        env, fabric = make_fabric()
        payload = np.ones(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        fabric.isend(0, 1, data=payload)
        payload[:] = 99.0  # user scribbles after send
        fabric.irecv(1, source=0, out=out)
        env.run()
        np.testing.assert_array_equal(out, 1.0)

    def test_virtual_sizes_without_data(self):
        env, fabric = make_fabric()
        fabric.isend(0, 1, nbytes=1 * MIB)
        done = fabric.irecv(1, source=0, nbytes=1 * MIB)
        env.run()
        assert done.value.nbytes == 1 * MIB
        assert env.now > 0


class TestMatching:
    def test_tag_matching_is_selective(self):
        env, fabric = make_fabric()
        out_a = np.zeros(4, dtype=np.float32)
        out_b = np.zeros(4, dtype=np.float32)
        fabric.isend(0, 1, tag=7, data=np.full(4, 7.0, dtype=np.float32))
        fabric.isend(0, 1, tag=8, data=np.full(4, 8.0, dtype=np.float32))
        fabric.irecv(1, source=0, tag=8, out=out_b)
        fabric.irecv(1, source=0, tag=7, out=out_a)
        env.run()
        np.testing.assert_array_equal(out_a, 7.0)
        np.testing.assert_array_equal(out_b, 8.0)

    def test_fifo_order_within_same_tag(self):
        env, fabric = make_fabric()
        first = np.zeros(4, dtype=np.float32)
        second = np.zeros(4, dtype=np.float32)
        fabric.isend(0, 1, tag=1, data=np.full(4, 1.0, dtype=np.float32))
        fabric.isend(0, 1, tag=1, data=np.full(4, 2.0, dtype=np.float32))
        fabric.irecv(1, source=0, tag=1, out=first)
        fabric.irecv(1, source=0, tag=1, out=second)
        env.run()
        np.testing.assert_array_equal(first, 1.0)
        np.testing.assert_array_equal(second, 2.0)

    def test_any_source_any_tag_wildcards(self):
        env, fabric = make_fabric()
        out = np.zeros(4, dtype=np.float32)
        done = fabric.irecv(3, source=ANY_SOURCE, tag=ANY_TAG, out=out)
        fabric.isend(2, 3, tag=42, data=np.full(4, 5.0, dtype=np.float32))
        env.run()
        assert done.value.source == 2
        assert done.value.tag == 42
        np.testing.assert_array_equal(out, 5.0)

    def test_unmatched_recv_is_deadlock(self):
        env, fabric = make_fabric()

        def waiter(env):
            status = yield fabric.irecv(1, source=0, nbytes=64)
            return status

        env.process(waiter(env))
        with pytest.raises(DeadlockError):
            env.run()


class TestProtocols:
    def test_eager_send_completes_without_receiver(self):
        """Eager sends buffer and complete locally; message waits."""
        env, fabric = make_fabric()
        done = fabric.isend(0, 1, data=np.ones(16, dtype=np.float32))  # 64B eager
        env.run(until=done)
        assert done.triggered
        assert fabric.pending_counts() == (1, 0)  # unexpected message queued

    def test_rendezvous_send_blocks_until_recv_posts(self):
        env, fabric = make_fabric(eager_threshold=1 * KIB)
        nbytes = 1 * MIB  # rendezvous
        send_done = fabric.isend(0, 1, nbytes=nbytes)

        times = {}

        def poster(env):
            yield env.timeout(0.5)  # receiver arrives late
            done = fabric.irecv(1, source=0, nbytes=nbytes)
            yield done
            times["recv_done"] = env.now

        env.process(poster(env))
        env.run()
        assert send_done.triggered
        # wire time could not start before the CTS at t=0.5
        assert times["recv_done"] > 0.5

    def test_eager_payload_travels_before_recv(self):
        """Eager wire time elapses even when the recv posts very late."""
        env, fabric = make_fabric()
        fabric.isend(0, 1, data=np.ones(16, dtype=np.float32))

        def poster(env):
            yield env.timeout(1.0)
            status = yield fabric.irecv(1, source=0, nbytes=64)
            return env.now

        p = env.process(poster(env))
        env.run()
        # delivery is immediate at match time: the payload already arrived
        assert p.value == pytest.approx(1.0, abs=1e-3)

    def test_rendezvous_deadlock_two_blocking_sends(self):
        """Classic MPI deadlock: both ranks send (rendezvous) then recv."""
        env, fabric = make_fabric(eager_threshold=1 * KIB)
        nbytes = 1 * MIB

        def rank_proc(me, peer):
            yield from fabric.send(me, peer, nbytes=nbytes)
            yield from fabric.recv(me, source=peer, nbytes=nbytes)

        env.process(rank_proc(0, 1))
        env.process(rank_proc(1, 0))
        with pytest.raises(DeadlockError):
            env.run()

    def test_sendrecv_breaks_the_deadlock(self):
        """The same exchange via sendrecv completes (ring-step primitive)."""
        env, fabric = make_fabric(eager_threshold=1 * KIB)
        nbytes = 1 * MIB

        def rank_proc(me, peer):
            status = yield from fabric.sendrecv(
                me, dst=peer, src=peer,
                send_kwargs={"nbytes": nbytes},
                recv_kwargs={"nbytes": nbytes},
            )
            return status

        p0 = env.process(rank_proc(0, 1))
        p1 = env.process(rank_proc(1, 0))
        env.run()
        assert p0.value.nbytes == nbytes
        assert p1.value.nbytes == nbytes


class TestErrors:
    def test_truncation_raises(self):
        env, fabric = make_fabric()
        fabric.isend(0, 1, data=np.ones(64, dtype=np.float32))  # 256B
        fabric.irecv(1, source=0, nbytes=64)  # too small
        with pytest.raises(MpiTruncateError):
            env.run()

    def test_bad_rank_rejected(self):
        _, fabric = make_fabric()
        with pytest.raises(Exception):
            fabric.isend(0, 99, nbytes=8)

    def test_send_needs_size_or_data(self):
        _, fabric = make_fabric()
        with pytest.raises(MpiError):
            fabric.isend(0, 1)

    def test_self_send_rejected(self):
        _, fabric = make_fabric()
        with pytest.raises(MpiError):
            fabric.isend(1, 1, nbytes=8)


class TestTimingConsistency:
    def test_rendezvous_inter_node_takes_wire_time(self):
        env, fabric = make_fabric(num_nodes=2, eager_threshold=1 * KIB)
        nbytes = 32 * MIB
        fabric.isend(0, 4, nbytes=nbytes)
        done = fabric.irecv(4, source=0, nbytes=nbytes)
        env.run()
        wire_floor = nbytes / LASSEN.ib.bandwidth
        assert env.now >= wire_floor

    def test_many_messages_all_delivered(self):
        env, fabric = make_fabric()
        outs = []
        for i in range(10):
            fabric.isend(0, 1, tag=i, data=np.full(4, float(i), dtype=np.float32))
        for i in range(10):
            out = np.zeros(4, dtype=np.float32)
            outs.append(out)
            fabric.irecv(1, source=0, tag=i, out=out)
        env.run()
        for i, out in enumerate(outs):
            np.testing.assert_array_equal(out, float(i))
        assert fabric.messages_delivered == 10
