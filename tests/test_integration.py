"""Cross-stack integration tests and failure injection.

These exercise multiple subsystems together: functional training over both
backends, event-mode collectives fed by Horovod, memory-pressure failure
paths, checkpoint/resume of distributed runs, and the Horovod auto-tuner.
"""

import numpy as np
import pytest

from repro.core import MPI_DEFAULT, MPI_OPT, HorovodTuner, ScalingStudy, StudyConfig
from repro.core.tuning import TuningResult
from repro.cuda import CudaRuntime, VisibilityMask
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.errors import ConfigError, CudaOutOfMemoryError
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY, get_model_cost
from repro.models.costing import TrainingMemoryModel
from repro.mpi import MpiWorld, WorldSpec
from repro.mpi.collectives import ExecutionMode
from repro.mpi.comm import GpuBuffer
from repro.nccl import NcclWorld
from repro.profiling import Hvprof
from repro.sim import Environment
from repro.trainer import (
    DistributedTrainer,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.units import GIB, MIB


@pytest.fixture(scope="module")
def dataset():
    src = SyntheticDiv2k(height=32, width=32, seed=3)
    return SRDataset(src, split="train", degradation=DegradationConfig(scale=2))


def make_engine(num_gpus=2, scenario=MPI_OPT, mode=ExecutionMode.ANALYTIC):
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, num_gpus // 4))
    spec = WorldSpec(num_ranks=num_gpus, policy=scenario.policy,
                     config=scenario.mv2)
    world = MpiWorld(cluster, spec, mode=mode)
    return HorovodEngine(world.communicator(), HorovodConfig(cycle_time_s=1e-3))


class TestBackendParity:
    def test_nccl_and_mpi_functional_training_agree(self, dataset):
        """Same seeds, different backends: the numerics must be identical
        (both compute the same averaged gradients)."""
        losses = {}
        for backend in ("mpi", "nccl"):
            if backend == "mpi":
                engine = make_engine(2)
            else:
                cluster = Cluster(Environment(), LASSEN, num_nodes=1)
                world = NcclWorld(cluster, 2)
                engine = HorovodEngine(
                    world.communicator(), HorovodConfig(cycle_time_s=1e-3)
                )
            trainer = DistributedTrainer(
                lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
                engine, dataset, batch_per_rank=1, lr_patch=8, seed=4,
            )
            result = trainer.train(steps=3)
            losses[backend] = result.losses
        np.testing.assert_allclose(losses["mpi"], losses["nccl"], rtol=1e-6)

    def test_hvprof_attaches_to_both_backends(self):
        """The profiler is backend-agnostic (paper §I: 'agnostic to the DL
        framework, communication backend, and system')."""
        hv = Hvprof()
        engine = make_engine(4)
        engine.comm.add_observer(hv.observer)
        engine.comm.allreduce([GpuBuffer.virtual(1 * MIB) for _ in range(4)])

        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        nccl = NcclWorld(cluster, 4).communicator()
        nccl.add_observer(hv.observer)
        nccl.allreduce([GpuBuffer.virtual(1 * MIB) for _ in range(4)])

        backends = {r.backend for r in hv.records}
        assert backends == {"mpi", "nccl"}


class TestEventModeIntegration:
    def test_functional_allreduce_through_event_engine(self):
        """Real data + event-driven timing in one call."""
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        spec = WorldSpec(num_ranks=8, policy=MPI_OPT.policy, config=MPI_OPT.mv2)
        world = MpiWorld(cluster, spec, mode=ExecutionMode.EVENT)
        comm = world.communicator()
        arrays = [np.full(1024, float(r), dtype=np.float32) for r in range(8)]
        timing = comm.allreduce([GpuBuffer.from_array(a) for a in arrays])
        for a in arrays:
            np.testing.assert_allclose(a, sum(range(8)))
        assert timing.time > 0
        assert timing.mode is ExecutionMode.EVENT

    def test_event_mode_study_point_close_to_analytic(self):
        fast = StudyConfig(measure_steps=1, warmup_steps=0)
        analytic = ScalingStudy(MPI_OPT, fast).run_point(8)
        # event mode through the same study machinery
        from repro.horovod.backend import build_backend
        from repro.hardware.cluster import build_cluster
        from repro.horovod.engine import HorovodEngine as HE

        cluster = build_cluster(LASSEN, 8)
        spec = WorldSpec(num_ranks=8, policy=MPI_OPT.policy, config=MPI_OPT.mv2)
        world, comm = build_backend(cluster, "mpi", world_spec=spec,
                                    mode=ExecutionMode.EVENT)
        study = ScalingStudy(MPI_OPT, fast)
        engine = HE(comm, fast.horovod)
        stream = study._gradient_stream(analytic.backward_time)
        timing = engine.run_step(stream, backward_time=analytic.backward_time)
        assert timing.comm_finish == pytest.approx(
            analytic.exposed_comm_time + analytic.backward_time, rel=0.6
        )


class TestFailureInjection:
    def test_oom_when_activations_exceed_hbm(self):
        """Driving the CUDA memory model past 16 GB raises with diagnostics."""
        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        runtime = CudaRuntime(cluster, 0)
        ctx = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
        memory_model = TrainingMemoryModel(get_model_cost("edsr-paper"))
        ctx.malloc(memory_model.fixed_bytes(), tag="params+opt")
        per_image = memory_model.per_image_bytes()
        with pytest.raises(CudaOutOfMemoryError) as excinfo:
            for image in range(200):
                ctx.malloc(per_image, tag="activations")
        assert "activations" in str(excinfo.value)
        # OOM must not corrupt the pool: freeing everything recovers
        ctx.destroy()
        assert cluster.gpu_memory(cluster.gpu_ref(0)).used == 0

    def test_overhead_kernels_trigger_earlier_oom(self):
        """Fig. 6a as a failure mode: remote-process contexts steal the HBM
        that the large-batch run needed."""
        def max_allocs(extra_contexts):
            cluster = Cluster(Environment(), LASSEN, num_nodes=1)
            runtime = CudaRuntime(cluster, 0)
            ctx = runtime.create_context(pid=1, mask=VisibilityMask.single(0))
            for pid in range(2, 2 + extra_contexts):
                other = runtime.create_context(
                    pid=pid, mask=VisibilityMask.all_devices(4)
                )
                other.touch_all_visible()
            count = 0
            try:
                while True:
                    ctx.malloc(1 * GIB, tag="batch")
                    count += 1
            except CudaOutOfMemoryError:
                return count

        assert max_allocs(extra_contexts=3) < max_allocs(extra_contexts=0)

    def test_mismatched_gradient_stream_rejected(self, dataset):
        from repro.errors import HorovodError
        from repro.horovod.fusion import PendingTensor

        engine = make_engine(2)
        bad = PendingTensor("g", 8, data=[np.zeros(2, dtype=np.float32)])
        with pytest.raises(HorovodError):
            engine.run_step([bad])

    def test_study_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            StudyConfig(batch_per_gpu=0)
        with pytest.raises(ConfigError):
            StudyConfig(measure_steps=0)


class TestCheckpointResume:
    def test_distributed_resume_preserves_sync_and_progress(self, dataset, tmp_path):
        engine = make_engine(2)
        factory = lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(80 + rank))
        trainer = DistributedTrainer(
            factory, engine, dataset, batch_per_rank=1, lr_patch=8, seed=9,
        )
        trainer.train(steps=3)
        path = str(tmp_path / "dist.npz")
        save_checkpoint(trainer.models[0], path, step=3)

        engine2 = make_engine(2)
        resumed = DistributedTrainer(
            factory, engine2, dataset, batch_per_rank=1, lr_patch=8, seed=9,
        )
        step = load_checkpoint(resumed.models[0], path)
        assert step == 3
        # re-broadcast rank 0's weights to the other replicas
        from repro.horovod.optimizer import broadcast_parameters

        broadcast_parameters(resumed.models, engine2)
        assert resumed.replicas_in_sync()
        for (_, p1), (_, p2) in zip(
            trainer.models[0].named_parameters(),
            resumed.models[0].named_parameters(),
        ):
            np.testing.assert_array_equal(p1.data, p2.data)
        result = resumed.train(steps=2)
        assert result.steps == 2
        assert resumed.replicas_in_sync()


class TestAutoTuner:
    def test_tuner_beats_stock_cycle_for_default_mpi(self):
        """§II-D tuning: for the EDSR stream on default MVAPICH2 at one
        node, a longer-than-stock cycle (more fusion, fewer staged
        messages) wins."""
        tuner = HorovodTuner(
            MPI_DEFAULT,
            thresholds=(64 * MIB,),
            cycle_times=(3.5e-3, 25e-3),
            base_config=StudyConfig(measure_steps=1),
        )
        result = tuner.tune(num_gpus=4)
        assert isinstance(result, TuningResult)
        assert result.best.cycle_time_s == pytest.approx(25e-3)
        assert result.improvement_over(64 * MIB, 3.5e-3) > 1.02

    def test_tuner_grid_complete(self):
        tuner = HorovodTuner(
            MPI_OPT,
            thresholds=(32 * MIB, 64 * MIB),
            cycle_times=(10e-3, 55e-3),
            base_config=StudyConfig(measure_steps=1),
        )
        result = tuner.tune(num_gpus=4)
        assert len(result.grid) == 4
        assert result.best_images_per_second == max(r for _, _, r in result.grid)

    def test_unknown_grid_point_rejected(self):
        tuner = HorovodTuner(
            MPI_OPT, thresholds=(64 * MIB,), cycle_times=(55e-3,),
            base_config=StudyConfig(measure_steps=1),
        )
        result = tuner.tune(num_gpus=4)
        with pytest.raises(ConfigError):
            result.improvement_over(1, 1.0)
