"""Tests for the hybrid (dp x tp x pp) parallelism subsystem.

Layout validation messages, cost-model partitioning invariants, the
reduce-scatter collectives backing tensor parallelism, digest separation
of hybrid points, the steady-state detector's rearm-on-layout-change
guard, and the planner's byte-identical determinism across jobs=1 /
jobs=N / warm-cache runs.
"""

import json

import numpy as np
import pytest

from repro.core.scenarios import scenario_by_name
from repro.core.study import ScalingStudy, StudyConfig
from repro.errors import ConfigError, MpiError
from repro.hardware import LASSEN
from repro.hardware.cluster import build_cluster
from repro.horovod.backend import build_backend
from repro.models import get_model_cost
from repro.mpi.comm import GpuBuffer
from repro.parallel import (
    ParallelLayout,
    model_width,
    shard_layer,
    split_stage_bounds,
    stage_models,
)
from repro.parallel.executor import HybridExecutor, dp_cluster_spec
from repro.parallel.planner import (
    PlannerConfig,
    _PLAN_MEMO,
    enumerate_layouts,
    plan_hybrid,
)
from repro.perf.steady import SteadyStateDetector
from repro.utils.units import MIB


EDSR = get_model_cost("edsr-paper")


class TestLayoutValidation:
    def test_dp_product_must_equal_world(self):
        with pytest.raises(ConfigError, match="must equal world size"):
            ParallelLayout(dp=3, tp=2, pp=2).resolved(16)

    def test_footprint_must_divide_world(self):
        with pytest.raises(ConfigError, match="does not divide world size"):
            ParallelLayout(tp=2, pp=3, microbatches=3).resolved(16)

    def test_tp_must_divide_model_width(self):
        with pytest.raises(ConfigError, match="must divide model width"):
            ParallelLayout(tp=3).validate_model(EDSR)

    def test_microbatches_must_divide_batch(self):
        layout = ParallelLayout(tp=1, pp=2, microbatches=16)
        with pytest.raises(ConfigError, match="must divide the global batch"):
            layout.validate_batch(3)

    def test_pipeline_deeper_than_model_rejected(self):
        deep = ParallelLayout(pp=len(EDSR.layers) + 1,
                              microbatches=len(EDSR.layers) + 1)
        with pytest.raises(ConfigError, match="exceeds the model's"):
            deep.validate_model(EDSR)

    def test_footprint_must_pack_into_nodes(self):
        with pytest.raises(ConfigError, match="pack evenly into nodes"):
            ParallelLayout(tp=2, pp=3, microbatches=3).validate_cluster(4)

    def test_microbatching_requires_pipeline(self):
        with pytest.raises(ConfigError, match="microbatches"):
            ParallelLayout(microbatches=4)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigError, match="schedule"):
            ParallelLayout(pp=2, microbatches=2, schedule="zigzag")

    def test_dp_auto_derivation(self):
        layout = ParallelLayout(tp=2, pp=2, microbatches=4).resolved(16)
        assert layout.dp == 4
        assert not layout.is_pure_dp
        assert ParallelLayout().resolved(8).dp == 8
        assert ParallelLayout().is_pure_dp

    def test_hybrid_rejects_local_sgd(self):
        with pytest.raises(ConfigError, match="local-SGD"):
            StudyConfig(layout=ParallelLayout(tp=2), local_sgd_h=4)

    def test_layout_type_checked(self):
        with pytest.raises(ConfigError, match="must be a ParallelLayout"):
            StudyConfig(layout="tp2")


class TestPartitioning:
    def test_shard_divides_exactly(self):
        width = model_width(EDSR)
        assert width == 1024
        for layer in EDSR.layers:
            shard = shard_layer(layer, 2)
            if layer.cout % 2 == 0 and layer.cout > 0:
                assert shard.params * 2 == layer.params
                assert shard.activation_bytes * 2 == layer.activation_bytes
                assert shard.flops_forward * 2 == layer.flops_forward
            else:
                assert shard is layer  # replicated

    def test_stage_bounds_contiguous_and_nonempty(self):
        for pp in (1, 2, 3, 4):
            bounds = split_stage_bounds(EDSR.layers, pp)
            assert len(bounds) == pp
            assert bounds[0][0] == 0
            assert bounds[-1][1] == len(EDSR.layers)
            for (s0, e0), (s1, _e1) in zip(bounds, bounds[1:]):
                assert e0 == s1
            assert all(e > s for s, e in bounds)

    def test_params_conserved_across_grid(self):
        for tp, pp in ((1, 1), (2, 2), (4, 3), (1, 4)):
            layout = ParallelLayout(
                tp=tp, pp=pp, microbatches=pp if pp > 1 else 1)
            stages = stage_models(EDSR, layout)
            total = 0
            for stage in stages:
                sharded = set(stage.sharded_layers)
                for layer in stage.cost.layers:
                    total += (
                        layer.params * tp if layer.name in sharded
                        else layer.params
                    )
            assert total == EDSR.total_params

    def test_boundary_is_unsharded_activation(self):
        layout = ParallelLayout(tp=4, pp=2, microbatches=2)
        stages = stage_models(EDSR, layout)
        bounds = split_stage_bounds(EDSR.layers, 2)
        cut = EDSR.layers[bounds[0][1] - 1]
        assert stages[0].boundary_activation_bytes == cut.activation_bytes
        assert stages[-1].boundary_activation_bytes == 0

    def test_dp_cluster_spec_packing(self):
        spec = dp_cluster_spec(LASSEN, ParallelLayout(tp=2, dp=8))
        assert spec.node.gpus_per_node == 2
        assert spec.ib is LASSEN.ib
        whole = dp_cluster_spec(LASSEN, ParallelLayout(tp=4, pp=2, dp=8,
                                                       microbatches=2))
        assert whole.node.gpus_per_node == 1


class TestReduceScatter:
    def test_hierarchical_mirrors_allgather(self):
        _, comm = build_backend(
            build_cluster(LASSEN, 8), "hierarchical", num_ranks=8)
        _, ag = comm.allgather([GpuBuffer.virtual(MIB) for _ in range(8)])
        _, rs = comm.reduce_scatter(
            [GpuBuffer.virtual(8 * MIB) for _ in range(8)])
        assert rs.time == ag.time  # exact byte-mirror of the same segments
        assert rs.op == "reduce_scatter"
        assert rs.time > 0

    def test_hierarchical_functional(self):
        _, comm = build_backend(
            build_cluster(LASSEN, 4), "hierarchical", num_ranks=4)
        arrays = [
            np.full(8, float(r + 1), dtype=np.float32) for r in range(4)
        ]
        shards, _ = comm.reduce_scatter(
            [GpuBuffer.from_array(a) for a in arrays])
        assert len(shards) == 4
        for shard in shards:
            np.testing.assert_array_equal(shard, 10.0)  # 1+2+3+4

    def test_hierarchical_divisibility_validated(self):
        from repro.errors import CommError

        _, comm = build_backend(
            build_cluster(LASSEN, 4), "hierarchical", num_ranks=4)
        with pytest.raises(CommError):
            comm.reduce_scatter([GpuBuffer.virtual(6) for _ in range(4)])

    def test_mpi_ring_reduce_scatter(self):
        from tests.test_extra_collectives import make_comm

        comm = make_comm(4)
        arrays = [
            np.arange(8, dtype=np.float32) * (r + 1) for r in range(4)
        ]
        shards, timing = comm.reduce_scatter(
            [GpuBuffer.from_array(a) for a in arrays])
        np.testing.assert_array_equal(
            np.concatenate(shards), np.arange(8, dtype=np.float32) * 10)
        assert timing.time > 0
        with pytest.raises(MpiError):
            comm.reduce_scatter([GpuBuffer.virtual(6) for _ in range(4)])


class TestDigestSeparation:
    """Satellite 2: hybrid layouts fold into the point digest."""

    def test_salt_bumped(self):
        from repro.perf.digest import CACHE_VERSION_SALT

        assert CACHE_VERSION_SALT == "repro-perf-v9"

    def test_layouts_never_share_cache_entries(self):
        scn = scenario_by_name("MPI-Opt")
        digests = {
            ScalingStudy(scn, StudyConfig(layout=layout)).point_digest(16)
            for layout in (
                ParallelLayout(),
                ParallelLayout(tp=2),
                ParallelLayout(tp=4),
                ParallelLayout(pp=2, microbatches=4),
                ParallelLayout(pp=2, microbatches=8),
                ParallelLayout(tp=2, pp=2, microbatches=4),
                ParallelLayout(tp=2, pp=2, microbatches=4,
                               schedule="gpipe"),
            )
        }
        assert len(digests) == 7


class TestSteadyRearm:
    """Satellite 6: the detector re-arms when the layout changes."""

    def test_rearm_if_changed_unit(self):
        det = SteadyStateDetector(window=2)
        assert det.rearm_if_changed(("a", 1)) is False  # first context
        det.observe(1.0)
        det.observe(1.0)
        assert det.converged()
        assert det.rearm_if_changed(("a", 1)) is False  # unchanged
        assert det.converged()
        assert det.rearm_if_changed(("a", 2)) is True  # changed: re-armed
        assert det.samples == []
        assert not det.converged()

    def test_executor_rearms_on_layout_change(self):
        # a tolerance wide enough that a window straddling two layouts
        # would (wrongly) pass: without the re-arm, point B would stop
        # after one simulated step and extrapolate a mean polluted by
        # layout A's converged window
        cfg = StudyConfig(
            jitter_sigma=0.0, measure_steps=10,
            steady_window=3, steady_rel_tol=0.9,
        )
        shared = HybridExecutor(ScalingStudy(scenario_by_name("MPI-Opt"), cfg))
        a = shared.run(16, ParallelLayout(pp=2, microbatches=4))
        assert a.extrapolated_steps > 0  # converged early
        b = shared.run(16, ParallelLayout(pp=4, microbatches=8))
        fresh = HybridExecutor(
            ScalingStudy(scenario_by_name("MPI-Opt"), cfg)
        ).run(16, ParallelLayout(pp=4, microbatches=8))
        assert b.simulated_steps >= cfg.steady_window
        assert b.step_time == fresh.step_time
        assert b.step_time != a.step_time


class TestHybridExecution:
    def test_degenerate_layout_matches_pure_dp(self):
        scn = scenario_by_name("MPI-Opt")
        pure = ScalingStudy(scn, StudyConfig()).run_point(8)
        explicit = ScalingStudy(
            scn, StudyConfig(layout=ParallelLayout(dp=8))
        ).run_point(8)
        assert explicit.parallelism is None  # routed through the dp path
        assert explicit.step_time == pure.step_time

    def test_parallelism_report_shape(self):
        scn = scenario_by_name("MPI-Opt")
        point = ScalingStudy(
            scn,
            StudyConfig(layout=ParallelLayout(tp=2, pp=2, microbatches=4)),
        ).run_point(16)
        par = point.parallelism
        assert par["dp"] == 4 and par["tp"] == 2 and par["pp"] == 2
        assert par["bubble_fraction"] == pytest.approx(1 / 5)
        assert par["tp_comm_time"] > 0
        assert par["pp_hop_time"] > 0
        assert len(par["stage_bounds"]) == 2

    def test_hybrid_rejects_fault_plans(self):
        from repro.faults import FaultPlan, RankFailure

        study = ScalingStudy(
            scenario_by_name("MPI-Opt"),
            StudyConfig(layout=ParallelLayout(tp=2)),
            fault_plan=FaultPlan(seed=1, faults=[RankFailure(rank=0,
                                                             time=1.0)]),
        )
        with pytest.raises(ConfigError, match="fault plans"):
            study.run_point(8)

    def test_oom_layout_rejected(self):
        # GPipe holds every microbatch live; a huge per-replica batch on
        # one stage must trip the simulated-OOM check
        study = ScalingStudy(
            scenario_by_name("MPI-Opt"),
            StudyConfig(
                batch_per_gpu=512,
                layout=ParallelLayout(pp=2, microbatches=2,
                                      schedule="gpipe"),
            ),
        )
        with pytest.raises(ConfigError, match="simulated OOM"):
            study.run_point(8)


class TestTrainerLayout:
    @staticmethod
    def _parts():
        from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
        from repro.hardware import Cluster
        from repro.horovod import HorovodConfig, HorovodEngine
        from repro.models import EDSR as EDSRModel, EDSR_TINY
        from repro.mpi import MpiWorld, Mv2Config, WorldSpec
        from repro.mpi.process import SingletonDevicePolicy
        from repro.sim import Environment

        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        spec = WorldSpec(
            num_ranks=4, policy=SingletonDevicePolicy(),
            config=Mv2Config(mv2_visible_devices="all",
                             registration_cache=True))
        engine = HorovodEngine(
            MpiWorld(cluster, spec).communicator(),
            HorovodConfig(cycle_time_s=2e-3))
        dataset = SRDataset(
            SyntheticDiv2k(height=24, width=24, seed=7), split="train",
            degradation=DegradationConfig(scale=2))
        factory = (lambda rank:
                   EDSRModel(EDSR_TINY, rng=np.random.default_rng(50 + rank)))
        return factory, engine, dataset

    def test_functional_trainer_rejects_model_parallel(self):
        from repro.trainer import DistributedTrainer

        factory, engine, dataset = self._parts()
        with pytest.raises(ConfigError, match="data-parallel only"):
            DistributedTrainer(
                factory, engine, dataset, batch_per_rank=1, lr_patch=8,
                layout=ParallelLayout(tp=2))

    def test_functional_trainer_accepts_pure_dp_layout(self):
        from repro.trainer import DistributedTrainer

        factory, engine, dataset = self._parts()
        trainer = DistributedTrainer(
            factory, engine, dataset, batch_per_rank=1, lr_patch=8,
            layout=ParallelLayout())
        assert trainer.layout.is_pure_dp


class TestFastpathStats:
    def test_stats_surface(self):
        from repro.sim import enable_fastpath, fastpath_stats
        from repro.mpi.collectives.allreduce import allreduce_timing
        from tests.test_mpi_collectives import make_world

        world = make_world(4)
        assert fastpath_stats(world) is None  # nothing attached yet
        session = enable_fastpath(world)
        assert session is not None
        for _ in range(3):
            allreduce_timing(world.coster, list(range(4)), 4 * MIB,
                             algorithm="ring")
        stats = fastpath_stats(world)
        assert stats == session.stats()
        assert stats["replayed_transfers"] > 0


class TestPlanner:
    def test_config_validation(self):
        with pytest.raises(ConfigError, match="ranks"):
            PlannerConfig(ranks=1)
        with pytest.raises(ConfigError, match="engine_mode"):
            PlannerConfig(ranks=16, engine_mode="turbo")
        with pytest.raises(ConfigError, match="schedule"):
            PlannerConfig(ranks=16, schedules=("zigzag",))
        with pytest.raises(ConfigError, match="microbatches"):
            PlannerConfig(ranks=16, microbatches=())

    def test_enumeration_rules(self):
        config = PlannerConfig(ranks=16)
        layouts = enumerate_layouts(config)
        assert layouts[0].is_pure_dp  # the baseline leads
        for layout in layouts:
            assert layout.dp * layout.tp * layout.pp == 16
            assert 4 % layout.tp == 0  # slices a Lassen node
            assert model_width(EDSR) % layout.tp == 0
        # tp=3 never appears (neither node nor width divisible)
        assert all(l.tp != 3 for l in layouts)

    def test_plan_deterministic_across_jobs_and_cache(self, tmp_path):
        from repro.perf import ResultCache

        config = PlannerConfig(ranks=16, max_pp=2, microbatches=(4,))
        _PLAN_MEMO.clear()
        serial = plan_hybrid(config, jobs=1, use_memo=False)
        fanned = plan_hybrid(config, jobs=2, use_memo=False)
        cache = ResultCache(str(tmp_path))
        cold = plan_hybrid(config, jobs=1, cache=cache, use_memo=False)
        warm = plan_hybrid(config, jobs=1, cache=cache, use_memo=False)
        blobs = {
            json.dumps(r, sort_keys=True)
            for r in (serial, fanned, cold, warm)
        }
        assert len(blobs) == 1  # byte-identical
        _PLAN_MEMO.clear()

    def test_plan_memo_round_trips(self):
        config = PlannerConfig(ranks=8, max_pp=2, microbatches=(4,))
        _PLAN_MEMO.clear()
        first = plan_hybrid(config)
        second = plan_hybrid(config)
        assert first == second
        assert first is not second  # defensive copies, not shared state
        _PLAN_MEMO.clear()

    def test_plan_report_shape(self):
        config = PlannerConfig(ranks=16, max_pp=2, microbatches=(4,))
        _PLAN_MEMO.clear()
        report = plan_hybrid(config)
        assert report["kind"] == "hybrid-plan"
        assert report["best"] == report["points"][0]
        assert report["best_pure_dp"] is not None
        assert report["best_hybrid"] is not None
        assert report["hybrid_speedup"] > 0
        times = [row["step_time"] for row in report["points"]]
        assert times == sorted(times)
        assert report["steps_to_train"] * report["global_batch"] >= 240000
        _PLAN_MEMO.clear()

    def test_fast_and_exact_plans_agree(self):
        # the two engines must produce identical layout economics; only
        # the digest (which records the mode) may differ
        config = PlannerConfig(ranks=8, max_pp=2, microbatches=(4,))
        _PLAN_MEMO.clear()
        fast = plan_hybrid(config, use_memo=False)
        exact = plan_hybrid(
            PlannerConfig(ranks=8, max_pp=2, microbatches=(4,),
                          engine_mode="exact"),
            use_memo=False,
        )
        assert fast["digest"] != exact["digest"]
        fast_rows = json.dumps(fast["points"], sort_keys=True)
        exact_rows = json.dumps(exact["points"], sort_keys=True)
        assert fast_rows == exact_rows
        _PLAN_MEMO.clear()
