"""Tests for CUDA-aware transport selection and costing."""

import pytest

from repro.cuda.runtime import CudaVersion
from repro.hardware import LASSEN, Cluster
from repro.mpi import Mv2Config, WorldSpec, build_world
from repro.mpi.process import SingletonDevicePolicy, AllDevicesPolicy
from repro.mpi.transports import (
    CUDA_IPC_THRESHOLD,
    SMP_EAGER_THRESHOLD,
    TransportKind,
    TransportModel,
)
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_world(
    num_nodes=2,
    *,
    policy=None,
    config=None,
    cuda_version=CudaVersion(10, 2),
    mode=None,
):
    env = Environment()
    cluster = Cluster(env, LASSEN, num_nodes=num_nodes)
    config = config or Mv2Config()
    spec = WorldSpec(
        num_ranks=cluster.num_gpus,
        policy=policy or SingletonDevicePolicy(),
        config=config,
        cuda_version=cuda_version,
    )
    ranks = build_world(cluster, spec)
    return cluster, TransportModel(cluster, config, ranks)


class TestSelection:
    def test_self_transport(self):
        _, tm = make_world(1)
        assert tm.select(0, 0, 1 * MIB) is TransportKind.SELF

    def test_small_intra_node_always_smp_eager(self):
        _, tm = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        assert tm.select(0, 1, SMP_EAGER_THRESHOLD) is TransportKind.SMP_EAGER

    def test_default_config_loses_ipc_under_singleton_mask(self):
        """The paper's default: CUDA_VISIBLE_DEVICES=local_rank kills IPC."""
        _, tm = make_world(1)  # no MV2_VISIBLE_DEVICES
        assert tm.select(0, 1, 64 * MIB) is TransportKind.HOST_STAGED

    def test_mv2_visible_devices_restores_ipc(self):
        """The paper's MPI-Opt: MV2_VISIBLE_DEVICES=all restores IPC."""
        _, tm = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        assert tm.select(0, 1, 64 * MIB) is TransportKind.CUDA_IPC

    def test_mv2_visible_devices_ineffective_pre_cuda_10_1(self):
        """Before CUDA 10.1 the override can't work (cuIpcOpenMemHandle fails)."""
        _, tm = make_world(
            1,
            config=Mv2Config(mv2_visible_devices="all"),
            cuda_version=CudaVersion(10, 0),
        )
        assert tm.select(0, 1, 64 * MIB) is TransportKind.HOST_STAGED

    def test_all_devices_policy_gets_ipc_without_override(self):
        """Legacy workaround (Fig 6a): full visibility => IPC works."""
        _, tm = make_world(1, policy=AllDevicesPolicy())
        assert tm.select(0, 1, 64 * MIB) is TransportKind.CUDA_IPC

    def test_medium_intra_node_stays_staged_even_with_ipc(self):
        """IPC only engages above its threshold (Table I: no gain <16MB)."""
        _, tm = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        assert tm.select(0, 1, 1 * MIB) is TransportKind.HOST_STAGED
        assert tm.select(0, 1, CUDA_IPC_THRESHOLD) is TransportKind.CUDA_IPC

    def test_ipc_disabled_by_config(self):
        _, tm = make_world(
            1, config=Mv2Config(mv2_visible_devices="all", cuda_ipc_enabled=False)
        )
        assert tm.select(0, 1, 64 * MIB) is TransportKind.HOST_STAGED

    def test_inter_node_small_eager(self):
        _, tm = make_world(2)
        assert tm.select(0, 4, 8 * KIB) is TransportKind.IB_EAGER

    def test_inter_node_large_gdr(self):
        _, tm = make_world(2)
        assert tm.select(0, 4, 64 * MIB) is TransportKind.GDR_RDMA

    def test_inter_node_gdr_disabled_stages(self):
        _, tm = make_world(2, config=Mv2Config(gdr_enabled=False))
        assert tm.select(0, 4, 64 * MIB) is TransportKind.STAGED_INTER


class TestCosts:
    def test_ipc_beats_staging_under_concurrency(self):
        """A lone staged copy is competitive, but when all four ranks
        transfer at once the staged path serializes on the node's staging
        engines while IPC runs conflict-free — the mechanism behind
        Table I's ~50% wins."""
        from repro.mpi.collectives.base import ExecutionMode, PairTransfer, StepCoster

        pairs = [PairTransfer(s, d, 32 * MIB) for s, d in
                 [(0, 1), (1, 2), (2, 3), (3, 0)]]
        _, tm_opt = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        _, tm_def = make_world(1)
        opt_step = StepCoster(tm_opt, ExecutionMode.ANALYTIC).step_time_analytic(pairs)
        def_step = StepCoster(tm_def, ExecutionMode.ANALYTIC).step_time_analytic(pairs)
        assert def_step > 1.5 * opt_step

    def test_staging_dominated_by_pageable_bandwidth(self):
        _, tm = make_world(1)
        nbytes = 64 * MIB
        bd = tm.cost(0, 1, nbytes)
        assert bd.staging > bd.wire
        floor = nbytes / LASSEN.node.pageable_copy_bandwidth
        assert bd.staging >= floor

    def test_regcache_removes_registration_cost_on_reuse(self):
        _, tm = make_world(2, config=Mv2Config(registration_cache=True))
        nbytes = 64 * MIB
        tm.begin_collective()
        first = tm.cost(0, 4, nbytes, src_buffer=7, dst_buffer=8).total
        tm.begin_collective()
        second = tm.cost(0, 4, nbytes, src_buffer=7, dst_buffer=8).total
        assert second < first
        stats = tm.regcache_stats()
        assert stats["hits"] == 2 and stats["misses"] == 2

    def test_no_regcache_pays_every_time(self):
        _, tm = make_world(2, config=Mv2Config(registration_cache=False))
        nbytes = 64 * MIB
        tm.begin_collective()
        first = tm.cost(0, 4, nbytes, src_buffer=7, dst_buffer=8).total
        tm.begin_collective()
        second = tm.cost(0, 4, nbytes, src_buffer=7, dst_buffer=8).total
        assert second == pytest.approx(first)
        assert tm.regcache_stats()["hit_rate"] == 0.0

    def test_ipc_setup_amortized_per_pair(self):
        _, tm = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        nbytes = 64 * MIB
        first = tm.cost(0, 1, nbytes).total
        second = tm.cost(0, 1, nbytes).total
        assert second < first

    def test_gdr_cost_bounded_by_ib_wire_time(self):
        cluster, tm = make_world(2, config=Mv2Config(registration_cache=True))
        nbytes = 64 * MIB
        tm.cost(0, 4, nbytes, src_buffer=1, dst_buffer=2)  # warm cache
        bd = tm.cost(0, 4, nbytes, src_buffer=1, dst_buffer=2)
        wire_floor = nbytes / LASSEN.ib.bandwidth
        assert bd.total == pytest.approx(wire_floor, rel=0.2)

    def test_stats_accumulate(self):
        _, tm = make_world(2)
        tm.cost(0, 1, 64 * MIB)
        tm.cost(0, 4, 64 * MIB)
        assert tm.stats.transfers[TransportKind.HOST_STAGED] == 1
        assert tm.stats.transfers[TransportKind.GDR_RDMA] == 1


class TestEventMode:
    def test_transfer_proc_matches_cost(self):
        cluster, tm = make_world(1, config=Mv2Config(mv2_visible_devices="all"))
        nbytes = 64 * MIB
        env = cluster.env
        # pre-pay the one-time IPC setup so both paths see steady state
        tm.cost(0, 1, nbytes)
        expected = tm.cost(0, 1, nbytes).total
        start = env.now
        p = env.process(tm.transfer_proc(0, 1, nbytes))
        env.run(until=p)
        assert env.now - start == pytest.approx(expected, rel=1e-6)

    def test_concurrent_staged_transfers_contend_for_engines(self):
        cluster, tm = make_world(1)
        nbytes = 64 * MIB
        single = tm.cost(0, 1, nbytes).staging
        env = cluster.env
        start = env.now
        # 4 concurrent staged transfers, 2 staging engines -> ~2x makespan
        procs = [
            env.process(tm.transfer_proc(src, dst, nbytes))
            for src, dst in [(0, 1), (1, 2), (2, 3), (3, 0)]
        ]
        env.run(until=env.all_of(procs))
        elapsed = env.now - start
        assert elapsed > 1.8 * single
        assert elapsed < 2.6 * single
