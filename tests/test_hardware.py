"""Unit tests for hardware models: specs, memory pools, links, nodes, cluster."""

import pytest

from repro.errors import ConfigError, HardwareError
from repro.hardware import (
    LASSEN,
    LONGHORN,
    POWER9,
    V100_16GB,
    Cluster,
    LinkKind,
    MemoryPool,
    PoolExhaustedError,
)
from repro.hardware.cluster import build_cluster
from repro.hardware.node import DeviceKind, Node
from repro.hardware.specs import GpuSpec, LinkSpec
from repro.sim import Environment
from repro.utils.units import GB, GIB, MIB


class TestSpecs:
    def test_v100_preset(self):
        assert V100_16GB.memory_bytes == 16 * GIB
        assert V100_16GB.peak_fp32_flops == pytest.approx(15.7e12)
        assert 0 < V100_16GB.sustained_efficiency <= 1

    def test_lassen_preset_shape(self):
        assert LASSEN.max_nodes == 792
        assert LASSEN.node.gpus_per_node == 4
        assert LASSEN.node.sockets == 2
        assert LONGHORN.max_nodes == 96

    def test_linkspec_transfer_time(self):
        spec = LinkSpec("test", latency_s=1e-6, bandwidth=10 * GB)
        assert spec.transfer_time(0) == pytest.approx(1e-6)
        assert spec.transfer_time(10 * GB) == pytest.approx(1.000001)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec("bad", memory_bytes=0, peak_fp32_flops=1, hbm_bandwidth=1)
        with pytest.raises(ConfigError):
            LinkSpec("bad", latency_s=-1, bandwidth=1)
        with pytest.raises(ConfigError):
            GpuSpec("bad", memory_bytes=1, peak_fp32_flops=1, hbm_bandwidth=1,
                    sustained_efficiency=1.5)


class TestMemoryPool:
    def test_alloc_free_accounting(self):
        pool = MemoryPool("test", 1000)
        a = pool.alloc(400, tag="weights")
        b = pool.alloc(500, tag="activations")
        assert pool.used == 900
        assert pool.free == 100
        pool.free_block(a)
        assert pool.used == 500
        pool.free_block(b)
        assert pool.used == 0
        assert pool.peak_used == 900

    def test_oom_raises_with_diagnostics(self):
        pool = MemoryPool("gpu0", 1000)
        pool.alloc(900, tag="context")
        with pytest.raises(PoolExhaustedError) as exc:
            pool.alloc(200, tag="tensor")
        assert "context" in str(exc.value)
        assert pool.oom_count == 1
        assert pool.used == 900  # failed alloc does not leak

    def test_double_free_rejected(self):
        pool = MemoryPool("test", 100)
        block = pool.alloc(10)
        pool.free_block(block)
        with pytest.raises(HardwareError):
            pool.free_block(block)

    def test_used_by_tag(self):
        pool = MemoryPool("test", 1000)
        pool.alloc(100, tag="a")
        pool.alloc(200, tag="a")
        pool.alloc(300, tag="b")
        assert pool.used_by_tag() == {"a": 300, "b": 300}

    def test_reset_clears_everything(self):
        pool = MemoryPool("test", 100)
        pool.alloc(60)
        pool.reset()
        assert pool.used == 0
        pool.alloc(100)  # fits again


class TestNode:
    @pytest.fixture
    def node(self):
        return Node(Environment(), 0, LASSEN.node)

    def test_device_inventory(self, node):
        assert len(node.gpu_refs) == 4
        assert len(node.cpu_refs) == 2
        assert node.socket_of_gpu(0) == 0
        assert node.socket_of_gpu(1) == 0
        assert node.socket_of_gpu(2) == 1
        assert node.socket_of_gpu(3) == 1

    def test_same_socket_gpus_direct_nvlink(self, node):
        route = node.route(node.gpu_refs[0], node.gpu_refs[1])
        assert len(route) == 1
        assert route[0].kind is LinkKind.NVLINK_P2P

    def test_cross_socket_gpus_route_through_cpus(self, node):
        route = node.route(node.gpu_refs[0], node.gpu_refs[2])
        kinds = [link.kind for link in route]
        assert kinds == [LinkKind.NVLINK_CPU, LinkKind.XBUS, LinkKind.NVLINK_CPU]

    def test_gpu_to_hca_route(self, node):
        route = node.route(node.gpu_refs[3], node.hca_ref)
        assert route[-1].kind is LinkKind.PCIE

    def test_route_to_self_is_empty(self, node):
        assert node.route(node.gpu_refs[0], node.gpu_refs[0]) == []

    def test_gpu_memory_pools_sized_to_spec(self, node):
        for ref in node.gpu_refs:
            assert node.gpu_memory[ref].capacity == 16 * GIB


class TestCluster:
    @pytest.fixture
    def cluster(self):
        return Cluster(Environment(), LASSEN, num_nodes=2)

    def test_gpu_ref_flat_mapping(self, cluster):
        assert cluster.num_gpus == 8
        ref = cluster.gpu_ref(5)
        assert ref.node == 1 and ref.index == 1
        with pytest.raises(HardwareError):
            cluster.gpu_ref(8)

    def test_intra_node_path_cheaper_than_inter_node(self, cluster):
        g0, g1, g4 = cluster.gpu_ref(0), cluster.gpu_ref(1), cluster.gpu_ref(4)
        intra = cluster.path_cost(g0, g1, 64 * MIB)
        inter = cluster.path_cost(g0, g4, 64 * MIB)
        assert intra < inter

    def test_inter_node_bottleneck_is_ib(self, cluster):
        g0, g4 = cluster.gpu_ref(0), cluster.gpu_ref(4)
        assert cluster.path_bandwidth(g0, g4) == pytest.approx(
            LASSEN.ib.bandwidth
        )

    def test_transfer_process_advances_clock(self):
        env = Environment()
        cluster = Cluster(env, LASSEN, num_nodes=1)
        g0, g1 = cluster.gpu_ref(0), cluster.gpu_ref(1)
        nbytes = 64 * MIB
        expected = cluster.path_cost(g0, g1, nbytes)

        p = env.process(cluster.transfer(g0, g1, nbytes))
        env.run()
        assert env.now == pytest.approx(expected)

    def test_concurrent_same_link_transfers_serialize(self):
        env = Environment()
        cluster = Cluster(env, LASSEN, num_nodes=1)
        g0, g1 = cluster.gpu_ref(0), cluster.gpu_ref(1)
        nbytes = 64 * MIB
        single = cluster.path_cost(g0, g1, nbytes)

        env.process(cluster.transfer(g0, g1, nbytes))
        env.process(cluster.transfer(g0, g1, nbytes))
        env.run()
        assert env.now == pytest.approx(2 * single)

    def test_opposite_directions_run_concurrently(self):
        env = Environment()
        cluster = Cluster(env, LASSEN, num_nodes=1)
        g0, g1 = cluster.gpu_ref(0), cluster.gpu_ref(1)
        nbytes = 64 * MIB
        single = cluster.path_cost(g0, g1, nbytes)

        env.process(cluster.transfer(g0, g1, nbytes))
        env.process(cluster.transfer(g1, g0, nbytes))
        env.run()
        assert env.now == pytest.approx(single)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(HardwareError):
            Cluster(Environment(), LONGHORN, num_nodes=97)

    def test_build_cluster_rounds_up_nodes(self):
        cluster = build_cluster(LASSEN, num_gpus=6)
        assert cluster.num_nodes == 2

    def test_oversubscription_derates_ib(self):
        spec = LASSEN.__class__(
            name="tapered", node=LASSEN.node, max_nodes=4, ib=LASSEN.ib,
            oversubscription=2.0,
        )
        env = Environment()
        cluster = Cluster(env, spec, num_nodes=2)
        g0, g4 = cluster.gpu_ref(0), cluster.gpu_ref(4)
        assert cluster.path_bandwidth(g0, g4) == pytest.approx(LASSEN.ib.bandwidth / 2)

    def test_host_costs_positive(self, cluster):
        assert cluster.host_memcpy_time(0, 64 * MIB) > 0
        assert cluster.host_reduce_time(0, 64 * MIB) > 0


class TestHardwareVariants:
    """Alternative node/system shapes: the model is not Lassen-specific."""

    def test_dgx1v_preset_shape(self):
        from repro.hardware.specs import DGX1V

        assert DGX1V.node.gpus_per_node == 8
        assert DGX1V.node.gpus_per_socket == 4
        node = Node(Environment(), 0, DGX1V.node)
        assert len(node.gpu_refs) == 8
        # same-socket peers direct, cross-socket via both CPUs
        assert len(node.route(node.gpu_refs[0], node.gpu_refs[3])) == 1
        kinds = [l.kind for l in node.route(node.gpu_refs[0], node.gpu_refs[4])]
        assert kinds == [LinkKind.NVLINK_CPU, LinkKind.XBUS, LinkKind.NVLINK_CPU]

    def test_dgx_staging_slower_than_lassen(self):
        """x86 pageable copies are slower than Power9's NVLink-attached
        memory — the staged path hurts more on DGX-class nodes."""
        from repro.hardware.specs import DGX1V

        assert (
            DGX1V.node.pageable_copy_bandwidth
            < LASSEN.node.pageable_copy_bandwidth
        )

    def test_single_socket_node(self):
        from dataclasses import replace

        spec = replace(LASSEN.node, sockets=1, gpus_per_node=4)
        node = Node(Environment(), 0, spec)
        assert len(node.cpu_refs) == 1
        # all four GPUs are same-socket peers
        assert len(node.route(node.gpu_refs[0], node.gpu_refs[3])) == 1

    def test_uneven_socket_split_rejected(self):
        from dataclasses import replace

        with pytest.raises(ConfigError):
            replace(LASSEN.node, gpus_per_node=5)

    def test_dgx_cluster_study_runs_end_to_end(self):
        from repro.core import MPI_OPT, ScalingStudy, StudyConfig
        from repro.hardware.specs import DGX1V

        config = StudyConfig(cluster=DGX1V, measure_steps=1, warmup_steps=1)
        point = ScalingStudy(MPI_OPT, config).run_point(16)  # 2 DGX nodes
        assert point.images_per_second > 0
