"""Bit-identity of the fast engine against the exact engine.

The ``repro.sim.fastpath`` trace/replay session and the vectorized serve
arrival generator both promise *bit-identical* results — not "close", not
"within tolerance": every float in a fast-mode report must equal the
exact-mode float exactly, because cached results, digests, and the paper's
reproduction tables must not depend on which engine produced them.

These tests pin that contract end to end:

* scaling points (every scenario, small and large worlds),
* faulty runs with rank failure + checkpoint restart, and regrow,
* serving reports under rr and jsq routing,
* the homogeneous-Poisson arrival trace itself,

plus sanity checks that fast mode actually replays (the speedup is real,
not a silent fallback to exact) and that digests keep the modes apart.
"""

import dataclasses

import pytest

from repro.core.scenarios import SCENARIOS, scenario_by_name
from repro.core.study import ScalingStudy, StudyConfig, point_payload
from repro.errors import ConfigError
from repro.faults import FaultPlan, RankFailure
from repro.resilience import CheckpointPolicy, RecoveryPolicy


def run_point(scenario, num_gpus, mode, *, fault_plan=None, recovery=None,
              **cfg):
    study = ScalingStudy(
        scenario_by_name(scenario),
        StudyConfig(engine_mode=mode, **cfg),
        fault_plan=fault_plan,
        recovery=recovery,
    )
    return study.run_point(num_gpus)


def assert_points_identical(exact, fast):
    """Full-dataclass equality — every field, every float, bit for bit."""
    assert dataclasses.asdict(exact) == dataclasses.asdict(fast)
    assert point_payload(exact) == point_payload(fast)


class TestTrainEquivalence:
    @pytest.mark.parametrize("scenario", [s.name for s in SCENARIOS])
    @pytest.mark.parametrize("num_gpus", [4, 16])
    def test_point_bit_identity(self, scenario, num_gpus):
        exact = run_point(scenario, num_gpus, "exact")
        fast = run_point(scenario, num_gpus, "fast")
        assert_points_identical(exact, fast)

    @pytest.mark.slow
    @pytest.mark.parametrize("scenario", ["MPI", "MPI-Opt"])
    def test_point_bit_identity_512(self, scenario):
        exact = run_point(scenario, 512, "exact")
        fast = run_point(scenario, 512, "fast")
        assert_points_identical(exact, fast)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            StudyConfig(engine_mode="turbo")


class TestFaultyEquivalence:
    def test_failure_restart_bit_identity(self):
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=2.0)])
        policy = RecoveryPolicy(
            restart=True, checkpoint=CheckpointPolicy(interval_steps=3))
        kw = dict(fault_plan=plan, recovery=policy,
                  warmup_steps=1, measure_steps=8)
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert exact.resilience is not None
        assert exact.resilience["restarts"] == 1
        assert_points_identical(exact, fast)

    def test_regrow_bit_identity(self):
        plan = FaultPlan(
            seed=9, faults=[RankFailure(rank=1, time=2.0, down_s=4.0)])
        policy = RecoveryPolicy(
            restart=True, regrow=True,
            checkpoint=CheckpointPolicy(interval_steps=3))
        kw = dict(fault_plan=plan, recovery=policy,
                  warmup_steps=1, measure_steps=10)
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert exact.resilience is not None
        assert exact.resilience["regrown_ranks"] == [1]
        assert_points_identical(exact, fast)


class TestCompressionEquivalence:
    """Compressed and local-SGD runs keep the fast/exact contract."""

    @pytest.mark.parametrize("compression", ["fp16", "bf16", "topk:0.01"])
    def test_compressed_point_bit_identity(self, compression):
        exact = run_point("MPI-Opt", 8, "exact", compression=compression)
        fast = run_point("MPI-Opt", 8, "fast", compression=compression)
        assert_points_identical(exact, fast)

    def test_local_sgd_point_bit_identity(self):
        kw = dict(local_sgd_h=4, warmup_steps=1, measure_steps=8)
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert fast.extrapolated_steps == exact.extrapolated_steps
        assert_points_identical(exact, fast)

    def test_compressed_faulty_bit_identity(self):
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=2.0)])
        policy = RecoveryPolicy(
            restart=True, checkpoint=CheckpointPolicy(interval_steps=3))
        kw = dict(fault_plan=plan, recovery=policy,
                  warmup_steps=1, measure_steps=8, compression="fp16")
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert exact.resilience is not None
        assert_points_identical(exact, fast)

    def test_sparse_faulty_bit_identity(self):
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=2.0)])
        policy = RecoveryPolicy(
            restart=True, checkpoint=CheckpointPolicy(interval_steps=3))
        kw = dict(fault_plan=plan, recovery=policy,
                  warmup_steps=1, measure_steps=8, compression="topk:0.01")
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert_points_identical(exact, fast)

    def test_local_sgd_faulty_bit_identity(self):
        """The fastpath must see the H-step cadence: sync collectives only
        fire on period boundaries, and the replay clock must agree."""
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=2.0)])
        policy = RecoveryPolicy(
            restart=True, checkpoint=CheckpointPolicy(interval_steps=3))
        kw = dict(fault_plan=plan, recovery=policy,
                  warmup_steps=1, measure_steps=9, local_sgd_h=3)
        exact = run_point("MPI-Opt", 8, "exact", **kw)
        fast = run_point("MPI-Opt", 8, "fast", **kw)
        assert_points_identical(exact, fast)

    def test_digest_separates_compression_configs(self):
        digests = {
            ScalingStudy(scenario_by_name("MPI-Opt"),
                         StudyConfig(**kw)).point_digest(16)
            for kw in (
                {},
                {"compression": "fp16"},
                {"compression": "topk:0.01"},
                {"compression": "topk:0.05"},
                {"local_sgd_h": 2},
            )
        }
        assert len(digests) == 5


class TestHybridEquivalence:
    """Tensor/pipeline layouts keep the fast/exact contract: every tp
    collective and pp hop is priced closed-form, and the dp world under a
    hybrid layout replays exactly like a pure-dp one."""

    @pytest.mark.parametrize("num_gpus,layout_kw", [
        (4, dict(tp=2, pp=2, microbatches=4)),
        (16, dict(tp=2, pp=2, microbatches=4)),
        (16, dict(tp=4)),
        (16, dict(pp=4, microbatches=8)),
        (16, dict(pp=4, microbatches=8, schedule="gpipe")),
    ])
    def test_hybrid_bit_identity(self, num_gpus, layout_kw):
        from repro.parallel import ParallelLayout

        layout = ParallelLayout(**layout_kw)
        exact = run_point("MPI-Opt", num_gpus, "exact", layout=layout)
        fast = run_point("MPI-Opt", num_gpus, "fast", layout=layout)
        assert exact.parallelism is not None
        assert_points_identical(exact, fast)

    @pytest.mark.slow
    def test_hybrid_bit_identity_512(self):
        from repro.parallel import ParallelLayout

        layout = ParallelLayout(dp=64, tp=2, pp=4, microbatches=8)
        exact = run_point("MPI-Opt", 512, "exact", layout=layout)
        fast = run_point("MPI-Opt", 512, "fast", layout=layout)
        assert exact.parallelism["dp"] == 64
        assert_points_identical(exact, fast)


class TestServeEquivalence:
    @pytest.mark.parametrize("policy", ["rr", "jsq"])
    def test_report_bit_identity(self, policy):
        from repro.serve import ServeScenario
        from repro.serve.simulator import simulate_serve

        def run(mode):
            report = simulate_serve(
                ServeScenario(routing=policy),
                duration_s=20.0, seed=3, engine_mode=mode)
            report.ledger = None
            report.trace = None
            return report

        assert run("exact").to_payload() == run("fast").to_payload()

    def test_poisson_trace_bit_identity(self):
        from repro.serve.workload import WorkloadConfig, generate_arrivals

        cfg = WorkloadConfig(kind="poisson", rate_rps=40.0)
        for duration, seed in ((30.0, 7), (1e-9, 3), (0.5, 0)):
            exact = generate_arrivals(cfg, duration, seed)
            fast = generate_arrivals(cfg, duration, seed, engine_mode="fast")
            assert exact == fast

    def test_serve_digest_separates_modes(self):
        from repro.serve import ServeScenario
        from repro.serve.sweep import ServeJob, serve_digest

        scn = ServeScenario()
        assert (serve_digest(ServeJob(scn))
                != serve_digest(ServeJob(scn, engine_mode="fast")))


class TestFastPathEngages:
    def test_study_digest_separates_modes(self):
        digests = {
            ScalingStudy(scenario_by_name("MPI-Opt"),
                         StudyConfig(engine_mode=m)).point_digest(16)
            for m in ("exact", "fast")
        }
        assert len(digests) == 2

    def test_fast_mode_replays_transfers(self):
        """The speedup is real: a fast-mode world replays (or ring-replays)
        most transfers instead of re-walking the cost model."""
        from repro.sim.fastpath import enable_fastpath
        from tests.test_mpi_collectives import make_world
        from repro.mpi.collectives.allreduce import allreduce_timing
        from repro.utils.units import MIB

        world = make_world(8)
        session = enable_fastpath(world)
        assert session is not None
        assert enable_fastpath(world) is session  # idempotent
        for _ in range(4):
            allreduce_timing(world.coster, list(range(8)), 32 * MIB,
                             algorithm="ring")
        stats = session.stats()
        assert stats["replayed_transfers"] > stats["exact_transfers"]
