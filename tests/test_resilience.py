"""Elastic recovery subsystem: checkpoint/restart, watchdog, accounting.

Covers the guarantees the resilience layer makes:

* checkpoints round-trip model *and* optimizer/LR-schedule state
  bit-exactly (old model-only files still load);
* the manager's writes are atomic and checksummed — corruption and torn
  writes are detected and fall back to the previous valid snapshot;
* watchdog detection latency is a pure, deterministic function of the
  failure time and heartbeat config;
* a restart that loses zero steps is numerically identical to
  shrink-and-continue (the end-to-end proof that optimizer state
  round-trips — stale Adam moments would diverge);
* a mid-training rank failure no longer kills the run: the trainer and
  the ScalingStudy both complete, itemizing checkpoint overhead,
  detection latency, lost work, and recovery time — identically across
  reruns and across serial vs ``jobs=N`` parallel sweeps.
"""

import os

import numpy as np
import pytest

from repro.core.scenarios import scenario_by_name
from repro.core.study import ScalingStudy, StudyConfig
from repro.data import DegradationConfig, SRDataset, SyntheticDiv2k
from repro.errors import CheckpointError
from repro.faults import FaultInjector, FaultPlan, RankFailure, StragglerFault
from repro.hardware import LASSEN, Cluster
from repro.horovod import HorovodConfig, HorovodEngine
from repro.models import EDSR, EDSR_TINY
from repro.mpi import MpiWorld, Mv2Config, WorldSpec
from repro.mpi.collectives.allreduce import _SCHEDULE_CACHE
from repro.mpi.process import SingletonDevicePolicy
from repro.resilience import (
    CheckpointManager,
    CheckpointPolicy,
    HeartbeatConfig,
    RecoveryAccounting,
    RecoveryPolicy,
    SHRINK_CONTINUE,
)
from repro.sim import Environment
from repro.tensor import Tensor
from repro.tensor.nn.layers import Linear
from repro.tensor.optim.adam import Adam
from repro.tensor.optim.lr_scheduler import StepLR
from repro.tensor.optim.sgd import SGD
from repro.trainer import DistributedTrainer, load_checkpoint, save_checkpoint


def tiny_model(seed=0):
    return Linear(4, 3, rng=np.random.default_rng(seed))


def take_steps(model, optimizer, n, seed=100):
    """Run n real optimization steps; returns the loss trajectory."""
    rng = np.random.default_rng(seed)
    losses = []
    for _ in range(n):
        x = Tensor(rng.normal(size=(2, 4)).astype(np.float32))
        y = Tensor(rng.normal(size=(2, 3)).astype(np.float32))
        optimizer.zero_grad()
        out = model(x)
        loss = ((out - y) * (out - y)).sum()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


def make_trainer(plan, recovery, *, ranks=4, checkpoints=None, seed_base=50):
    cluster = Cluster(Environment(), LASSEN, num_nodes=max(1, (ranks + 3) // 4))
    config = Mv2Config(mv2_visible_devices="all", registration_cache=True)
    spec = WorldSpec(num_ranks=ranks, policy=SingletonDevicePolicy(),
                     config=config)
    injector = FaultInjector(plan) if plan is not None else None
    world = MpiWorld(cluster, spec, faults=injector)
    engine = HorovodEngine(world.communicator(),
                           HorovodConfig(cycle_time_s=2e-3))
    dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                        split="train",
                        degradation=DegradationConfig(scale=2))
    trainer = DistributedTrainer(
        lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(seed_base + rank)),
        engine,
        dataset,
        batch_per_rank=1,
        lr_patch=8,
        faults=injector,
        recovery=recovery,
        checkpoints=checkpoints,
    )
    return trainer, injector


FREE_CKPT = CheckpointPolicy(interval_steps=1, base_latency_s=0.0,
                             write_bandwidth=1e30, read_bandwidth=1e30)


class TestCheckpointRoundTrip:
    def test_optimizer_state_resumes_exact_trajectory(self, tmp_path):
        """Adam moments survive the npz round-trip: resumed == uninterrupted."""
        model = tiny_model()
        opt = Adam(model.parameters(), lr=1e-2)
        take_steps(model, opt, 5)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, step=5, optimizer=opt)
        reference = take_steps(model, opt, 5, seed=200)

        resumed = tiny_model(seed=1)
        opt2 = Adam(resumed.parameters(), lr=99.0)  # wrong lr, overwritten
        assert load_checkpoint(resumed, path, optimizer=opt2) == 5
        assert take_steps(resumed, opt2, 5, seed=200) == reference

    def test_fresh_optimizer_diverges_without_state(self, tmp_path):
        """Counter-test: dropping optimizer state visibly changes training."""
        model = tiny_model()
        opt = Adam(model.parameters(), lr=1e-2)
        take_steps(model, opt, 5)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, step=5, optimizer=opt)
        reference = take_steps(model, opt, 5, seed=200)

        resumed = tiny_model(seed=1)
        load_checkpoint(resumed, path)  # model only
        fresh_opt = Adam(resumed.parameters(), lr=1e-2)
        assert take_steps(resumed, fresh_opt, 5, seed=200) != reference

    def test_sgd_velocity_and_scheduler_round_trip(self, tmp_path):
        model = tiny_model()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        take_steps(model, opt, 3)
        sched.step()
        sched.step()
        sched.step()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, step=3, optimizer=opt, scheduler=sched)

        resumed = tiny_model(seed=1)
        opt2 = SGD(resumed.parameters(), lr=0.1, momentum=0.9)
        sched2 = StepLR(opt2, step_size=2, gamma=0.5)
        load_checkpoint(resumed, path, optimizer=opt2, scheduler=sched2)
        assert sched2.epoch == 3
        assert opt2.lr == opt.lr
        assert take_steps(resumed, opt2, 3, seed=300) == \
            take_steps(model, opt, 3, seed=300)

    def test_old_model_only_files_still_load(self, tmp_path):
        """Backward compat: pre-resilience checkpoints restore the model and
        leave a supplied optimizer untouched."""
        model = tiny_model()
        state = {k: v for k, v in model.state_dict().items()}
        state["__step__"] = np.asarray(7)
        path = str(tmp_path / "old.npz")
        np.savez(path, **state)

        resumed = tiny_model(seed=1)
        opt = Adam(resumed.parameters(), lr=0.123)
        assert load_checkpoint(resumed, path, optimizer=opt) == 7
        assert opt.lr == 0.123
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(resumed.state_dict()[name], value)


class TestCheckpointManager:
    def _save(self, manager, steps):
        model = tiny_model()
        opt = Adam(model.parameters(), lr=1e-2)
        take_steps(model, opt, max(steps, 1))
        return manager.save(model, steps_completed=steps, optimizer=opt)

    def test_rotation_keeps_newest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path),
                                    CheckpointPolicy(keep_last=2))
        for s in (0, 5, 10, 15):
            self._save(manager, s)
        assert [s for s, _ in manager.available()] == [10, 15]
        assert manager.saves == 4

    def test_write_cost_charged(self, tmp_path):
        manager = CheckpointManager(
            str(tmp_path),
            CheckpointPolicy(base_latency_s=0.5, write_bandwidth=1e6),
        )
        path, cost = self._save(manager, 0)
        assert cost == pytest.approx(0.5 + os.path.getsize(path) / 1e6)

    def test_corruption_falls_back_to_previous_valid(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), CheckpointPolicy(keep_last=3))
        self._save(manager, 5)
        newest, _ = self._save(manager, 10)
        with open(newest, "r+b") as fh:  # flip bytes in the newest file
            fh.seek(10)
            fh.write(b"\xde\xad\xbe\xef")
        assert not manager.verify(newest)
        steps, path = manager.latest_valid()
        assert steps == 5
        assert manager.corrupt_detected == 1
        model = tiny_model(seed=2)
        assert load_checkpoint(model, path) == 5

    def test_torn_write_detected(self, tmp_path):
        """A truncated npz (simulated crash mid-write) fails verification."""
        manager = CheckpointManager(str(tmp_path), CheckpointPolicy(keep_last=3))
        self._save(manager, 5)
        newest, _ = self._save(manager, 10)
        data = open(newest, "rb").read()
        with open(newest, "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert manager.latest_valid()[0] == 5

    def test_restore_raises_when_nothing_valid(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(CheckpointError):
            manager.restore(tiny_model())

    def test_missing_sidecar_is_invalid(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        path, _ = self._save(manager, 5)
        os.unlink(path + ".sha256")
        assert manager.latest_valid() is None


class TestWatchdog:
    def test_detection_latency_is_pure_and_deterministic(self):
        config = HeartbeatConfig(interval_s=0.1, timeout_s=0.25, probes=3,
                                 probe_timeout_s=0.05, backoff_factor=2.0)
        # probe ladder: 0.05 + 0.10 + 0.20 = 0.35
        assert config.probe_time() == pytest.approx(0.35)
        # failure at 1.23: last beat 1.2, declared 1.2 + 0.25 + 0.35
        assert config.declared_at(1.23) == pytest.approx(1.80)
        assert config.detection_latency(1.23) == pytest.approx(0.57)
        for t in (0.0, 0.05, 7.77, 123.4):
            assert config.declared_at(t) == config.declared_at(t)
            assert config.declared_at(t) >= t

    def test_backoff_grows_latency(self):
        fast = HeartbeatConfig(probes=1)
        slow = HeartbeatConfig(probes=5)
        assert slow.detection_latency(1.0) > fast.detection_latency(1.0)

    def test_supervisor_declares_once(self):
        plan = FaultPlan(seed=1, faults=[RankFailure(rank=2, time=1.0)])
        from repro.resilience import HeartbeatSupervisor

        sup = HeartbeatSupervisor(range(4), FaultInjector(plan))
        assert sup.poll(0.5) == []
        first = sup.poll(2.0)
        assert [d.rank for d in first] == [2]
        assert sup.poll(3.0) == []  # no re-declaration
        assert sup.active == [0, 1, 3]


class TestTrainerRecovery:
    def test_failure_mid_training_completes_with_itemized_costs(self):
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=3.0)])
        policy = RecoveryPolicy(restart=True,
                                checkpoint=CheckpointPolicy(interval_steps=4))
        trainer, injector = make_trainer(plan, policy)
        result = trainer.train(12)
        assert result.steps == 12
        assert result.world_sizes[0] == 4 and result.world_sizes[-1] == 3
        assert trainer.replicas_in_sync()
        acct = result.resilience
        assert acct.detections == 1 and acct.restarts == 1
        assert acct.checkpoint_saves >= 3
        assert acct.checkpoint_s > 0 and acct.recovery_s > 0
        assert acct.time_to_solution_s == pytest.approx(
            acct.productive_s + acct.overhead_s)
        assert 0 < acct.goodput < 1
        assert injector.trace.count("rank-dead") == 1
        assert injector.trace.count("restart") == 1

    def test_recovery_is_deterministic(self):
        def run():
            plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=3.0)])
            policy = RecoveryPolicy(
                restart=True, checkpoint=CheckpointPolicy(interval_steps=4))
            trainer, injector = make_trainer(plan, policy)
            result = trainer.train(12)
            return result, injector.trace.digest()

        r1, t1 = run()
        r2, t2 = run()
        assert r1.losses == r2.losses
        assert r1.simulated_step_times == r2.simulated_step_times
        assert r1.resilience.to_payload() == r2.resilience.to_payload()
        assert t1 == t2

    def test_zero_lost_work_restart_equals_shrink_continue(self):
        """Checkpoint-every-step restart replays nothing, so it must match
        shrink-and-continue bit for bit — the end-to-end proof that model
        *and* optimizer state round-trip through the checkpoint."""
        def run(policy):
            plan = FaultPlan(seed=5, faults=[RankFailure(rank=2, time=2.0)])
            trainer, _ = make_trainer(plan, policy)
            return trainer.train(10)

        restart = run(RecoveryPolicy(restart=True, restart_overhead_s=0.0,
                                     checkpoint=FREE_CKPT))
        shrink = run(SHRINK_CONTINUE)
        assert restart.resilience.lost_steps == 0
        assert restart.losses == shrink.losses
        assert restart.world_sizes == shrink.world_sizes
        assert shrink.resilience.restarts == 0
        assert shrink.resilience.lost_work_s == 0.0

    def test_restart_replays_lost_steps(self):
        """With sparse checkpoints the rewind re-runs steps on the shrunk
        world and books their time as lost work."""
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=3.0)])
        policy = RecoveryPolicy(restart=True,
                                checkpoint=CheckpointPolicy(interval_steps=50))
        trainer, _ = make_trainer(plan, policy)
        result = trainer.train(12)
        acct = result.resilience
        assert result.steps == 12
        assert acct.lost_steps > 0 and acct.lost_work_s > 0
        # everything after the (only) step-0 checkpoint replays on 3 ranks
        assert result.world_sizes == [3] * 12

    def test_regrow_restores_world_size(self):
        plan = FaultPlan(seed=9,
                         faults=[RankFailure(rank=1, time=2.0, down_s=4.0)])
        policy = RecoveryPolicy(restart=True, regrow=True,
                                checkpoint=CheckpointPolicy(interval_steps=3))
        trainer, injector = make_trainer(plan, policy)
        result = trainer.train(16)
        assert result.resilience.regrown_ranks == [1]
        assert min(result.world_sizes) == 3
        assert result.world_sizes[-1] == 4
        assert trainer.replicas_in_sync()
        assert injector.trace.count("rank-regrown") == 1

    def test_blacklist_evicts_chronic_straggler(self):
        plan = FaultPlan(seed=3,
                         faults=[StragglerFault(rank=0, factor=3.0, start=0.0)])
        policy = RecoveryPolicy(restart=False, blacklist_after=3)
        trainer, injector = make_trainer(plan, policy)
        result = trainer.train(10)
        assert result.resilience.blacklisted_ranks == [0]
        assert result.world_sizes[-1] == 3
        assert injector.trace.count("rank-blacklisted") == 1
        # eviction cures the slowdown: later steps are faster
        assert result.simulated_step_times[-1] < result.simulated_step_times[0]

    def test_shrink_rebuilds_allreduce_schedule_memo(self):
        """The memoized collective schedules are dropped on every ring
        change, so no plan keyed against the old world can be replayed."""
        plan = FaultPlan(seed=11, faults=[RankFailure(rank=3, time=3.0)])
        trainer, _ = make_trainer(plan, SHRINK_CONTINUE)
        trainer.train(2)
        assert len(_SCHEDULE_CACHE) > 0
        trainer.engine.shrink_to([0, 1, 2])
        assert len(_SCHEDULE_CACHE) == 0

    def test_regrow_resets_topk_residuals(self):
        """A re-admitted rank's top-k error-feedback residuals start from
        zero: stale feedback from the rank's previous life would inject
        gradient mass from a replica that no longer exists.  Survivors
        keep their accumulated residuals across the ring reform."""
        from repro.compression import CompressionConfig
        from repro.horovod.optimizer import DistributedOptimizer

        cluster = Cluster(Environment(), LASSEN, num_nodes=1)
        spec = WorldSpec(num_ranks=4, policy=SingletonDevicePolicy(),
                         config=Mv2Config(mv2_visible_devices="all"))
        world = MpiWorld(cluster, spec)
        engine = HorovodEngine(
            world.communicator(), HorovodConfig(cycle_time_s=2e-3),
            compression=CompressionConfig.parse("topk:0.25"),
        )
        models = [tiny_model(seed=r) for r in range(4)]
        opts = [SGD(m.parameters(), lr=0.1) for m in models]
        dist = DistributedOptimizer(opts, models, engine)

        def run_one_step():
            rng = np.random.default_rng(13)
            for m in dist.models:
                for p in m.parameters():
                    p.grad = rng.normal(size=p.data.shape).astype(np.float32)
            dist.step()

        run_one_step()
        assert any(key[0] == 1 for key in engine._topk_residuals)
        survivor_keys = {k for k in engine._topk_residuals if k[0] == 0}
        poison = {
            k: v.copy() + 123.0
            for k, v in engine._topk_residuals.items() if k[0] == 1
        }

        dist.drop_rank(1)
        assert not any(key[0] == 1 for key in engine._topk_residuals)
        # survivors keep their accumulated feedback across the reform
        assert survivor_keys <= set(engine._topk_residuals)

        # simulate stale state sneaking back in before the re-admit
        engine._topk_residuals.update(poison)
        fresh = tiny_model(seed=9)
        dist.add_rank(1, fresh, SGD(fresh.parameters(), lr=0.1))
        assert not any(key[0] == 1 for key in engine._topk_residuals)

        run_one_step()
        for key, stale in poison.items():
            assert not np.array_equal(engine._topk_residuals[key], stale)


class TestStudyRecovery:
    SCEN = "MPI-Opt"

    def _study(self, recovery, seed=21):
        plan = FaultPlan(seed=seed, faults=[RankFailure(rank=3, time=2.0)])
        return ScalingStudy(
            scenario_by_name(self.SCEN),
            StudyConfig(warmup_steps=1, measure_steps=6),
            fault_plan=plan,
            recovery=recovery,
        )

    def test_faulty_point_completes_and_reports(self):
        policy = RecoveryPolicy(restart=True,
                                checkpoint=CheckpointPolicy(interval_steps=2))
        point = self._study(policy).run_point(8)
        r = point.resilience
        assert r["detections"] == 1 and r["restarts"] == 1
        assert r["final_world_size"] == 7
        assert r["world_sizes"][0] == 8 and r["world_sizes"][-1] == 7
        acct = RecoveryAccounting.from_payload(r)
        assert acct.time_to_solution_s == pytest.approx(
            acct.productive_s + acct.overhead_s)
        assert point.images_per_second > 0

    def test_point_determinism_and_parallel_jobs_identity(self, tmp_path):
        from repro.perf.cache import ResultCache

        policy = RecoveryPolicy(restart=True,
                                checkpoint=CheckpointPolicy(interval_steps=2))
        serial = self._study(policy).run([4, 8])
        cache = ResultCache(str(tmp_path))
        parallel = self._study(policy).run([4, 8], jobs=2, cache=cache)
        assert [p.resilience for p in parallel] == \
            [p.resilience for p in serial]
        assert [p.images_per_second for p in parallel] == \
            [p.images_per_second for p in serial]
        # warm-cache rerun returns the identical report
        cached = self._study(policy).run([4, 8], jobs=2, cache=cache)
        assert [p.resilience for p in cached] == \
            [p.resilience for p in serial]
        assert cache.stats()["hits"] >= 2

    def test_digest_covers_plan_and_policy(self):
        clean = ScalingStudy(scenario_by_name(self.SCEN),
                             StudyConfig(warmup_steps=1, measure_steps=6))
        restart = self._study(RecoveryPolicy(restart=True))
        shrink = self._study(SHRINK_CONTINUE)
        other_seed = ScalingStudy(
            scenario_by_name(self.SCEN),
            StudyConfig(warmup_steps=1, measure_steps=6),
            fault_plan=FaultPlan(seed=99,
                                 faults=[RankFailure(rank=3, time=2.0)]),
            recovery=RecoveryPolicy(restart=True),
        )
        digests = {s.point_digest(8)
                   for s in (clean, restart, shrink, other_seed)}
        assert len(digests) == 4

    def test_shrink_continue_beats_restart_on_goodput_here(self):
        """Sanity on the cost model: with nothing to replay, restart still
        pays checkpoint + read-back + respawn, so shrink wins goodput."""
        restart = self._study(
            RecoveryPolicy(restart=True,
                           checkpoint=CheckpointPolicy(interval_steps=2)))
        shrink = self._study(SHRINK_CONTINUE)
        g_restart = restart.run_point(8).resilience["goodput"]
        g_shrink = shrink.run_point(8).resilience["goodput"]
        assert g_shrink > g_restart

    def test_clean_study_unchanged(self):
        point = ScalingStudy(
            scenario_by_name(self.SCEN),
            StudyConfig(warmup_steps=1, measure_steps=6),
        ).run_point(8)
        assert point.resilience is None


class TestSingleSlotCheckpoints:
    """keep_last=1 has no older snapshot to fall back to: a torn write of
    the only slot must surface a typed error, never a silent restart from
    garbage."""

    def _save(self, manager, steps):
        model = tiny_model()
        opt = Adam(model.parameters(), lr=1e-2)
        take_steps(model, opt, max(steps, 1))
        return manager.save(model, steps_completed=steps, optimizer=opt)

    def test_torn_write_of_only_slot_raises_typed_error(self, tmp_path):
        manager = CheckpointManager(str(tmp_path),
                                    CheckpointPolicy(keep_last=1))
        self._save(manager, 5)
        newest, _ = self._save(manager, 10)  # rotation evicted step 5
        assert [s for s, _ in manager.available()] == [10]
        data = open(newest, "rb").read()
        with open(newest, "wb") as fh:  # crash mid-write
            fh.write(data[: len(data) // 2])
        assert manager.latest_valid() is None
        with pytest.raises(CheckpointError):
            manager.restore(tiny_model(seed=2))

    def test_intact_single_slot_still_restores(self, tmp_path):
        manager = CheckpointManager(str(tmp_path),
                                    CheckpointPolicy(keep_last=1))
        self._save(manager, 5)
        self._save(manager, 10)
        steps, _ = manager.latest_valid()
        assert steps == 10


class TestCorrelatedRecovery:
    """Whole-node failures through the elastic trainer: atomic domain
    detection, and a regrow that resets error-feedback state for every
    rank the node took down."""

    def make_node_trainer(self, plan, policy):
        from repro.compression import CompressionConfig
        from repro.faults import NodeFailure, Topology  # noqa: F401

        topology = Topology(num_nodes=2)  # 8 ranks, 4 per node
        cluster = Cluster(Environment(), LASSEN, num_nodes=2)
        spec = WorldSpec(num_ranks=8, policy=SingletonDevicePolicy(),
                         config=Mv2Config(mv2_visible_devices="all",
                                          registration_cache=True))
        injector = FaultInjector(plan, topology=topology)
        world = MpiWorld(cluster, spec, faults=injector)
        engine = HorovodEngine(
            world.communicator(), HorovodConfig(cycle_time_s=2e-3),
            compression=CompressionConfig.parse("topk:0.25"),
        )
        dataset = SRDataset(SyntheticDiv2k(height=24, width=24, seed=7),
                            split="train",
                            degradation=DegradationConfig(scale=2))
        trainer = DistributedTrainer(
            lambda rank: EDSR(EDSR_TINY, rng=np.random.default_rng(50 + rank)),
            engine,
            dataset,
            batch_per_rank=1,
            lr_patch=8,
            faults=injector,
            recovery=policy,
        )
        return trainer, injector, engine

    def test_node_failure_declared_in_one_detection_window(self):
        from repro.faults import NodeFailure

        plan = FaultPlan(seed=9, faults=[NodeFailure(node=1, time=2.0)])
        trainer, injector, _ = self.make_node_trainer(plan, SHRINK_CONTINUE)
        result = trainer.train(10)
        assert result.world_sizes[0] == 8 and result.world_sizes[-1] == 4
        # the whole domain is declared atomically: one stall, one
        # domain-dead event — not four staggered watchdog windows
        assert result.resilience.detections == 1
        assert injector.trace.count("domain-dead") == 1
        assert injector.trace.count("rank-dead") == 4

    def test_supervisor_groups_domain_members(self):
        from repro.faults import NodeFailure, Topology
        from repro.resilience import HeartbeatSupervisor

        plan = FaultPlan(faults=[NodeFailure(node=1, time=1.0)])
        inj = FaultInjector(plan, topology=Topology(num_nodes=2))
        sup = HeartbeatSupervisor(range(8), inj)
        (group,) = sup.poll_domains(2.0)
        assert group.domain == "node:1"
        assert group.ranks == (4, 5, 6, 7)
        assert group.fail_time == 1.0
        assert sup.poll_domains(3.0) == []  # no re-declaration
        assert sup.active == [0, 1, 2, 3]

    def test_node_regrow_resets_residuals_for_every_recovered_rank(self):
        from repro.faults import NodeFailure

        plan = FaultPlan(seed=9,
                         faults=[NodeFailure(node=1, time=2.0, down_s=4.0)])
        policy = RecoveryPolicy(restart=True, regrow=True,
                                checkpoint=CheckpointPolicy(interval_steps=3))
        trainer, injector, engine = self.make_node_trainer(plan, policy)
        cleared = []
        original = engine.drop_compression_state

        def spy(rank):
            cleared.append(rank)
            return original(rank)

        engine.drop_compression_state = spy
        result = trainer.train(16)
        assert result.resilience.regrown_ranks == [4, 5, 6, 7]
        assert min(result.world_sizes) == 4
        assert result.world_sizes[-1] == 8
        assert injector.trace.count("rank-regrown") == 4
        # every lost rank had its top-k residuals dropped twice: once when
        # the node died, once on re-admission (stale feedback never leaks)
        for rank in (4, 5, 6, 7):
            assert cleared.count(rank) >= 2
        assert trainer.replicas_in_sync()
