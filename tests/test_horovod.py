"""Tests for the Horovod middleware: fusion, coordinator, engine, optimizer."""

import numpy as np
import pytest

from repro.errors import ConfigError, HorovodError
from repro.hardware import LASSEN, Cluster
from repro.horovod import (
    CoordinatorModel,
    DistributedOptimizer,
    HorovodConfig,
    HorovodEngine,
    PendingTensor,
    TensorFusion,
    Timeline,
    broadcast_parameters,
)
from repro.horovod.coordinator import straggler_factor
from repro.horovod.optimizer import scale_learning_rate
from repro.mpi import Mv2Config, MpiWorld, WorldSpec
from repro.mpi.process import SingletonDevicePolicy
from repro.sim import Environment
from repro.utils.units import KIB, MIB


def make_comm(num_gpus=4, config=None):
    nodes = max(1, (num_gpus + 3) // 4)
    cluster = Cluster(Environment(), LASSEN, num_nodes=nodes)
    spec = WorldSpec(
        num_ranks=num_gpus,
        policy=SingletonDevicePolicy(),
        config=config or Mv2Config(mv2_visible_devices="all", registration_cache=True),
    )
    return MpiWorld(cluster, spec).communicator()


def virtual_stream(sizes, *, ready=None):
    ready = ready or [0.0] * len(sizes)
    return [
        PendingTensor(name=f"t{i}", nbytes=s, ready_time=r)
        for i, (s, r) in enumerate(zip(sizes, ready))
    ]


class TestFusionPlanning:
    def test_small_tensors_fuse_into_one_message(self):
        fusion = TensorFusion(HorovodConfig(fusion_threshold=64 * MIB))
        plan = fusion.plan(virtual_stream([1 * MIB] * 10))
        assert len(plan.messages) == 1
        assert plan.messages[0].nbytes == 10 * MIB
        assert plan.tensors_fused == 10

    def test_threshold_splits_groups(self):
        fusion = TensorFusion(HorovodConfig(fusion_threshold=4 * MIB))
        plan = fusion.plan(virtual_stream([3 * MIB, 3 * MIB, 3 * MIB]))
        assert [m.nbytes for m in plan.messages] == [3 * MIB, 3 * MIB, 3 * MIB]

    def test_oversize_tensor_sent_alone(self):
        fusion = TensorFusion(HorovodConfig(fusion_threshold=8 * MIB))
        plan = fusion.plan(virtual_stream([16 * MIB, 1 * MIB, 1 * MIB]))
        assert plan.messages[0].nbytes == 16 * MIB
        assert not plan.messages[0].fused
        assert plan.messages[1].nbytes == 2 * MIB

    def test_zero_threshold_disables_fusion(self):
        fusion = TensorFusion(HorovodConfig(fusion_threshold=0))
        plan = fusion.plan(virtual_stream([1 * MIB] * 5))
        assert len(plan.messages) == 5
        assert plan.tensors_unfused == 5

    def test_cycle_time_gates_late_tensors(self):
        cfg = HorovodConfig(fusion_threshold=64 * MIB, cycle_time_s=1e-3)
        fusion = TensorFusion(cfg)
        plan = fusion.plan(
            virtual_stream([1 * MIB, 1 * MIB], ready=[0.0, 5e-3])
        )
        # second tensor arrives 5 cycles later -> separate message
        assert len(plan.messages) == 2
        assert plan.messages[1].cycle_index > plan.messages[0].cycle_index

    def test_ready_together_fuse_despite_cycles(self):
        cfg = HorovodConfig(fusion_threshold=64 * MIB, cycle_time_s=1e-3)
        plan = TensorFusion(cfg).plan(
            virtual_stream([1 * MIB, 1 * MIB], ready=[0.4e-3, 0.6e-3])
        )
        assert len(plan.messages) == 1

    def test_empty_stream(self):
        plan = TensorFusion(HorovodConfig()).plan([])
        assert plan.messages == [] and plan.cycles_used == 0

    def test_pack_unpack_roundtrip(self):
        arrays = [
            [np.arange(4, dtype=np.float32) + r for r in range(2)],
            [np.ones((2, 2), dtype=np.float32) * r for r in range(2)],
        ]
        tensors = [
            PendingTensor("a", 16, data=arrays[0]),
            PendingTensor("b", 16, data=arrays[1]),
        ]
        plan = TensorFusion(HorovodConfig()).plan(tensors)
        message = plan.messages[0]
        packed = TensorFusion.pack(message, 2)
        assert packed[0].size == 8
        packed = [p * 10 for p in packed]
        TensorFusion.unpack(message, packed)
        np.testing.assert_allclose(arrays[0][0], (np.arange(4) + 0) * 10)
        np.testing.assert_allclose(arrays[1][1], 10.0)

    def test_paper_scale_edsr_message_distribution(self):
        """The EDSR gradient stream must produce Table I's bin structure:
        unfused small tensors plus fused 16-64 MB buffers."""
        from repro.models import get_model_cost

        from repro.horovod.env import TUNED_FOR_EDSR

        cost = get_model_cost("edsr-paper")
        backward = 0.25  # seconds, batch 4 (paper regime)
        tensors = [
            PendingTensor(t.name, t.nbytes, ready_time=t.ready_fraction * backward)
            for t in cost.gradient_schedule()
        ]
        plan = TensorFusion(TUNED_FOR_EDSR).plan(tensors)
        sizes = plan.message_sizes()
        assert sum(sizes) == cost.gradient_bytes
        large = [s for s in sizes if s >= 16 * MIB]
        assert len(large) >= 2, f"expected >=2 large fused buffers, got {sizes}"
        assert max(sizes) <= 64 * MIB


class TestCoordinator:
    def test_single_rank_free(self):
        assert CoordinatorModel().cycle_overhead(1, 100) == 0.0

    def test_overhead_grows_with_ranks_and_tensors(self):
        c = CoordinatorModel()
        assert c.cycle_overhead(512, 100) > c.cycle_overhead(4, 100)
        assert c.cycle_overhead(64, 300) > c.cycle_overhead(64, 10)

    def test_straggler_factor_monotone(self):
        assert straggler_factor(1) == 1.0
        assert 1.0 < straggler_factor(4) < straggler_factor(512) < 1.25

    def test_invalid_ranks_rejected(self):
        with pytest.raises(ConfigError):
            CoordinatorModel().cycle_overhead(0, 1)


class TestEngine:
    def test_functional_allreduce_averages(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        data = [[np.full(8, float(r), dtype=np.float32) for r in range(4)]]
        tensors = [PendingTensor("g", 32, data=data[0])]
        engine.run_step(tensors)
        for arr in data[0]:
            np.testing.assert_allclose(arr, 1.5)

    def test_messages_serialize_on_comm_stream(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm, HorovodConfig(fusion_threshold=8 * MIB))
        timing = engine.run_step(virtual_stream([32 * MIB, 32 * MIB]))
        assert len(timing.messages) == 2
        first, second = timing.messages
        assert second.start >= first.finish

    def test_exposed_comm_shrinks_with_longer_backward(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        stream = virtual_stream([32 * MIB], ready=[0.0])
        fast = engine.run_step(stream, backward_time=0.001)
        slow = engine.run_step(stream, backward_time=1.0)
        assert slow.exposed_comm_time <= fast.exposed_comm_time

    def test_fusion_buffer_ids_stable_across_steps(self):
        """The registration-cache-friendliness mechanism: same slot id."""
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        stream = virtual_stream([1 * MIB, 1 * MIB])  # fuses into slot 0
        engine.run_step(stream)
        ids_first = dict(engine._slot_buffers)
        engine.run_step(virtual_stream([1 * MIB, 1 * MIB]))
        assert dict(engine._slot_buffers) == ids_first

    def test_timeline_records_messages(self):
        comm = make_comm(4)
        timeline = Timeline()
        engine = HorovodEngine(comm, timeline=timeline)
        engine.run_step(virtual_stream([1 * MIB, 1 * MIB]))
        assert len(timeline.by_kind("allreduce")) == 1
        assert timeline.total_time("allreduce") > 0

    def test_mismatched_rank_data_rejected(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        bad = PendingTensor("g", 8, data=[np.zeros(2, dtype=np.float32)] * 3)
        with pytest.raises(HorovodError):
            engine.run_step([bad])

    def test_coordination_time_positive_multirank(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        timing = engine.run_step(virtual_stream([1 * MIB]))
        assert timing.coordination_time > 0


class TestDistributedOptimizer:
    def _replicated_models(self, num_ranks, seed=0):
        from repro.models import EDSR, EDSR_TINY

        models = [
            EDSR(EDSR_TINY, rng=np.random.default_rng(100 + r))
            for r in range(num_ranks)
        ]
        return models

    def test_broadcast_synchronizes_replicas(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        models = self._replicated_models(4)
        broadcast_parameters(models, engine)
        ref = models[0].state_dict()
        for m in models[1:]:
            for name, value in m.state_dict().items():
                np.testing.assert_array_equal(value, ref[name])

    def test_replicas_stay_identical_through_training(self):
        """The core data-parallel invariant (paper §II-C): synchronized
        replicas remain bit-identical after each step."""
        from repro.models import EDSR, EDSR_TINY
        from repro.tensor import Tensor, functional as F
        from repro.tensor.optim import SGD

        comm = make_comm(2)
        engine = HorovodEngine(comm)
        models = self._replicated_models(2)
        broadcast_parameters(models, engine)
        opts = [SGD(m.parameters(), lr=0.01) for m in models]
        dist_opt = DistributedOptimizer(opts, models, engine)
        rng = np.random.default_rng(5)
        for step in range(3):
            dist_opt.zero_grad()
            for rank, model in enumerate(models):
                x = Tensor(rng.random((1, 3, 8, 8)).astype(np.float32))
                t = Tensor(rng.random((1, 3, 16, 16)).astype(np.float32))
                F.l1_loss(model(x), t).backward()
            dist_opt.step()
            ref = models[0].state_dict()
            for m in models[1:]:
                for name, value in m.state_dict().items():
                    np.testing.assert_array_equal(value, ref[name])

    def test_averaged_gradient_equals_large_batch(self):
        """Data-parallel equivalence: averaging per-rank gradients over
        shards equals the gradient of the combined batch."""
        from repro.models import EDSR, EDSR_TINY
        from repro.tensor import Tensor, functional as F

        rng = np.random.default_rng(9)
        x = rng.random((4, 3, 8, 8)).astype(np.float32)
        t = rng.random((4, 3, 16, 16)).astype(np.float32)

        # combined batch on one model
        single = EDSR(EDSR_TINY, rng=np.random.default_rng(1))
        F.mse_loss(single(Tensor(x)), Tensor(t)).backward()
        reference = {n: p.grad.copy() for n, p in single.named_parameters()}

        # two replicas, two shards, averaged through the engine
        comm = make_comm(2)
        engine = HorovodEngine(comm)
        models = [EDSR(EDSR_TINY, rng=np.random.default_rng(1)) for _ in range(2)]
        for rank, model in enumerate(models):
            xs = Tensor(x[rank * 2 : rank * 2 + 2])
            ts = Tensor(t[rank * 2 : rank * 2 + 2])
            F.mse_loss(model(xs), ts).backward()
        opts = [
            __import__("repro.tensor.optim", fromlist=["SGD"]).SGD(
                m.parameters(), lr=0.01
            )
            for m in models
        ]
        dist = DistributedOptimizer(opts, models, engine)
        stream = dist._gradient_stream(backward_time=0.0)
        engine.run_step(stream)
        averaged = {n: p.grad for n, p in models[0].named_parameters()}
        for name, ref_grad in reference.items():
            np.testing.assert_allclose(averaged[name], ref_grad, atol=1e-5)

    def test_lr_scaling_rule(self):
        assert scale_learning_rate(1e-4, 512) == pytest.approx(5.12e-2)

    def test_replica_count_mismatch_rejected(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm)
        models = self._replicated_models(2)
        with pytest.raises(HorovodError):
            broadcast_parameters(models, engine)


class TestFusionBufferMemory:
    def test_allocation_charges_each_rank_hbm(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm, HorovodConfig(fusion_threshold=64 * MIB))
        total = engine.allocate_fusion_buffers()
        assert total == 4 * 64 * MIB
        cluster = comm.world.cluster
        for g in range(4):
            pool = cluster.gpu_memory(cluster.gpu_ref(g))
            assert any(
                tag.startswith("fusion-buffer") for tag in pool.used_by_tag()
            )
        # idempotent
        assert engine.allocate_fusion_buffers() == 0
        engine.release_fusion_buffers()
        for g in range(4):
            pool = cluster.gpu_memory(cluster.gpu_ref(g))
            assert not any(
                tag.startswith("fusion-buffer") for tag in pool.used_by_tag()
            )

    def test_zero_threshold_is_noop(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm, HorovodConfig(fusion_threshold=0))
        assert engine.allocate_fusion_buffers() == 0

    def test_nccl_backend_noop(self):
        from repro.hardware import Cluster as _Cluster
        from repro.nccl import NcclWorld
        from repro.sim import Environment as _Env

        cluster = _Cluster(_Env(), LASSEN, num_nodes=1)
        engine = HorovodEngine(NcclWorld(cluster, 4).communicator())
        assert engine.allocate_fusion_buffers() == 0


class TestResponseCache:
    def test_cache_reduces_coordination_on_repeat_steps(self):
        comm = make_comm(4)
        cached = HorovodEngine(
            comm, HorovodConfig(cycle_time_s=1e-3, response_cache=True)
        )
        stream = virtual_stream([1 * MIB, 1 * MIB])
        first = cached.run_step(stream)
        second = cached.run_step(stream)
        assert second.coordination_time < first.coordination_time
        assert cached.response_cache_hits >= 1
        assert cached.response_cache_misses >= 1

    def test_cache_disabled_by_default(self):
        comm = make_comm(4)
        engine = HorovodEngine(comm, HorovodConfig(cycle_time_s=1e-3))
        stream = virtual_stream([1 * MIB])
        a = engine.run_step(stream)
        b = engine.run_step(stream)
        assert a.coordination_time == pytest.approx(b.coordination_time)
        assert engine.response_cache_hits == 0

    def test_new_signature_misses(self):
        comm = make_comm(4)
        engine = HorovodEngine(
            comm, HorovodConfig(cycle_time_s=1e-3, response_cache=True)
        )
        engine.run_step(virtual_stream([1 * MIB]))
        engine.run_step(
            [PendingTensor("different", 1 * MIB)]
        )
        assert engine.response_cache_misses == 2
