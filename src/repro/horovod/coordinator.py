"""Coordinator (negotiation) cost model.

Horovod synchronizes which tensors are globally ready through a
rank-0 coordinator each cycle: every worker sends its ready-tensor bitmap
(a gather), rank 0 intersects them and broadcasts the response list.  The
cost grows with both world size and tensor count — one of the scale taxes
that erode efficiency in Figs. 10/13 even with a perfect allreduce.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigError, RankFailedError


@dataclass(frozen=True)
class CoordinatorModel:
    """Per-cycle negotiation cost: tree latency + rank-0 processing."""

    hop_latency_s: float = 6.0e-6  # small-message hop (TCP/gloo control plane)
    # rank 0 deserializes and intersects one worker's ready-bitmap per rank
    # per cycle; the Python-side coordinator costs ~10 us/rank in Horovod
    # 0.19, the dominant negotiation term at 512 ranks
    per_rank_processing_s: float = 12e-6
    per_tensor_processing_s: float = 0.15e-6

    def cycle_overhead(self, num_ranks: int, num_tensors: int) -> float:
        """Negotiation wall time added to one Horovod cycle."""
        if num_ranks < 1:
            raise ConfigError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks == 1:
            return 0.0
        tree_depth = math.ceil(math.log2(num_ranks))
        gather_bcast = 2 * tree_depth * self.hop_latency_s
        processing = (
            num_ranks * self.per_rank_processing_s
            + num_tensors * self.per_tensor_processing_s
        )
        return gather_bcast + processing

    def cached_cycle_overhead(self, num_ranks: int) -> float:
        """Negotiation cost when the response cache hits: the per-rank
        coordinator processing disappears; only a small bitmask allreduce
        remains."""
        if num_ranks < 1:
            raise ConfigError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks == 1:
            return 0.0
        tree_depth = math.ceil(math.log2(num_ranks))
        return 2 * tree_depth * self.hop_latency_s


class ResiliencePolicy(enum.Enum):
    """What the coordinator does when a rank stops responding."""

    SHRINK = "shrink"  # drop the rank, rebuild the ring, keep training
    ABORT = "abort"  # raise a typed error within the detection timeout


class FaultTolerantCoordinator:
    """Membership tracking on top of :class:`CoordinatorModel`.

    The rank-0 coordinator notices a missing worker when its ready-bitmap
    fails to arrive for ``detect_timeout_s`` of simulated time.  Under
    ``SHRINK`` the dead rank is removed and negotiation continues on the
    survivors (elastic-Horovod-style ring shrink); under ``ABORT`` the job
    raises :class:`~repro.errors.RankFailedError` at detection time.
    """

    def __init__(
        self,
        ranks: Iterable[int],
        *,
        policy: ResiliencePolicy | str = ResiliencePolicy.SHRINK,
        detect_timeout_s: float = 0.5,
        injector=None,
        model: CoordinatorModel | None = None,
    ):
        self.active_ranks = list(ranks)
        if not self.active_ranks:
            raise ConfigError("coordinator needs at least one rank")
        self.policy = ResiliencePolicy(policy)
        if detect_timeout_s < 0:
            raise ConfigError(
                f"detect_timeout_s must be >= 0, got {detect_timeout_s}"
            )
        self.detect_timeout_s = detect_timeout_s
        self.injector = injector
        self.model = model or CoordinatorModel()
        self.shrink_count = 0

    def cycle_overhead(self, num_tensors: int) -> float:
        return self.model.cycle_overhead(len(self.active_ranks), num_tensors)

    def poll(self, now: float) -> list[int]:
        """Detect ranks whose failure time has passed; apply the policy.

        Returns the ranks removed (SHRINK).  Raises
        :class:`~repro.errors.RankFailedError` under ABORT, or if no rank
        survives.  Detection itself costs ``detect_timeout_s`` of wall
        time, which the caller charges to the current step.
        """
        if self.injector is None:
            return []
        dead = [
            r
            for r in self.active_ranks
            if (t := self.injector.failure_time(r)) is not None and t <= now
        ]
        if not dead:
            return []
        detected_at = now + self.detect_timeout_s
        for rank in dead:
            self.injector.record(
                "rank-failed", self.injector.failure_time(rank), rank=rank
            )
        if self.policy is ResiliencePolicy.ABORT:
            self.injector.record(
                "abort", detected_at, rank=dead[0],
                detail=f"policy=abort dead={dead}",
            )
            raise RankFailedError(
                f"rank(s) {dead} failed; abort policy triggered at "
                f"t={detected_at:.4f}s (detect timeout {self.detect_timeout_s}s)"
            )
        for rank in dead:
            self.active_ranks.remove(rank)
            self.shrink_count += 1
            self.injector.record(
                "ring-shrink", detected_at, rank=rank,
                detail=f"survivors={len(self.active_ranks)}",
            )
        if not self.active_ranks:
            raise RankFailedError(
                f"all ranks failed by t={now:.4f}s; nothing left to shrink to"
            )
        return dead


def straggler_factor(num_ranks: int, *, sigma: float = 0.03) -> float:
    """Expected synchronous-step inflation from per-rank compute jitter.

    Each rank's backward time varies by ~``sigma`` (data-dependent kernels,
    OS noise); a synchronous allreduce waits for the slowest of ``p`` ranks.
    For Gaussian jitter, E[max of p] ~= sigma * sqrt(2 ln p) — the classic
    straggler tax that bends every curve in Fig. 13 down at scale.
    """
    if num_ranks <= 1:
        return 1.0
    return 1.0 + sigma * math.sqrt(2.0 * math.log(num_ranks))
