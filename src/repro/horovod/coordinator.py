"""Coordinator (negotiation) cost model.

Horovod synchronizes which tensors are globally ready through a
rank-0 coordinator each cycle: every worker sends its ready-tensor bitmap
(a gather), rank 0 intersects them and broadcasts the response list.  The
cost grows with both world size and tensor count — one of the scale taxes
that erode efficiency in Figs. 10/13 even with a perfect allreduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CoordinatorModel:
    """Per-cycle negotiation cost: tree latency + rank-0 processing."""

    hop_latency_s: float = 6.0e-6  # small-message hop (TCP/gloo control plane)
    # rank 0 deserializes and intersects one worker's ready-bitmap per rank
    # per cycle; the Python-side coordinator costs ~10 us/rank in Horovod
    # 0.19, the dominant negotiation term at 512 ranks
    per_rank_processing_s: float = 12e-6
    per_tensor_processing_s: float = 0.15e-6

    def cycle_overhead(self, num_ranks: int, num_tensors: int) -> float:
        """Negotiation wall time added to one Horovod cycle."""
        if num_ranks < 1:
            raise ConfigError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks == 1:
            return 0.0
        tree_depth = math.ceil(math.log2(num_ranks))
        gather_bcast = 2 * tree_depth * self.hop_latency_s
        processing = (
            num_ranks * self.per_rank_processing_s
            + num_tensors * self.per_tensor_processing_s
        )
        return gather_bcast + processing

    def cached_cycle_overhead(self, num_ranks: int) -> float:
        """Negotiation cost when the response cache hits: the per-rank
        coordinator processing disappears; only a small bitmask allreduce
        remains."""
        if num_ranks < 1:
            raise ConfigError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks == 1:
            return 0.0
        tree_depth = math.ceil(math.log2(num_ranks))
        return 2 * tree_depth * self.hop_latency_s


def straggler_factor(num_ranks: int, *, sigma: float = 0.03) -> float:
    """Expected synchronous-step inflation from per-rank compute jitter.

    Each rank's backward time varies by ~``sigma`` (data-dependent kernels,
    OS noise); a synchronous allreduce waits for the slowest of ``p`` ranks.
    For Gaussian jitter, E[max of p] ~= sigma * sqrt(2 ln p) — the classic
    straggler tax that bends every curve in Fig. 13 down at scale.
    """
    if num_ranks <= 1:
        return 1.0
    return 1.0 + sigma * math.sqrt(2.0 * math.log(num_ranks))
