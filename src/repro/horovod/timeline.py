"""Horovod timeline: ordered record of middleware events.

Mirrors ``HOROVOD_TIMELINE``'s role: a post-hoc trace of cycles and
collectives for debugging and for hvprof's input.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimelineEvent:
    kind: str
    start: float
    duration: float
    nbytes: int = 0
    detail: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Timeline:
    events: list[TimelineEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        *,
        start: float,
        duration: float,
        nbytes: int = 0,
        detail: str = "",
    ) -> None:
        self.events.append(TimelineEvent(kind, start, duration, nbytes, detail))

    def by_kind(self, kind: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == kind]

    def total_time(self, kind: str) -> float:
        return sum(e.duration for e in self.by_kind(kind))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> list[dict]:
        """Render as Chrome trace-event JSON objects (the format real
        HOROVOD_TIMELINE files use; open with chrome://tracing or Perfetto).

        Durations are emitted as complete ('X') events in microseconds.
        """
        trace = []
        for i, event in enumerate(self.events):
            trace.append(
                {
                    "name": event.kind,
                    "cat": "horovod",
                    "ph": "X",
                    "ts": event.start * 1e6,
                    "dur": event.duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {"nbytes": event.nbytes, "detail": event.detail,
                             "seq": i},
                }
            )
        return trace

    def save_chrome_trace(self, path: str) -> None:
        """Write the trace to a JSON file."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
