"""Backend factory: build a communicator for Horovod via ``repro.comm``.

Thin shim over :func:`repro.comm.registry.build_communicator`, kept for
API stability — the scaling study, benchmarks, and tests all call
``build_backend``.  The communicator comes back wrapped in a
:class:`~repro.comm.api.RoutedCommunicator`, so algorithm-selection
tables and unified per-op accounting apply to every backend.
"""

from __future__ import annotations

from repro.comm.registry import build_communicator
from repro.hardware.cluster import Cluster
from repro.mpi.collectives import ExecutionMode
from repro.mpi.process import WorldSpec


def build_backend(
    cluster: Cluster,
    backend: str,
    *,
    world_spec: WorldSpec | None = None,
    num_ranks: int | None = None,
    mode: ExecutionMode = ExecutionMode.ANALYTIC,
    faults=None,
):
    """Return (world, communicator) for the requested backend.

    MPI requires a :class:`WorldSpec` (visibility policy + MV2 config);
    NCCL and the hierarchical backend need an explicit rank count
    (``num_ranks`` or ``world_spec``) — ambiguous world sizing raises
    :class:`~repro.errors.ConfigError` instead of silently simulating
    ``cluster.num_gpus`` ranks.

    ``faults`` (a :class:`~repro.faults.FaultInjector`) perturbs every
    backend uniformly: the MPI transport sees per-message verdicts, and
    the NCCL/hierarchical cost envelopes degrade their link classes and
    charge message-fault penalties through the same injector.
    """
    return build_communicator(
        cluster,
        backend,
        world_spec=world_spec,
        num_ranks=num_ranks,
        mode=mode,
        faults=faults,
    )
