"""Backend factory: build an MPI or NCCL communicator for Horovod."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.cluster import Cluster
from repro.mpi.collectives import ExecutionMode
from repro.mpi.comm import MpiWorld
from repro.mpi.process import WorldSpec
from repro.nccl.communicator import NcclWorld


def build_backend(
    cluster: Cluster,
    backend: str,
    *,
    world_spec: WorldSpec | None = None,
    num_ranks: int | None = None,
    mode: ExecutionMode = ExecutionMode.ANALYTIC,
    faults=None,
):
    """Return (world, communicator) for the requested backend.

    MPI requires a :class:`WorldSpec` (visibility policy + MV2 config);
    NCCL only needs the rank count — it manages devices itself, which is
    exactly the asymmetry the paper investigates.

    ``faults`` (a :class:`~repro.faults.FaultInjector`) is threaded into
    the MPI transport so link/message faults perturb collective timing;
    the NCCL cost envelope has no per-message transport, so there it only
    governs membership/compute faults at the layers above.
    """
    if backend == "mpi":
        if world_spec is None:
            raise ConfigError("MPI backend requires a WorldSpec")
        world = MpiWorld(cluster, world_spec, mode=mode, faults=faults)
        return world, world.communicator()
    if backend == "nccl":
        ranks = num_ranks if num_ranks is not None else (
            world_spec.num_ranks if world_spec else cluster.num_gpus
        )
        world = NcclWorld(cluster, ranks)
        return world, world.communicator()
    raise ConfigError(f"unknown backend {backend!r}; use 'mpi' or 'nccl'")
