"""Tensor Fusion: the 6-step algorithm from the paper's §II-D.

1. Determine which tensors are ready to be reduced; select the first few
   that fit in ``HOROVOD_FUSION_THRESHOLD`` bytes and share a dtype.
2. Allocate the fusion buffer (once; it is *reused* every cycle — which is
   why the registration cache hits ~93% of lookups).
3. Copy selected tensors into the fusion buffer.
4. Execute the allreduce on the fusion buffer.
5. Copy data back out to the output tensors.
6. Repeat until no ready tensors remain in this cycle, then wait
   ``HOROVOD_CYCLE_TIME`` for the next cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import HorovodError
from repro.horovod.env import HorovodConfig
from repro.mpi.datatypes import Datatype


@dataclass
class PendingTensor:
    """One gradient awaiting reduction.

    ``ready_time`` is seconds after backward start when the gradient is
    produced.  ``data`` holds per-rank numpy arrays in functional mode
    (``data[rank]``), or ``None`` in performance mode.
    """

    name: str
    nbytes: int
    ready_time: float = 0.0
    dtype: Datatype = Datatype.FLOAT32
    data: Optional[list[np.ndarray]] = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise HorovodError(f"tensor {self.name!r} has negative size")
        if self.data is not None:
            for arr in self.data:
                if arr.size * arr.itemsize != self.nbytes:
                    raise HorovodError(
                        f"tensor {self.name!r}: rank array bytes != nbytes"
                    )


@dataclass
class FusionMessage:
    """One allreduce submitted to the backend: >= 1 fused tensors."""

    tensors: list[PendingTensor]
    cycle_index: int
    buffer_slot: int  # which fusion buffer (stable identity across steps)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tensors)

    @property
    def fused(self) -> bool:
        return len(self.tensors) > 1

    @property
    def names(self) -> list[str]:
        return [t.name for t in self.tensors]


@dataclass
class FusionPlan:
    """Output of the cycle simulation: ordered messages + cycle count."""

    messages: list[FusionMessage]
    cycles_used: int
    tensors_fused: int = 0
    tensors_unfused: int = 0

    def message_sizes(self) -> list[int]:
        return [m.nbytes for m in self.messages]


class TensorFusion:
    """Packs a ready-time-ordered tensor stream into fusion messages."""

    def __init__(self, config: HorovodConfig):
        self.config = config

    @staticmethod
    def pack_greedy(
        ready: list[PendingTensor],
        threshold: int,
        *,
        cycle_index: int,
        slot_start: int,
    ) -> tuple[list[FusionMessage], int]:
        """Greedy packing of one drained ready-set (§II-D step 1).

        Submission order, same dtype, at most ``threshold`` bytes per
        buffer; an oversized tensor goes alone, unfused.  Returns the
        messages and the next fusion-buffer slot counter.  Shared by
        :meth:`plan` and the engine's execution-coupled drain loop (the
        two used to carry copies of this loop).
        """
        messages: list[FusionMessage] = []
        slot = slot_start
        i = 0
        while i < len(ready):
            group = [ready[i]]
            size = ready[i].nbytes
            dtype = ready[i].dtype
            i += 1
            if threshold > 0:
                while (
                    i < len(ready)
                    and ready[i].dtype is dtype
                    and size + ready[i].nbytes <= threshold
                ):
                    size += ready[i].nbytes
                    group.append(ready[i])
                    i += 1
            messages.append(
                FusionMessage(group, cycle_index, buffer_slot=slot % 8)
            )
            slot += 1
        return messages, slot

    def plan(self, tensors: list[PendingTensor]) -> FusionPlan:
        """Simulate the cycle loop over the given tensor stream.

        Tensors become eligible at their ``ready_time``; each cycle fires at
        ``k * cycle_time`` and drains everything ready by then, packing
        greedily (submission order, same dtype) into buffers of at most
        ``fusion_threshold`` bytes.  A tensor larger than the threshold is
        sent alone, unfused (Horovod's behaviour).
        """
        if not tensors:
            return FusionPlan([], 0)
        threshold = self.config.fusion_threshold
        cycle = self.config.cycle_time_s
        pending = sorted(tensors, key=lambda t: (t.ready_time, t.name))
        messages: list[FusionMessage] = []
        cycle_index = 0
        slot = 0
        i = 0
        now = 0.0
        while i < len(pending):
            # advance to the first cycle at which something is ready
            if pending[i].ready_time > now:
                if cycle > 0:
                    cycles_needed = int(np.ceil((pending[i].ready_time - now) / cycle))
                    cycle_index += max(1, cycles_needed)
                    now = cycle_index * cycle
                else:
                    now = pending[i].ready_time
            # drain everything ready by `now`, packing greedily
            ready_end = i
            while ready_end < len(pending) and pending[ready_end].ready_time <= now:
                ready_end += 1
            drained, slot = self.pack_greedy(
                pending[i:ready_end], threshold,
                cycle_index=cycle_index, slot_start=slot,
            )
            messages.extend(drained)
            i = ready_end
            if i < len(pending):
                cycle_index += 1
                now = cycle_index * cycle if cycle > 0 else pending[i].ready_time
        fused = sum(len(m.tensors) for m in messages if m.fused)
        unfused = sum(1 for m in messages if not m.fused)
        return FusionPlan(
            messages, cycles_used=cycle_index + 1,
            tensors_fused=fused, tensors_unfused=unfused,
        )

    # -- functional packing ---------------------------------------------------
    @staticmethod
    def pack(message: FusionMessage, num_ranks: int) -> list[np.ndarray]:
        """Concatenate each rank's tensors into its fusion-buffer content."""
        buffers = []
        for rank in range(num_ranks):
            parts = []
            for t in message.tensors:
                if t.data is None:
                    raise HorovodError(f"tensor {t.name!r} has no data to pack")
                parts.append(t.data[rank].reshape(-1))
            buffers.append(np.concatenate(parts))
        return buffers

    @staticmethod
    def unpack(message: FusionMessage, buffers: list[np.ndarray]) -> None:
        """Scatter reduced fusion-buffer contents back into tensor arrays."""
        for rank, buf in enumerate(buffers):
            offset = 0
            for t in message.tensors:
                count = t.data[rank].size
                t.data[rank][...] = buf[offset : offset + count].reshape(
                    t.data[rank].shape
                )
                offset += count
