"""Distributed optimizer and parameter broadcast (paper §III-A steps 2-4).

The paper's recipe for adding Horovod to EDSR:

2. broadcast initial model parameters from rank 0;
3. wrap the optimizer in Horovod's DistributedOptimizer (allreduce-averaged
   gradients before each update);
4. scale the learning rate by the number of devices.

Our simulation runs all replicas lock-step in one process, so
:class:`DistributedOptimizer` owns *all* ranks' optimizers and reduces
across their models through the Horovod engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import HorovodError
from repro.horovod.engine import HorovodEngine, StepTiming
from repro.horovod.fusion import PendingTensor
from repro.mpi.comm import GpuBuffer
from repro.tensor.nn.module import Module
from repro.tensor.optim.base import Optimizer


def scale_learning_rate(base_lr: float, num_ranks: int) -> float:
    """Linear LR scaling rule (paper §III-A step 4)."""
    return base_lr * num_ranks


def broadcast_parameters(models: Sequence[Module], engine: HorovodEngine) -> None:
    """Copy rank 0's parameters to every replica (one bcast per tensor)."""
    if len(models) != engine.num_ranks:
        raise HorovodError(
            f"{len(models)} replicas for a {engine.num_ranks}-rank world"
        )
    named = [dict(m.named_parameters()) for m in models]
    reference = named[0]
    for name, param in reference.items():
        buffers = []
        for rank in range(engine.num_ranks):
            if name not in named[rank]:
                raise HorovodError(f"replica {rank} is missing parameter {name!r}")
            buffers.append(GpuBuffer.from_array(named[rank][name].data, name=name))
        engine.comm.bcast(buffers, root_index=0)


class DistributedOptimizer:
    """Averages gradients across replicas, then applies each local update."""

    def __init__(
        self,
        optimizers: Sequence[Optimizer],
        models: Sequence[Module],
        engine: HorovodEngine,
    ):
        if len(optimizers) != len(models):
            raise HorovodError("need one optimizer per model replica")
        if len(models) != engine.num_ranks:
            raise HorovodError(
                f"{len(models)} replicas for a {engine.num_ranks}-rank world"
            )
        self.optimizers = list(optimizers)
        self.models = list(models)
        self.engine = engine
        # original rank ids owning each replica (shrinks on rank failure)
        self.ranks = list(range(len(models)))

    def drop_rank(self, rank: int) -> None:
        """Remove a failed rank's replica and shrink the engine's ring."""
        if rank not in self.ranks:
            raise HorovodError(f"rank {rank} not in optimizer world {self.ranks}")
        if len(self.ranks) == 1:
            raise HorovodError("cannot drop the last surviving rank")
        i = self.ranks.index(rank)
        del self.ranks[i]
        del self.models[i]
        del self.optimizers[i]
        self.engine.drop_compression_state(rank)
        self.engine.shrink_to(self.ranks)

    def add_rank(self, rank: int, model: Module, optimizer: Optimizer) -> None:
        """Re-admit a rank (elastic re-grow): insert its replica in rank
        order and re-form the engine's ring at the larger world."""
        if rank in self.ranks:
            raise HorovodError(f"rank {rank} already in optimizer world")
        i = sum(1 for r in self.ranks if r < rank)
        self.ranks.insert(i, rank)
        self.models.insert(i, model)
        self.optimizers.insert(i, optimizer)
        # a regrown replica starts from fresh state: any error-feedback
        # residual surviving from the rank's previous life is stale
        self.engine.drop_compression_state(rank)
        self.engine.reform_to(self.ranks)

    def zero_grad(self) -> None:
        for opt in self.optimizers:
            opt.zero_grad()

    def _gradient_stream(self, backward_time: float) -> list[PendingTensor]:
        """Build the pending-tensor stream from live replica gradients.

        Tensors are emitted in reverse parameter order (backward produces
        the tail's gradients first) with ready times spread uniformly over
        the backward pass.
        """
        named = [dict(m.named_parameters()) for m in self.models]
        names = list(named[0].keys())
        stream: list[PendingTensor] = []
        total = len(names)
        for i, name in enumerate(reversed(names)):
            grads = []
            for rank, params in enumerate(named):
                if params[name].grad is None:
                    raise HorovodError(
                        f"parameter {name!r} has no gradient on rank {rank}"
                    )
                grads.append(params[name].grad)
            ready = backward_time * (i + 1) / total if total else 0.0
            stream.append(
                PendingTensor(
                    name=name,
                    nbytes=grads[0].size * grads[0].itemsize,
                    ready_time=ready,
                    data=grads,
                )
            )
        return stream

    def step(self, *, backward_time: float = 0.0) -> StepTiming:
        """Allreduce-average all gradients, then run each local optimizer."""
        stream = self._gradient_stream(backward_time)
        timing = self.engine.run_step(stream, backward_time=backward_time)
        for opt in self.optimizers:
            opt.step()
        return timing

    # -- local SGD ----------------------------------------------------------
    def step_local(self) -> None:
        """Apply each replica's *local* gradients without any reduction
        (local-SGD inner step: replicas diverge until the next sync)."""
        for opt in self.optimizers:
            opt.step()

    def sync_parameters(self) -> StepTiming:
        """Average model *parameters* across replicas (local-SGD sync point).

        Runs the live weight arrays through the engine as a zero-ready-time
        stream so the synchronization is priced with the same fusion and
        collective machinery as a gradient reduction.  ``force_dense``
        because sparsifying weights would break the averaging contract;
        dense fp16/bf16 compression still applies (and is therefore an
        explicit accuracy trade documented in docs/compression.md).
        """
        named = [dict(m.named_parameters()) for m in self.models]
        names = list(named[0].keys())
        stream: list[PendingTensor] = []
        for name in names:
            arrays = []
            for rank, params in enumerate(named):
                if name not in params:
                    raise HorovodError(
                        f"replica {rank} is missing parameter {name!r}"
                    )
                arrays.append(params[name].data)
            stream.append(
                PendingTensor(
                    name=name,
                    nbytes=arrays[0].size * arrays[0].itemsize,
                    ready_time=0.0,
                    data=arrays,
                )
            )
        return self.engine.run_step(stream, backward_time=0.0, force_dense=True)
