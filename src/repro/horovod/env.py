"""Horovod tuning knobs (paper §II-D).

Defaults match Horovod 0.19: 64 MB fusion threshold, 3.5 ms cycle time.
The paper tunes both per scale "according to [7]"; the scaling study
exposes them for exactly that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import ConfigError
from repro.utils.units import MIB, parse_bytes


@dataclass(frozen=True)
class HorovodConfig:
    fusion_threshold: int = 64 * MIB
    cycle_time_s: float = 3.5e-3
    backend: str = "mpi"
    # Horovod's response cache (HOROVOD_CACHE_CAPACITY): when a cycle's
    # ready-tensor set was negotiated before, the coordinator round-trip is
    # replaced by a cheap cache-bit exchange.  Off by default to model the
    # paper-era default behaviour; the ablation suite measures its effect.
    response_cache: bool = False

    def __post_init__(self) -> None:
        if self.fusion_threshold < 0:
            raise ConfigError("fusion_threshold must be >= 0 (0 disables fusion)")
        if self.cycle_time_s < 0:
            raise ConfigError("cycle_time_s must be >= 0")
        if self.backend not in ("mpi", "nccl"):
            raise ConfigError(f"backend must be 'mpi' or 'nccl', got {self.backend!r}")

    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "HorovodConfig":
        kwargs = {}
        if "HOROVOD_FUSION_THRESHOLD" in env:
            kwargs["fusion_threshold"] = parse_bytes(env["HOROVOD_FUSION_THRESHOLD"])
        if "HOROVOD_CYCLE_TIME" in env:
            # Horovod takes milliseconds
            kwargs["cycle_time_s"] = float(env["HOROVOD_CYCLE_TIME"]) / 1e3
        if "HOROVOD_GPU_ALLREDUCE" in env:
            kwargs["backend"] = env["HOROVOD_GPU_ALLREDUCE"].lower()
        return cls(**kwargs)

    def replace(self, **kwargs) -> "HorovodConfig":
        return replace(self, **kwargs)


#: the paper tunes HOROVOD_CYCLE_TIME/FUSION_THRESHOLD per scale "according
#: to [7]".  EDSR's uniform resblock backward emits one ~2.4 MB gradient
#: every ~3.8 ms; the stock 3.5 ms cycle would send each alone, so the tuned
#: configuration lengthens the cycle until fused messages reach the 16-64 MB
#: range Table I reports.
TUNED_FOR_EDSR = HorovodConfig(fusion_threshold=64 * MIB, cycle_time_s=55e-3)
