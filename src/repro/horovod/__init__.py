"""Horovod-like data-parallel middleware (paper §II-D).

Sits between the DL framework and a communication backend (MPI or NCCL),
exactly as in the paper's Fig. 3 stack.  Implements:

* **Tensor Fusion** — the 6-step buffer-packing algorithm of §II-D with
  ``HOROVOD_FUSION_THRESHOLD`` / ``HOROVOD_CYCLE_TIME`` semantics
  (:mod:`repro.horovod.fusion`);
* the coordinator's per-cycle negotiation cost model
  (:mod:`repro.horovod.coordinator`);
* :class:`~repro.horovod.optimizer.DistributedOptimizer` and
  ``broadcast_parameters`` — the two integration points §III-A adds to
  EDSR's training loop;
* a timeline recorder for post-hoc analysis
  (:mod:`repro.horovod.timeline`).
"""

from repro.horovod.env import HorovodConfig
from repro.horovod.fusion import FusionMessage, PendingTensor, TensorFusion
from repro.horovod.coordinator import (
    CoordinatorModel,
    FaultTolerantCoordinator,
    ResiliencePolicy,
)
from repro.horovod.engine import HorovodEngine, StepTiming
from repro.horovod.optimizer import DistributedOptimizer, broadcast_parameters
from repro.horovod.timeline import Timeline, TimelineEvent

__all__ = [
    "HorovodConfig",
    "PendingTensor",
    "FusionMessage",
    "TensorFusion",
    "CoordinatorModel",
    "FaultTolerantCoordinator",
    "ResiliencePolicy",
    "HorovodEngine",
    "StepTiming",
    "DistributedOptimizer",
    "broadcast_parameters",
    "Timeline",
    "TimelineEvent",
]
