"""Horovod execution engine: cycles, fusion buffers, backend submission.

Runs one training step's gradient stream through Tensor Fusion and the
backend communicator, producing both the *numeric* result (functional mode:
gradients really are averaged across ranks) and the *timing* result
(when communication finishes relative to backward, what was exposed).

Execution model: Horovod submits collectives on a single communication
stream, so messages run back-to-back; a message cannot start before its
cycle fires, all of its tensors are ready, and the negotiation for that
cycle has completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression import (
    CompressionConfig,
    build_compressor,
    sparse_wire_nbytes,
    sparsify_with_feedback,
    top_k_count,
)
from repro.errors import HorovodError
from repro.horovod.coordinator import CoordinatorModel
from repro.horovod.env import HorovodConfig
from repro.horovod.fusion import FusionMessage, PendingTensor, TensorFusion
from repro.horovod.timeline import Timeline
from repro.mpi.comm import GpuBuffer
from repro.mpi.datatypes import Datatype


@dataclass
class MessageRecord:
    """Timing of one submitted allreduce."""

    nbytes: int
    start: float
    finish: float
    fused_count: int
    algorithm: str

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class StepTiming:
    """Timing decomposition of one training step's communication."""

    backward_time: float
    comm_finish: float  # seconds after backward start when last reduce lands
    coordination_time: float
    messages: list[MessageRecord] = field(default_factory=list)
    cycles_used: int = 0

    @property
    def exposed_comm_time(self) -> float:
        """Communication not hidden behind the backward pass."""
        return max(0.0, self.comm_finish - self.backward_time)

    @property
    def total_comm_time(self) -> float:
        return sum(m.duration for m in self.messages)


class HorovodEngine:
    """Drives fusion + backend collectives for one communicator."""

    def __init__(
        self,
        comm,
        config: HorovodConfig | None = None,
        *,
        coordinator: CoordinatorModel | None = None,
        timeline: Timeline | None = None,
        compression: CompressionConfig | None = None,
    ):
        self.comm = comm
        self.config = config or HorovodConfig()
        self.fusion = TensorFusion(self.config)
        self.coordinator = coordinator or CoordinatorModel()
        self.timeline = timeline
        self.compression = compression or CompressionConfig()
        self.compressor = build_compressor(self.compression)
        # top-k error-feedback residuals, keyed (world rank id, tensor name).
        # Survives ring reforms: a surviving rank keeps its accumulated
        # feedback across elastic shrink/regrow, but a *re-admitted* rank
        # must start from zero (see drop_compression_state).
        self._topk_residuals: dict[tuple, np.ndarray] = {}
        # Stable fusion-buffer identities per (slot, rank): the reuse that
        # makes the registration cache effective (paper §III-D).
        self._slot_buffers: dict[tuple[int, int], int] = {}
        self._fusion_allocations: list = []
        # response cache: signatures of previously-negotiated drain sets
        self._response_cache: set[frozenset] = set()
        self.response_cache_hits = 0
        self.response_cache_misses = 0

    def allocate_fusion_buffers(self) -> int:
        """Charge each rank's HBM for its fusion buffer (§II-D step 2).

        Horovod allocates one ``HOROVOD_FUSION_THRESHOLD``-sized device
        buffer per worker; on a 16 GB V100 the default 64 MB is invisible,
        but outsized thresholds eat into the activation budget (the memory
        side of fusion tuning).  Returns total bytes reserved.  No-op for
        backends without CUDA contexts (NCCL world) or zero thresholds.
        """
        if self._fusion_allocations or self.config.fusion_threshold == 0:
            return 0
        world = getattr(self.comm, "world", None)
        transport = getattr(world, "transport", None)
        if transport is None:
            return 0
        total = 0
        for rank_ctx in transport.ranks.values():
            alloc = rank_ctx.app_ctx.malloc(
                self.config.fusion_threshold, tag="fusion-buffer"
            )
            self._fusion_allocations.append((rank_ctx.app_ctx, alloc))
            total += alloc.nbytes
        return total

    def release_fusion_buffers(self) -> None:
        for ctx, alloc in self._fusion_allocations:
            ctx.free(alloc)
        self._fusion_allocations.clear()

    @property
    def num_ranks(self) -> int:
        return self.comm.size

    def shrink_to(self, ranks: list[int]) -> None:
        """Rebuild the communicator on surviving ranks after a failure.

        Mirrors an elastic-Horovod re-initialization: the response cache
        and fusion-slot identities are stale for the new ring and are
        dropped (the registration cache then re-warms on the new buffers),
        and the memoized collective step-schedules are rebuilt so no plan
        keyed against the old world size can ever be replayed on the new
        ring.
        """
        self.comm = self.comm.restrict(ranks)
        self._reset_ring_state()

    def reform_to(self, ranks: list[int]) -> None:
        """Re-form the ring on an arbitrary world subset (elastic re-grow
        of a previously-dropped rank).  Same cache invalidation as
        :meth:`shrink_to`."""
        self.comm = self.comm.reform(ranks)
        self._reset_ring_state()

    def _reset_ring_state(self) -> None:
        from repro.mpi.collectives.allreduce import clear_schedule_cache

        self._slot_buffers.clear()
        self._response_cache.clear()
        clear_schedule_cache()

    def drop_compression_state(self, rank: int) -> None:
        """Forget a rank's error-feedback residuals.

        Called when a rank leaves the ring *and* when one is re-admitted:
        a regrown replica starts from freshly-initialized state, so letting
        it resurrect a stale residual would silently inject gradient mass
        from a model that no longer exists.
        """
        stale = [key for key in self._topk_residuals if key[0] == rank]
        for key in stale:
            del self._topk_residuals[key]

    # -- buffers -----------------------------------------------------------------
    def _buffers_for(
        self,
        message: FusionMessage,
        *,
        wire_nbytes: int | None = None,
        dtype: Datatype = Datatype.FLOAT32,
        datas: list | None = None,
    ) -> list[GpuBuffer]:
        """Per-rank GpuBuffers for one message (stable ids for fused slots).

        With no overrides this builds the uncompressed fp32 wire image.  A
        compressor swaps in its own ``wire_nbytes``/``dtype``/``datas``
        while keeping the same buffer identities, so the registration cache
        sees one stable fusion buffer regardless of wire format.
        """
        if datas is None:
            functional = all(t.data is not None for t in message.tensors)
            if functional:
                datas = TensorFusion.pack(message, self.num_ranks)
        nbytes = message.nbytes if wire_nbytes is None else wire_nbytes
        buffers = []
        for rank in range(self.num_ranks):
            data = datas[rank] if datas is not None else None
            if message.fused:
                key = (message.buffer_slot, rank)
                if key in self._slot_buffers:
                    buffer_id = self._slot_buffers[key]
                else:
                    probe = GpuBuffer.virtual(0)
                    buffer_id = probe.buffer_id
                    self._slot_buffers[key] = buffer_id
                buf = GpuBuffer(
                    nbytes=nbytes,
                    dtype=dtype,
                    data=data,
                    name=f"fusion-slot{message.buffer_slot}",
                    buffer_id=buffer_id,
                )
            else:
                # unfused tensors live in freshly-allocated gradient memory
                # every step: no stable identity, no registration reuse
                tensor = message.tensors[0]
                buf = GpuBuffer(
                    nbytes=nbytes,
                    dtype=dtype,
                    data=data,
                    name=tensor.name,
                )
            buffers.append(buf)
        return buffers

    # -- submission paths --------------------------------------------------------
    def _submit_dense(self, message: FusionMessage, start: float) -> MessageRecord:
        """Dense allreduce of one fusion message, through the configured
        compressor.  ``mode="none"`` reproduces the uncompressed path
        byte-for-byte; fp16/bf16 halve the wire image before submission."""
        mode = self.compression.mode
        functional = all(t.data is not None for t in message.tensors)
        if mode == "none":
            buffers = self._buffers_for(message)
            timing = self.comm.allreduce(buffers, average=True)
            if functional:
                TensorFusion.unpack(message, [b.data for b in buffers])
        else:
            wire_nbytes = self.compressor.wire_nbytes(message.nbytes)
            packed = TensorFusion.pack(message, self.num_ranks) if functional else None
            if mode == "fp16":
                datas = (
                    [self.compressor.compress(p) for p in packed]
                    if functional
                    else [None] * self.num_ranks
                )
                buffers = self._buffers_for(
                    message,
                    wire_nbytes=wire_nbytes,
                    dtype=self.compressor.wire_dtype,
                    datas=datas,
                )
                timing = self.comm.allreduce(buffers, average=True)
                if functional:
                    TensorFusion.unpack(
                        message, [self.compressor.decompress(b.data) for b in buffers]
                    )
            else:  # bf16: numpy has no native bfloat16, so the arithmetic
                # happens locally on truncated fp32 while the wire is priced
                # as 2-byte elements through virtual buffers.
                buffers = self._buffers_for(
                    message,
                    wire_nbytes=wire_nbytes,
                    dtype=self.compressor.wire_dtype,
                    datas=[None] * self.num_ranks,
                )
                timing = self.comm.allreduce(buffers, average=True)
                if functional:
                    truncated = [self.compressor.compress(p) for p in packed]
                    total = truncated[0].copy()
                    for arr in truncated[1:]:
                        total += arr
                    result = self.compressor.compress(total / self.num_ranks)
                    TensorFusion.unpack(message, [result] * self.num_ranks)
        finish = start + timing.time
        return MessageRecord(
            nbytes=buffers[0].nbytes,
            start=start,
            finish=finish,
            fused_count=len(message.tensors),
            algorithm=timing.algorithm,
        )

    def _submit_sparse(self, message: FusionMessage, start: float) -> MessageRecord:
        """Top-k sparse exchange of one (unfused) tensor.

        Each rank contributes k (index, value) pairs selected from its
        gradient plus accumulated residual; the exchange is an allgather
        (no in-network reduction over mismatched index sets), and every
        rank reconstructs the dense average locally.
        """
        tensor = message.tensors[0]
        elements = tensor.nbytes // Datatype.FLOAT32.size
        k = top_k_count(elements, self.compression.topk_ratio)
        wire = sparse_wire_nbytes(k)
        if tensor.data is not None:
            dense = np.zeros(elements, dtype=np.float32)
            for i, rank_id in enumerate(self.comm.ranks):
                flat = np.ascontiguousarray(
                    tensor.data[i], dtype=np.float32
                ).reshape(-1)
                key = (rank_id, tensor.name)
                residual = self._topk_residuals.get(key)
                if residual is None:
                    residual = np.zeros(elements, dtype=np.float32)
                    self._topk_residuals[key] = residual
                indices, values = sparsify_with_feedback(flat, residual, k)
                dense[indices] += values
            average = dense / self.num_ranks
            for i in range(self.num_ranks):
                tensor.data[i][...] = average.reshape(tensor.data[i].shape)
        # sparse payloads reuse a stable per-tensor wire buffer each step,
        # so the registration cache (and the fastpath ring memo) still key
        # on a fixed identity despite the fresh (index, value) content
        buffers = []
        for rank in range(self.num_ranks):
            key = (f"sparse:{tensor.name}", rank)
            if key in self._slot_buffers:
                buffer_id = self._slot_buffers[key]
            else:
                probe = GpuBuffer.virtual(0)
                buffer_id = probe.buffer_id
                self._slot_buffers[key] = buffer_id
            buffers.append(
                GpuBuffer(
                    nbytes=wire,
                    dtype=Datatype.UINT8,
                    name=f"sparse:{tensor.name}",
                    buffer_id=buffer_id,
                )
            )
        _, timing = self.comm.allgather(buffers)
        finish = start + timing.time
        return MessageRecord(
            nbytes=wire,
            start=start,
            finish=finish,
            fused_count=1,
            algorithm=timing.algorithm,
        )

    # -- main entry -------------------------------------------------------------
    def run_step(
        self,
        tensors: list[PendingTensor],
        *,
        backward_time: float = 0.0,
        force_dense: bool = False,
    ) -> StepTiming:
        """Reduce one step's gradient stream; average across ranks.

        Execution-coupled fusion: a drain happens when the communication
        thread is free *and* a cycle boundary has fired; everything that
        became ready in the meantime is packed together.  This is the
        back-pressure dynamic that grows fusion sizes when the backend is
        slow — and, with the tuned cycle times the paper uses (§II-D), what
        produces the 16-64 MB fused messages of Table I.

        ``force_dense`` disables top-k sparsification for this call only —
        used by local-SGD parameter synchronization, where sparsifying the
        *weights* (rather than gradients) would break the averaging
        contract.  Dense fp16/bf16 compression still applies.
        """
        sparse_active = self.compression.is_sparse and not force_dense
        for t in tensors:
            if t.data is not None and len(t.data) != self.num_ranks:
                raise HorovodError(
                    f"tensor {t.name!r} carries {len(t.data)} rank arrays, "
                    f"world has {self.num_ranks}"
                )
        cycle = self.config.cycle_time_s
        pending = sorted(tensors, key=lambda t: (t.ready_time, t.name))
        coordination = 0.0
        records: list[MessageRecord] = []
        exec_free = 0.0
        cycles_used = 0
        slot = 0
        i = 0
        while i < len(pending):
            # the comm thread wakes at the first cycle boundary after both
            # the next tensor's readiness and the end of current execution;
            # cycles free-run relative to the step (phase offset 1/2 models
            # the average misalignment between cycle clock and backward)
            t_earliest = max(pending[i].ready_time, exec_free)
            if cycle > 0:
                k = int(np.floor(t_earliest / cycle + 0.5 - 1e-12))
                # clamp: the epsilon above can land fire a float-ulp below
                # t_earliest, which would drain nothing and never advance
                fire = max((k + 0.5) * cycle, t_earliest)
            else:
                fire = t_earliest
            cycles_used += 1
            # drain everything ready by the fire time
            ready_end = i
            while ready_end < len(pending) and pending[ready_end].ready_time <= fire:
                ready_end += 1
            drained = pending[i:ready_end]
            i = ready_end
            signature = frozenset(t.name for t in drained)
            if self.config.response_cache and signature in self._response_cache:
                overhead = self.coordinator.cached_cycle_overhead(self.num_ranks)
                self.response_cache_hits += 1
            else:
                overhead = self.coordinator.cycle_overhead(
                    self.num_ranks, len(drained)
                )
                self.response_cache_misses += 1
                if self.config.response_cache:
                    self._response_cache.add(signature)
            coordination += overhead
            fire += overhead
            # pack the drained set greedily into fusion-buffer messages
            # (same greedy loop the offline planner uses — one home now);
            # sparse messages bypass fusion entirely: each tensor carries
            # its own (index, value) payload, so threshold 0 sends singles
            messages, slot = TensorFusion.pack_greedy(
                drained,
                0 if sparse_active else self.config.fusion_threshold,
                cycle_index=cycles_used - 1, slot_start=slot,
            )
            for message in messages:
                start = max(fire, exec_free)
                if sparse_active:
                    record = self._submit_sparse(message, start)
                else:
                    record = self._submit_dense(message, start)
                exec_free = record.finish
                records.append(record)
                if self.timeline is not None:
                    self.timeline.record(
                        "allgather" if sparse_active else "allreduce",
                        start=start,
                        duration=record.duration,
                        nbytes=record.nbytes,
                        detail=",".join(message.names[:4]),
                    )
        comm_finish = records[-1].finish if records else 0.0
        return StepTiming(
            backward_time=backward_time,
            comm_finish=comm_finish,
            coordination_time=coordination,
            messages=records,
            cycles_used=cycles_used,
        )
