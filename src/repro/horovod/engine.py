"""Horovod execution engine: cycles, fusion buffers, backend submission.

Runs one training step's gradient stream through Tensor Fusion and the
backend communicator, producing both the *numeric* result (functional mode:
gradients really are averaged across ranks) and the *timing* result
(when communication finishes relative to backward, what was exposed).

Execution model: Horovod submits collectives on a single communication
stream, so messages run back-to-back; a message cannot start before its
cycle fires, all of its tensors are ready, and the negotiation for that
cycle has completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HorovodError
from repro.horovod.coordinator import CoordinatorModel
from repro.horovod.env import HorovodConfig
from repro.horovod.fusion import FusionMessage, PendingTensor, TensorFusion
from repro.horovod.timeline import Timeline
from repro.mpi.comm import GpuBuffer


@dataclass
class MessageRecord:
    """Timing of one submitted allreduce."""

    nbytes: int
    start: float
    finish: float
    fused_count: int
    algorithm: str

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class StepTiming:
    """Timing decomposition of one training step's communication."""

    backward_time: float
    comm_finish: float  # seconds after backward start when last reduce lands
    coordination_time: float
    messages: list[MessageRecord] = field(default_factory=list)
    cycles_used: int = 0

    @property
    def exposed_comm_time(self) -> float:
        """Communication not hidden behind the backward pass."""
        return max(0.0, self.comm_finish - self.backward_time)

    @property
    def total_comm_time(self) -> float:
        return sum(m.duration for m in self.messages)


class HorovodEngine:
    """Drives fusion + backend collectives for one communicator."""

    def __init__(
        self,
        comm,
        config: HorovodConfig | None = None,
        *,
        coordinator: CoordinatorModel | None = None,
        timeline: Timeline | None = None,
    ):
        self.comm = comm
        self.config = config or HorovodConfig()
        self.fusion = TensorFusion(self.config)
        self.coordinator = coordinator or CoordinatorModel()
        self.timeline = timeline
        # Stable fusion-buffer identities per (slot, rank): the reuse that
        # makes the registration cache effective (paper §III-D).
        self._slot_buffers: dict[tuple[int, int], int] = {}
        self._fusion_allocations: list = []
        # response cache: signatures of previously-negotiated drain sets
        self._response_cache: set[frozenset] = set()
        self.response_cache_hits = 0
        self.response_cache_misses = 0

    def allocate_fusion_buffers(self) -> int:
        """Charge each rank's HBM for its fusion buffer (§II-D step 2).

        Horovod allocates one ``HOROVOD_FUSION_THRESHOLD``-sized device
        buffer per worker; on a 16 GB V100 the default 64 MB is invisible,
        but outsized thresholds eat into the activation budget (the memory
        side of fusion tuning).  Returns total bytes reserved.  No-op for
        backends without CUDA contexts (NCCL world) or zero thresholds.
        """
        if self._fusion_allocations or self.config.fusion_threshold == 0:
            return 0
        world = getattr(self.comm, "world", None)
        transport = getattr(world, "transport", None)
        if transport is None:
            return 0
        total = 0
        for rank_ctx in transport.ranks.values():
            alloc = rank_ctx.app_ctx.malloc(
                self.config.fusion_threshold, tag="fusion-buffer"
            )
            self._fusion_allocations.append((rank_ctx.app_ctx, alloc))
            total += alloc.nbytes
        return total

    def release_fusion_buffers(self) -> None:
        for ctx, alloc in self._fusion_allocations:
            ctx.free(alloc)
        self._fusion_allocations.clear()

    @property
    def num_ranks(self) -> int:
        return self.comm.size

    def shrink_to(self, ranks: list[int]) -> None:
        """Rebuild the communicator on surviving ranks after a failure.

        Mirrors an elastic-Horovod re-initialization: the response cache
        and fusion-slot identities are stale for the new ring and are
        dropped (the registration cache then re-warms on the new buffers),
        and the memoized collective step-schedules are rebuilt so no plan
        keyed against the old world size can ever be replayed on the new
        ring.
        """
        self.comm = self.comm.restrict(ranks)
        self._reset_ring_state()

    def reform_to(self, ranks: list[int]) -> None:
        """Re-form the ring on an arbitrary world subset (elastic re-grow
        of a previously-dropped rank).  Same cache invalidation as
        :meth:`shrink_to`."""
        self.comm = self.comm.reform(ranks)
        self._reset_ring_state()

    def _reset_ring_state(self) -> None:
        from repro.mpi.collectives.allreduce import clear_schedule_cache

        self._slot_buffers.clear()
        self._response_cache.clear()
        clear_schedule_cache()

    # -- buffers -----------------------------------------------------------------
    def _buffers_for(self, message: FusionMessage) -> list[GpuBuffer]:
        """Per-rank GpuBuffers for one message (stable ids for fused slots)."""
        functional = all(t.data is not None for t in message.tensors)
        if functional:
            packed = TensorFusion.pack(message, self.num_ranks)
        buffers = []
        for rank in range(self.num_ranks):
            if message.fused:
                key = (message.buffer_slot, rank)
                if key in self._slot_buffers:
                    buffer_id = self._slot_buffers[key]
                else:
                    probe = GpuBuffer.virtual(0)
                    buffer_id = probe.buffer_id
                    self._slot_buffers[key] = buffer_id
                buf = GpuBuffer(
                    nbytes=message.nbytes,
                    data=packed[rank] if functional else None,
                    name=f"fusion-slot{message.buffer_slot}",
                    buffer_id=buffer_id,
                )
            else:
                # unfused tensors live in freshly-allocated gradient memory
                # every step: no stable identity, no registration reuse
                tensor = message.tensors[0]
                buf = GpuBuffer(
                    nbytes=tensor.nbytes,
                    data=packed[rank] if functional else None,
                    name=tensor.name,
                )
            buffers.append(buf)
        return buffers

    # -- main entry -------------------------------------------------------------
    def run_step(
        self, tensors: list[PendingTensor], *, backward_time: float = 0.0
    ) -> StepTiming:
        """Reduce one step's gradient stream; average across ranks.

        Execution-coupled fusion: a drain happens when the communication
        thread is free *and* a cycle boundary has fired; everything that
        became ready in the meantime is packed together.  This is the
        back-pressure dynamic that grows fusion sizes when the backend is
        slow — and, with the tuned cycle times the paper uses (§II-D), what
        produces the 16-64 MB fused messages of Table I.
        """
        for t in tensors:
            if t.data is not None and len(t.data) != self.num_ranks:
                raise HorovodError(
                    f"tensor {t.name!r} carries {len(t.data)} rank arrays, "
                    f"world has {self.num_ranks}"
                )
        cycle = self.config.cycle_time_s
        pending = sorted(tensors, key=lambda t: (t.ready_time, t.name))
        coordination = 0.0
        records: list[MessageRecord] = []
        exec_free = 0.0
        cycles_used = 0
        slot = 0
        i = 0
        while i < len(pending):
            # the comm thread wakes at the first cycle boundary after both
            # the next tensor's readiness and the end of current execution;
            # cycles free-run relative to the step (phase offset 1/2 models
            # the average misalignment between cycle clock and backward)
            t_earliest = max(pending[i].ready_time, exec_free)
            if cycle > 0:
                k = int(np.floor(t_earliest / cycle + 0.5 - 1e-12))
                # clamp: the epsilon above can land fire a float-ulp below
                # t_earliest, which would drain nothing and never advance
                fire = max((k + 0.5) * cycle, t_earliest)
            else:
                fire = t_earliest
            cycles_used += 1
            # drain everything ready by the fire time
            ready_end = i
            while ready_end < len(pending) and pending[ready_end].ready_time <= fire:
                ready_end += 1
            drained = pending[i:ready_end]
            i = ready_end
            signature = frozenset(t.name for t in drained)
            if self.config.response_cache and signature in self._response_cache:
                overhead = self.coordinator.cached_cycle_overhead(self.num_ranks)
                self.response_cache_hits += 1
            else:
                overhead = self.coordinator.cycle_overhead(
                    self.num_ranks, len(drained)
                )
                self.response_cache_misses += 1
                if self.config.response_cache:
                    self._response_cache.add(signature)
            coordination += overhead
            fire += overhead
            # pack the drained set greedily into fusion-buffer messages
            # (same greedy loop the offline planner uses — one home now)
            messages, slot = TensorFusion.pack_greedy(
                drained, self.config.fusion_threshold,
                cycle_index=cycles_used - 1, slot_start=slot,
            )
            for message in messages:
                start = max(fire, exec_free)
                buffers = self._buffers_for(message)
                timing = self.comm.allreduce(buffers, average=True)
                if all(t.data is not None for t in message.tensors):
                    TensorFusion.unpack(message, [b.data for b in buffers])
                finish = start + timing.time
                exec_free = finish
                records.append(
                    MessageRecord(
                        nbytes=message.nbytes,
                        start=start,
                        finish=finish,
                        fused_count=len(message.tensors),
                        algorithm=timing.algorithm,
                    )
                )
                if self.timeline is not None:
                    self.timeline.record(
                        "allreduce",
                        start=start,
                        duration=timing.time,
                        nbytes=message.nbytes,
                        detail=",".join(message.names[:4]),
                    )
        comm_finish = records[-1].finish if records else 0.0
        return StepTiming(
            backward_time=backward_time,
            comm_finish=comm_finish,
            coordination_time=coordination,
            messages=records,
            cycles_used=cycles_used,
        )
