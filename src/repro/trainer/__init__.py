"""Training loops: single-process and distributed (functional mode).

These drive the *real* numpy models end-to-end — loss curves, PSNR/SSIM
validation, throughput metering — at tiny scales, complementing the
performance-mode :mod:`repro.core.study` used for the paper-scale sweeps.
"""

from repro.trainer.throughput import ThroughputMeter
from repro.trainer.train import TrainResult, evaluate_sr, train_sr
from repro.trainer.distributed import DistributedTrainer, DistributedTrainResult
from repro.trainer.checkpoint import load_checkpoint, save_checkpoint
from repro.trainer.temporal import (
    VideoTrainResult,
    synthetic_video,
    train_video_sr,
)

__all__ = [
    "ThroughputMeter",
    "train_sr",
    "evaluate_sr",
    "TrainResult",
    "train_video_sr",
    "synthetic_video",
    "VideoTrainResult",
    "DistributedTrainer",
    "DistributedTrainResult",
    "save_checkpoint",
    "load_checkpoint",
]
