"""Distributed (lock-step SPMD) functional training.

Implements the paper's §III-A recipe end to end on real numpy models:

1. map processes to GPUs (one replica per simulated rank);
2. broadcast initial parameters from rank 0;
3. wrap optimizers in the distributed optimizer (allreduce-averaged grads);
4. scale the learning rate by world size;
5. log throughput per step.

Both the *numerics* (replica synchrony, convergence) and the *timing*
(simulated step durations from the Horovod engine) come out of one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import SRDataset
from repro.data.loader import PatchLoader
from repro.data.sampler import DistributedSampler
from repro.errors import ConfigError
from repro.horovod.coordinator import FaultTolerantCoordinator, ResiliencePolicy
from repro.horovod.engine import HorovodEngine
from repro.horovod.optimizer import (
    DistributedOptimizer,
    broadcast_parameters,
    scale_learning_rate,
)
from repro.tensor import Tensor, functional as F
from repro.tensor.nn.module import Module
from repro.tensor.optim.adam import Adam


@dataclass
class DistributedTrainResult:
    losses: list[float] = field(default_factory=list)
    simulated_step_times: list[float] = field(default_factory=list)
    steps: int = 0
    total_images: int = 0
    # world size at each step (shrinks when a rank failure is absorbed)
    world_sizes: list[int] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def simulated_images_per_second(self) -> float:
        total_time = sum(self.simulated_step_times)
        if total_time <= 0:
            return 0.0
        return self.total_images / total_time


class DistributedTrainer:
    """Trains replicated models across simulated ranks."""

    def __init__(
        self,
        model_factory: Callable[[int], Module],
        engine: HorovodEngine,
        dataset: SRDataset,
        *,
        batch_per_rank: int,
        lr_patch: int,
        base_lr: float = 1e-4,
        scale_lr: bool = True,
        seed: int = 0,
        faults=None,
        resilience: ResiliencePolicy | str = ResiliencePolicy.SHRINK,
        detect_timeout_s: float = 0.05,
    ):
        self.engine = engine
        num_ranks = engine.num_ranks
        if num_ranks < 1:
            raise ConfigError("world must have at least one rank")
        self.faults = faults
        self.coordinator = FaultTolerantCoordinator(
            range(num_ranks),
            policy=resilience,
            detect_timeout_s=detect_timeout_s,
            injector=faults,
        )
        self.models = [model_factory(rank) for rank in range(num_ranks)]
        # charge each rank's HBM for its Horovod fusion buffer (§II-D step 2)
        engine.allocate_fusion_buffers()
        broadcast_parameters(self.models, engine)
        lr = scale_learning_rate(base_lr, num_ranks) if scale_lr else base_lr
        optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        self.dist_opt = DistributedOptimizer(optimizers, self.models, engine)
        self.loaders = [
            PatchLoader(
                dataset,
                batch_size=batch_per_rank,
                lr_patch=lr_patch,
                sampler=DistributedSampler(len(dataset), num_ranks, rank, seed=seed),
                seed=seed,
            )
            for rank in range(num_ranks)
        ]
        self.batch_per_rank = batch_per_rank
        # backward-time estimate for the fusion simulation: tiny models are
        # numpy-speed, so we use a nominal per-step compute budget
        self.nominal_backward_s = 0.25

    @property
    def active_ranks(self) -> list[int]:
        """Ranks still participating (shrinks under rank-failure faults)."""
        return list(self.dist_opt.ranks)

    def train(self, steps: int, *, loss: str = "l1") -> DistributedTrainResult:
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        loss_fn = {"l1": F.l1_loss, "mse": F.mse_loss}[loss]
        result = DistributedTrainResult()
        rank_batches = [list(loader.batches(steps)) for loader in self.loaders]
        for step in range(steps):
            now = sum(result.simulated_step_times)
            step_overhead = 0.0
            if self.faults is not None:
                # membership check: absorb failures per the resilience
                # policy (SHRINK drops replicas, ABORT raises)
                removed = self.coordinator.poll(now)
                for rank in removed:
                    self.dist_opt.drop_rank(rank)
                if removed:
                    step_overhead += self.coordinator.detect_timeout_s
            self.dist_opt.zero_grad()
            losses = []
            for rank, model in zip(self.dist_opt.ranks, self.dist_opt.models):
                lr_batch, hr_batch = rank_batches[rank][step]
                out = model(Tensor(lr_batch))
                step_loss = loss_fn(out, Tensor(hr_batch))
                step_loss.backward()
                losses.append(step_loss.item())
            backward = self.nominal_backward_s
            if self.faults is not None:
                # synchronous data parallelism waits for the slowest rank
                backward *= max(
                    self.faults.compute_factor(rank, now, step)
                    for rank in self.dist_opt.ranks
                )
            timing = self.dist_opt.step(backward_time=backward)
            result.losses.append(float(np.mean(losses)))
            result.simulated_step_times.append(
                step_overhead
                + backward / 2  # nominal forward
                + max(backward, timing.comm_finish)
            )
            result.steps += 1
            result.world_sizes.append(len(self.dist_opt.ranks))
            result.total_images += self.batch_per_rank * len(self.dist_opt.ranks)
        return result

    def replicas_in_sync(self) -> bool:
        """Check the data-parallel invariant: all (surviving) replicas
        bit-identical."""
        models = self.dist_opt.models
        reference = models[0].state_dict()
        for model in models[1:]:
            for name, value in model.state_dict().items():
                if not np.array_equal(value, reference[name]):
                    return False
        return True
