"""Distributed (lock-step SPMD) functional training.

Implements the paper's §III-A recipe end to end on real numpy models:

1. map processes to GPUs (one replica per simulated rank);
2. broadcast initial parameters from rank 0;
3. wrap optimizers in the distributed optimizer (allreduce-averaged grads);
4. scale the learning rate by world size;
5. log throughput per step.

Both the *numerics* (replica synchrony, convergence) and the *timing*
(simulated step durations from the Horovod engine) come out of one run.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import SRDataset
from repro.data.loader import PatchLoader
from repro.data.sampler import DistributedSampler
from repro.errors import CheckpointError, ConfigError
from repro.horovod.coordinator import FaultTolerantCoordinator, ResiliencePolicy
from repro.horovod.engine import HorovodEngine
from repro.horovod.optimizer import (
    DistributedOptimizer,
    broadcast_parameters,
    scale_learning_rate,
)
from repro.resilience.accounting import RecoveryAccounting
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.policy import RecoveryPolicy
from repro.resilience.supervisor import HeartbeatSupervisor
from repro.tensor import Tensor, functional as F
from repro.tensor.nn.module import Module
from repro.tensor.optim.adam import Adam
from repro.trainer.checkpoint import load_checkpoint


@dataclass
class DistributedTrainResult:
    losses: list[float] = field(default_factory=list)
    simulated_step_times: list[float] = field(default_factory=list)
    steps: int = 0
    total_images: int = 0
    # world size at each step (shrinks when a rank failure is absorbed)
    world_sizes: list[int] = field(default_factory=list)
    # recovery cost ledger (None unless the trainer ran with a RecoveryPolicy)
    resilience: RecoveryAccounting | None = None

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def simulated_images_per_second(self) -> float:
        total_time = sum(self.simulated_step_times)
        if total_time <= 0:
            return 0.0
        return self.total_images / total_time


class DistributedTrainer:
    """Trains replicated models across simulated ranks."""

    def __init__(
        self,
        model_factory: Callable[[int], Module],
        engine: HorovodEngine,
        dataset: SRDataset,
        *,
        batch_per_rank: int,
        lr_patch: int,
        base_lr: float = 1e-4,
        scale_lr: bool = True,
        seed: int = 0,
        faults=None,
        resilience: ResiliencePolicy | str = ResiliencePolicy.SHRINK,
        detect_timeout_s: float = 0.05,
        recovery: RecoveryPolicy | None = None,
        checkpoints: CheckpointManager | None = None,
        local_sgd_h: int = 1,
        layout=None,
    ):
        self.engine = engine
        if local_sgd_h < 1:
            raise ConfigError(
                f"local_sgd_h must be >= 1, got {local_sgd_h}"
            )
        # the functional trainer runs real (numpy) models; tensor/pipeline
        # execution exists only in the performance path, so a layout here
        # may describe pure data parallelism and nothing else
        self.layout = layout
        if layout is not None:
            layout.resolved(engine.num_ranks)
            if not layout.is_pure_dp:
                raise ConfigError(
                    "the functional trainer executes data-parallel only; "
                    "tensor/pipeline execution is performance-mode "
                    f"(got tp={layout.tp}, pp={layout.pp}; see "
                    "repro.parallel and docs/parallelism.md)"
                )
        # H == 1 is synchronous SGD (gradient allreduce every step); H > 1
        # runs H-1 purely local updates between parameter-averaging syncs
        self.local_sgd_h = local_sgd_h
        num_ranks = engine.num_ranks
        if num_ranks < 1:
            raise ConfigError("world must have at least one rank")
        self.faults = faults
        self.coordinator = FaultTolerantCoordinator(
            range(num_ranks),
            policy=resilience,
            detect_timeout_s=detect_timeout_s,
            injector=faults,
        )
        # elastic recovery orchestration (supersedes the coordinator path
        # when a RecoveryPolicy is supplied)
        self.recovery = recovery
        self.checkpoints = checkpoints
        self.supervisor = None
        if recovery is not None:
            self.supervisor = HeartbeatSupervisor(
                range(num_ranks), faults, recovery.heartbeat
            )
            if recovery.restart and self.checkpoints is None:
                self.checkpoints = CheckpointManager(
                    tempfile.mkdtemp(prefix="repro-ckpt-"), recovery.checkpoint
                )
        self._model_factory = model_factory
        self._clock = 0.0  # monotonic simulated time (survives replay rewinds)
        self.models = [model_factory(rank) for rank in range(num_ranks)]
        # charge each rank's HBM for its Horovod fusion buffer (§II-D step 2)
        engine.allocate_fusion_buffers()
        broadcast_parameters(self.models, engine)
        lr = scale_learning_rate(base_lr, num_ranks) if scale_lr else base_lr
        self._lr = lr
        optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        self.dist_opt = DistributedOptimizer(optimizers, self.models, engine)
        self.loaders = [
            PatchLoader(
                dataset,
                batch_size=batch_per_rank,
                lr_patch=lr_patch,
                sampler=DistributedSampler(len(dataset), num_ranks, rank, seed=seed),
                seed=seed,
            )
            for rank in range(num_ranks)
        ]
        self.batch_per_rank = batch_per_rank
        # backward-time estimate for the fusion simulation: tiny models are
        # numpy-speed, so we use a nominal per-step compute budget
        self.nominal_backward_s = 0.25

    @property
    def active_ranks(self) -> list[int]:
        """Ranks still participating (shrinks under rank-failure faults)."""
        return list(self.dist_opt.ranks)

    def train(self, steps: int, *, loss: str = "l1") -> DistributedTrainResult:
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        loss_fn = {"l1": F.l1_loss, "mse": F.mse_loss}[loss]
        if self.recovery is not None:
            return self._train_resilient(steps, loss_fn)
        result = DistributedTrainResult()
        rank_batches = [list(loader.batches(steps)) for loader in self.loaders]
        for step in range(steps):
            now = sum(result.simulated_step_times)
            step_overhead = 0.0
            if self.faults is not None:
                # membership check: absorb failures per the resilience
                # policy (SHRINK drops replicas, ABORT raises)
                removed = self.coordinator.poll(now)
                for rank in removed:
                    self.dist_opt.drop_rank(rank)
                if removed:
                    step_overhead += self.coordinator.detect_timeout_s
            self.dist_opt.zero_grad()
            losses = []
            for rank, model in zip(self.dist_opt.ranks, self.dist_opt.models):
                lr_batch, hr_batch = rank_batches[rank][step]
                out = model(Tensor(lr_batch))
                step_loss = loss_fn(out, Tensor(hr_batch))
                step_loss.backward()
                losses.append(step_loss.item())
            backward = self.nominal_backward_s
            if self.faults is not None:
                # synchronous data parallelism waits for the slowest rank
                backward *= max(
                    self.faults.compute_factor(rank, now, step)
                    for rank in self.dist_opt.ranks
                )
            if self.local_sgd_h > 1:
                # local-SGD inner step: no gradient exchange; the sync
                # collective lands only on every H-th step boundary
                self.dist_opt.step_local()
                step_time = step_overhead + backward / 2 + backward
                if (step + 1) % self.local_sgd_h == 0:
                    sync = self.dist_opt.sync_parameters()
                    step_time += sync.comm_finish
            else:
                timing = self.dist_opt.step(backward_time=backward)
                step_time = (
                    step_overhead
                    + backward / 2  # nominal forward
                    + max(backward, timing.comm_finish)
                )
            result.losses.append(float(np.mean(losses)))
            result.simulated_step_times.append(step_time)
            result.steps += 1
            result.world_sizes.append(len(self.dist_opt.ranks))
            result.total_images += self.batch_per_rank * len(self.dist_opt.ranks)
        return result

    # -- elastic recovery path ---------------------------------------------------
    def _save_checkpoint(
        self, acct: RecoveryAccounting, steps_completed: int
    ) -> None:
        """Snapshot rank 0's replica (all replicas are in sync) and charge
        the simulated write to the critical path."""
        _, cost = self.checkpoints.save(
            self.dist_opt.models[0],
            steps_completed=steps_completed,
            optimizer=self.dist_opt.optimizers[0],
        )
        self._clock += cost
        acct.note_checkpoint(cost)

    def _restart_from_checkpoint(
        self, result: DistributedTrainResult, acct: RecoveryAccounting, step: int
    ) -> int:
        """Restore survivors from the newest valid checkpoint and rewind.

        Truncates everything recorded past the checkpoint (that work is
        replayed on the shrunk world), moves its time from the productive
        bucket to lost work, and charges read-back + re-initialization to
        recovery.  Returns the step index to resume from.
        """
        policy = self.recovery
        entry = self.checkpoints.latest_valid()
        if entry is None:
            raise CheckpointError(
                f"no valid checkpoint to restart from in "
                f"{self.checkpoints.directory!r}"
            )
        ckpt_steps, path = entry
        for model, opt in zip(self.dist_opt.models, self.dist_opt.optimizers):
            load_checkpoint(model, path, optimizer=opt)
        read_cost = self.checkpoints.policy.read_cost(os.path.getsize(path))
        lost_steps = len(result.simulated_step_times) - ckpt_steps
        if lost_steps > 0:
            lost = sum(result.simulated_step_times[ckpt_steps:])
            acct.productive_s -= lost
            acct.note_lost_work(lost, steps=lost_steps)
            del result.losses[ckpt_steps:]
            del result.simulated_step_times[ckpt_steps:]
            del result.world_sizes[ckpt_steps:]
            step = ckpt_steps
        acct.note_restart(read_cost + policy.restart_overhead_s)
        self._clock += read_cost + policy.restart_overhead_s
        if self.faults is not None:
            self.faults.record(
                "restart", self._clock,
                detail=f"from step {ckpt_steps} "
                       f"world={len(self.dist_opt.ranks)}",
            )
        return step

    def _regrow_rank(self, rank: int, acct: RecoveryAccounting) -> None:
        """Re-admit a recovered rank: fresh replica cloned from a survivor,
        ring re-formed at the larger world.  The weight re-broadcast to the
        rejoining rank is priced through the communication layer (the same
        collective route every other broadcast takes), so its cost shows up
        in the unified per-op records and scales with the model."""
        from repro.comm.api import broadcast_weights

        state = self.dist_opt.models[0].state_dict()
        model = self._model_factory(rank)
        model.load_state_dict(state)
        optimizer = Adam(model.parameters(), lr=self._lr)
        optimizer.load_state_dict(self.dist_opt.optimizers[0].state_dict())
        self.dist_opt.add_rank(rank, model, optimizer)
        self.supervisor.readmit(rank)
        nbytes = sum(int(v.size) * int(v.itemsize) for v in state.values())
        rebcast = broadcast_weights(self.engine.comm, nbytes)
        rebcast_s = rebcast.time if rebcast is not None else 0.0
        acct.note_regrow(rank, self.recovery.restart_overhead_s + rebcast_s)
        self._clock += self.recovery.restart_overhead_s + rebcast_s
        if self.faults is not None:
            self.faults.record(
                "rank-regrown", self._clock, rank=rank,
                detail=f"world={len(self.dist_opt.ranks)}",
            )

    def _train_resilient(self, steps: int, loss_fn) -> DistributedTrainResult:
        """Orchestrated loop: watchdog detection, checkpoint/restart replay,
        straggler blacklisting, elastic regrow — all costs itemized."""
        policy = self.recovery
        acct = RecoveryAccounting()
        result = DistributedTrainResult(resilience=acct)
        # batches are keyed by *original* rank so replay and regrow see the
        # exact data the rank would have consumed
        rank_batches = [list(loader.batches(steps)) for loader in self.loaders]
        if self.checkpoints is not None:
            self._save_checkpoint(acct, steps_completed=0)
        step = 0
        while step < steps:
            # Whole failure domains are declared atomically: the ranks a
            # node/switch/partition fault took down share one detection
            # window, charged once off the updated clock — N members of a
            # domain never stack N overlapping watchdog stalls.
            groups = self.supervisor.poll_domains(self._clock)
            dead = []
            for group in groups:
                members = [
                    d for d in group.detections
                    if d.rank in self.dist_opt.ranks
                ]
                if not members:
                    continue
                # survivors stall in the hung collective until the watchdog
                # declares the domain dead
                stall = max(0.0, group.declared_at - self._clock)
                self._clock += stall
                acct.note_detection(stall)
                for d in members:
                    self.dist_opt.drop_rank(d.rank)
                dead.extend(members)
            if dead and policy.restart and self.checkpoints is not None:
                step = self._restart_from_checkpoint(result, acct, step)
            if policy.blacklist_after > 0:
                for rank in self.supervisor.over_limit(policy.blacklist_after):
                    if rank in self.dist_opt.ranks and len(self.dist_opt.ranks) > 1:
                        self.dist_opt.drop_rank(rank)
                        self.supervisor.drop(rank)
                        acct.note_blacklist(rank)
                        if self.faults is not None:
                            self.faults.record(
                                "rank-blacklisted", self._clock, rank=rank,
                                detail=f"offenses>={policy.blacklist_after}",
                            )
            if policy.regrow:
                for rank in self.supervisor.recovered(self._clock):
                    self._regrow_rank(rank, acct)
            self.dist_opt.zero_grad()
            losses = []
            for rank, model in zip(self.dist_opt.ranks, self.dist_opt.models):
                lr_batch, hr_batch = rank_batches[rank][step]
                out = model(Tensor(lr_batch))
                step_loss = loss_fn(out, Tensor(hr_batch))
                step_loss.backward()
                losses.append(step_loss.item())
            backward = self.nominal_backward_s
            if self.faults is not None:
                worst = 1.0
                for rank in self.dist_opt.ranks:
                    factor = self.faults.compute_factor(rank, self._clock, step)
                    self.supervisor.note_compute(rank, factor, self._clock)
                    worst = max(worst, factor)
                # synchronous data parallelism waits for the slowest rank
                backward *= worst
            if self.local_sgd_h > 1:
                # cadence keys on the *replayed* step index, so a
                # checkpoint-restart rewind re-syncs at the same boundaries
                self.dist_opt.step_local()
                step_time = backward / 2 + backward
                if (step + 1) % self.local_sgd_h == 0:
                    sync = self.dist_opt.sync_parameters()
                    step_time += sync.comm_finish
            else:
                timing = self.dist_opt.step(backward_time=backward)
                step_time = backward / 2 + max(backward, timing.comm_finish)
            result.losses.append(float(np.mean(losses)))
            result.simulated_step_times.append(step_time)
            result.world_sizes.append(len(self.dist_opt.ranks))
            self._clock += step_time
            acct.note_productive(step_time)
            step += 1
            if self.checkpoints is not None and self.checkpoints.policy.due(step):
                self._save_checkpoint(acct, steps_completed=step)
        result.steps = len(result.losses)
        result.total_images = self.batch_per_rank * sum(result.world_sizes)
        return result

    def replicas_in_sync(self) -> bool:
        """Check the data-parallel invariant: all (surviving) replicas
        bit-identical."""
        models = self.dist_opt.models
        reference = models[0].state_dict()
        for model in models[1:]:
            for name, value in model.state_dict().items():
                if not np.array_equal(value, reference[name]):
                    return False
        return True
