"""Distributed (lock-step SPMD) functional training.

Implements the paper's §III-A recipe end to end on real numpy models:

1. map processes to GPUs (one replica per simulated rank);
2. broadcast initial parameters from rank 0;
3. wrap optimizers in the distributed optimizer (allreduce-averaged grads);
4. scale the learning rate by world size;
5. log throughput per step.

Both the *numerics* (replica synchrony, convergence) and the *timing*
(simulated step durations from the Horovod engine) come out of one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import SRDataset
from repro.data.loader import PatchLoader
from repro.data.sampler import DistributedSampler
from repro.errors import ConfigError
from repro.horovod.engine import HorovodEngine
from repro.horovod.optimizer import (
    DistributedOptimizer,
    broadcast_parameters,
    scale_learning_rate,
)
from repro.tensor import Tensor, functional as F
from repro.tensor.nn.module import Module
from repro.tensor.optim.adam import Adam


@dataclass
class DistributedTrainResult:
    losses: list[float] = field(default_factory=list)
    simulated_step_times: list[float] = field(default_factory=list)
    steps: int = 0
    total_images: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def simulated_images_per_second(self) -> float:
        total_time = sum(self.simulated_step_times)
        if total_time <= 0:
            return 0.0
        return self.total_images / total_time


class DistributedTrainer:
    """Trains replicated models across simulated ranks."""

    def __init__(
        self,
        model_factory: Callable[[int], Module],
        engine: HorovodEngine,
        dataset: SRDataset,
        *,
        batch_per_rank: int,
        lr_patch: int,
        base_lr: float = 1e-4,
        scale_lr: bool = True,
        seed: int = 0,
    ):
        self.engine = engine
        num_ranks = engine.num_ranks
        if num_ranks < 1:
            raise ConfigError("world must have at least one rank")
        self.models = [model_factory(rank) for rank in range(num_ranks)]
        # charge each rank's HBM for its Horovod fusion buffer (§II-D step 2)
        engine.allocate_fusion_buffers()
        broadcast_parameters(self.models, engine)
        lr = scale_learning_rate(base_lr, num_ranks) if scale_lr else base_lr
        optimizers = [Adam(m.parameters(), lr=lr) for m in self.models]
        self.dist_opt = DistributedOptimizer(optimizers, self.models, engine)
        self.loaders = [
            PatchLoader(
                dataset,
                batch_size=batch_per_rank,
                lr_patch=lr_patch,
                sampler=DistributedSampler(len(dataset), num_ranks, rank, seed=seed),
                seed=seed,
            )
            for rank in range(num_ranks)
        ]
        self.batch_per_rank = batch_per_rank
        # backward-time estimate for the fusion simulation: tiny models are
        # numpy-speed, so we use a nominal per-step compute budget
        self.nominal_backward_s = 0.25

    def train(self, steps: int, *, loss: str = "l1") -> DistributedTrainResult:
        if steps < 1:
            raise ConfigError("steps must be >= 1")
        loss_fn = {"l1": F.l1_loss, "mse": F.mse_loss}[loss]
        result = DistributedTrainResult()
        rank_batches = [list(loader.batches(steps)) for loader in self.loaders]
        for step in range(steps):
            self.dist_opt.zero_grad()
            losses = []
            for rank, model in enumerate(self.models):
                lr_batch, hr_batch = rank_batches[rank][step]
                out = model(Tensor(lr_batch))
                step_loss = loss_fn(out, Tensor(hr_batch))
                step_loss.backward()
                losses.append(step_loss.item())
            timing = self.dist_opt.step(backward_time=self.nominal_backward_s)
            result.losses.append(float(np.mean(losses)))
            result.simulated_step_times.append(
                self.nominal_backward_s / 2  # nominal forward
                + max(self.nominal_backward_s, timing.comm_finish)
            )
            result.steps += 1
        result.total_images = steps * self.batch_per_rank * len(self.models)
        return result

    def replicas_in_sync(self) -> bool:
        """Check the data-parallel invariant: all replicas bit-identical."""
        reference = self.models[0].state_dict()
        for model in self.models[1:]:
            for name, value in model.state_dict().items():
                if not np.array_equal(value, reference[name]):
                    return False
        return True
