"""Single-process SR training and evaluation (functional mode)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import PatchLoader
from repro.data.dataset import SRDataset
from repro.errors import ConfigError
from repro.metrics import psnr, ssim
from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.nn.module import Module
from repro.tensor.optim.base import Optimizer
from repro.trainer.throughput import ThroughputMeter


@dataclass
class TrainResult:
    losses: list[float] = field(default_factory=list)
    images_per_second: float = 0.0
    steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_sr(
    model: Module,
    loader: PatchLoader,
    optimizer: Optimizer,
    *,
    steps: int,
    loss: str = "l1",
    scheduler=None,
) -> TrainResult:
    """Train an SR model for ``steps`` iterations (EDSR uses L1 loss)."""
    if steps < 1:
        raise ConfigError("steps must be >= 1")
    loss_fn = {"l1": F.l1_loss, "mse": F.mse_loss}.get(loss)
    if loss_fn is None:
        raise ConfigError(f"unknown loss {loss!r}; use 'l1' or 'mse'")
    meter = ThroughputMeter(skip_first=min(1, steps - 1))
    result = TrainResult()
    model.train()
    for lr_batch, hr_batch in loader.batches(steps):
        meter.start()
        model.zero_grad()
        prediction = model(Tensor(lr_batch))
        step_loss = loss_fn(prediction, Tensor(hr_batch))
        step_loss.backward()
        optimizer.step()
        if scheduler is not None:
            scheduler.step()
        meter.stop(images=lr_batch.shape[0])
        result.losses.append(step_loss.item())
        result.steps += 1
    result.images_per_second = meter.images_per_second()
    return result


def evaluate_sr(
    model: Module,
    dataset: SRDataset,
    *,
    max_images: int = 8,
    data_range: float = 1.0,
) -> dict[str, float]:
    """Mean PSNR/SSIM of the model over (a prefix of) a dataset split."""
    if max_images < 1:
        raise ConfigError("max_images must be >= 1")
    model.eval()
    psnrs, ssims = [], []
    count = min(max_images, len(dataset))
    with no_grad():
        for i in range(count):
            lr, hr = dataset[i]
            out = model(Tensor(lr[None].astype(np.float32))).numpy()[0]
            out = np.clip(out, 0.0, data_range)
            psnrs.append(psnr(out, hr, data_range=data_range))
            ssims.append(ssim(out, hr, data_range=data_range))
    model.train()
    return {
        "psnr": float(np.mean(psnrs)),
        "ssim": float(np.mean(ssims)),
        "images": count,
    }
