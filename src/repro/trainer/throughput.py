"""images/second metering (the benchmarking support §VI adds to EDSR)."""

from __future__ import annotations

import time

from repro.errors import ConfigError


class ThroughputMeter:
    """Accumulates (images, seconds) pairs and reports rates.

    Works with either wall-clock measurements (functional training) or
    simulated durations (performance studies) — callers provide the time.
    """

    def __init__(self, *, skip_first: int = 1):
        if skip_first < 0:
            raise ConfigError("skip_first must be >= 0")
        self.skip_first = skip_first
        self._steps: list[tuple[int, float]] = []
        self._wall_started: float | None = None

    # -- explicit durations ---------------------------------------------------
    def record(self, images: int, seconds: float) -> None:
        if images < 0 or seconds < 0:
            raise ConfigError("images and seconds must be >= 0")
        self._steps.append((images, seconds))

    # -- wall-clock convenience --------------------------------------------------
    def start(self) -> None:
        self._wall_started = time.perf_counter()

    def stop(self, images: int) -> float:
        if self._wall_started is None:
            raise ConfigError("stop() without start()")
        elapsed = time.perf_counter() - self._wall_started
        self._wall_started = None
        self.record(images, elapsed)
        return elapsed

    # -- reporting ------------------------------------------------------------------
    @property
    def step_count(self) -> int:
        return len(self._steps)

    def _measured(self) -> list[tuple[int, float]]:
        return self._steps[self.skip_first :]

    def images_per_second(self) -> float:
        measured = self._measured()
        if not measured:
            return 0.0
        images = sum(i for i, _ in measured)
        seconds = sum(s for _, s in measured)
        return images / seconds if seconds > 0 else 0.0

    def mean_step_time(self) -> float:
        measured = self._measured()
        if not measured:
            return 0.0
        return sum(s for _, s in measured) / len(measured)

    def reset(self) -> None:
        self._steps.clear()
        self._wall_started = None
