"""Model checkpointing (npz-based)."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Module


def save_checkpoint(model: Module, path: str, *, step: int = 0) -> None:
    """Write a model's parameters (plus the step counter) to ``path``."""
    state = model.state_dict()
    state["__step__"] = np.asarray(step)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(model: Module, path: str) -> int:
    """Load parameters into ``model``; returns the stored step counter."""
    if not os.path.exists(path):
        raise ConfigError(f"checkpoint {path!r} does not exist")
    with np.load(path) as data:
        state = {k: data[k] for k in data.files if k != "__step__"}
        step = int(data["__step__"]) if "__step__" in data.files else 0
    model.load_state_dict(state)
    return step
