"""Training-state checkpointing (npz-based).

A checkpoint is one ``.npz`` carrying the model parameters *and* — when an
optimizer / LR scheduler is passed — their full dynamic state (Adam
moments and per-parameter step counts, SGD velocities, the scheduler's
epoch and base LR).  Restarting from a checkpoint therefore resumes the
exact optimization trajectory instead of silently replaying warmup from a
stale optimizer.

Backward compatibility: files written by older versions contain only the
model parameters plus ``__step__``; loading one restores the model and
leaves any supplied optimizer/scheduler untouched.  Reserved key prefixes
(``__step__``, ``__opt__/``, ``__sched__/``) can never collide with model
parameter names, which are dotted attribute paths.

Higher-level orchestration — atomic writes, checksums, retention, and
simulated write cost — lives in :mod:`repro.resilience.checkpoint`; these
functions are the serialization layer it builds on.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Module
from repro.tensor.optim.base import Optimizer

_OPT_PREFIX = "__opt__/"
_SCHED_PREFIX = "__sched__/"


def _flatten_optimizer(optimizer: Optimizer) -> dict[str, np.ndarray]:
    state = optimizer.state_dict()
    flat = {
        f"{_OPT_PREFIX}lr": np.asarray(state["lr"]),
        f"{_OPT_PREFIX}step_count": np.asarray(state["step_count"]),
    }
    for slot, arrays in state["per_param"].items():
        for i, array in enumerate(arrays):
            flat[f"{_OPT_PREFIX}per/{slot}/{i}"] = np.asarray(array)
    return flat


def _unflatten_optimizer(data, keys: list[str]) -> dict:
    per_param: dict[str, dict[int, np.ndarray]] = {}
    for key in keys:
        tail = key[len(_OPT_PREFIX):]
        if tail.startswith("per/"):
            _, slot, index = tail.split("/")
            per_param.setdefault(slot, {})[int(index)] = data[key]
    return {
        "lr": float(data[f"{_OPT_PREFIX}lr"]),
        "step_count": int(data[f"{_OPT_PREFIX}step_count"]),
        "per_param": {
            slot: [arrays[i] for i in sorted(arrays)]
            for slot, arrays in per_param.items()
        },
    }


def save_checkpoint(
    model: Module,
    path: str,
    *,
    step: int = 0,
    optimizer: Optimizer | None = None,
    scheduler=None,
) -> None:
    """Write model (and optionally optimizer/scheduler) state to ``path``."""
    state = model.state_dict()
    state["__step__"] = np.asarray(step)
    if optimizer is not None:
        state.update(_flatten_optimizer(optimizer))
    if scheduler is not None:
        sched = scheduler.state_dict()
        state[f"{_SCHED_PREFIX}epoch"] = np.asarray(sched["epoch"])
        state[f"{_SCHED_PREFIX}base_lr"] = np.asarray(sched["base_lr"])
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(
    model: Module,
    path: str,
    *,
    optimizer: Optimizer | None = None,
    scheduler=None,
) -> int:
    """Load state from ``path``; returns the stored step counter.

    Restores the optimizer/scheduler when given one *and* the file carries
    the corresponding state (old checkpoints don't — the model still loads).
    """
    if not os.path.exists(path):
        raise ConfigError(f"checkpoint {path!r} does not exist")
    with np.load(path) as data:
        state = {k: data[k] for k in data.files if not k.startswith("__")}
        step = int(data["__step__"]) if "__step__" in data.files else 0
        opt_keys = [k for k in data.files if k.startswith(_OPT_PREFIX)]
        if optimizer is not None and opt_keys:
            optimizer.load_state_dict(_unflatten_optimizer(data, opt_keys))
        if scheduler is not None and f"{_SCHED_PREFIX}epoch" in data.files:
            scheduler.load_state_dict({
                "epoch": int(data[f"{_SCHED_PREFIX}epoch"]),
                "base_lr": float(data[f"{_SCHED_PREFIX}base_lr"]),
            })
    model.load_state_dict(state)
    return step
