"""Temporal (video) SR training: BPTT over frame sequences (functional mode).

The trainer drives :class:`~repro.models.video.RecurrentEDSR` end to end
on tiny models: each sequence runs ``frames`` forward passes carrying the
recurrent hidden state, accumulates per-scale L1/MSE losses across frames,
then backpropagates once through the whole sequence and applies a single
optimizer update.  Hidden state resets at sequence boundaries — the same
periodic step structure the performance-mode study prices in
:meth:`repro.core.study.ScalingStudy._run_point`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor, functional as F
from repro.tensor.nn.module import Module
from repro.tensor.optim.base import Optimizer
from repro.trainer.throughput import ThroughputMeter


@dataclass
class VideoTrainResult:
    """Per-sequence losses, split per scale, plus frame throughput."""

    losses: list[float] = field(default_factory=list)
    per_scale_losses: dict[int, list[float]] = field(default_factory=dict)
    frames_per_second: float = 0.0
    sequences: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def synthetic_video(
    *,
    sequences: int,
    frames: int,
    batch: int,
    patch: int,
    scales: tuple[int, ...],
    seed: int = 0,
) -> Iterator[tuple[np.ndarray, dict[int, np.ndarray]]]:
    """Deterministic synthetic video clips for tests and examples.

    Yields ``(lr_seq, hr_by_scale)`` with ``lr_seq`` of shape
    (frames, batch, 3, patch, patch); consecutive frames are pixel-shifted
    copies of the first (so there is real temporal structure), and each HR
    target is the nearest-neighbour upsample of its LR frame — a mapping a
    tiny model can visibly learn.
    """
    rng = np.random.default_rng(seed)
    for _ in range(sequences):
        base = rng.random((batch, 3, patch, patch), dtype=np.float32)
        lr_seq = np.stack(
            [np.roll(base, shift=t, axis=-1) for t in range(frames)]
        )
        hr = {
            s: np.repeat(np.repeat(lr_seq, s, axis=-2), s, axis=-1)
            for s in scales
        }
        yield lr_seq, hr


def train_video_sr(
    model: Module,
    clips: Iterator[tuple[np.ndarray, dict[int, np.ndarray]]],
    optimizer: Optimizer,
    *,
    loss: str = "l1",
) -> VideoTrainResult:
    """Train a recurrent multi-scale SR model over video clips.

    ``clips`` yields ``(lr_seq, hr_by_scale)`` as produced by
    :func:`synthetic_video`.  Loss is averaged over frames and scales so
    sequence length and head count do not rescale the learning rate.
    """
    loss_fn = {"l1": F.l1_loss, "mse": F.mse_loss}.get(loss)
    if loss_fn is None:
        raise ConfigError(f"unknown loss {loss!r}; use 'l1' or 'mse'")
    meter = ThroughputMeter(skip_first=0)
    result = VideoTrainResult()
    model.train()
    for lr_seq, hr_by_scale in clips:
        frames = lr_seq.shape[0]
        if frames < 1:
            raise ConfigError("each clip needs at least one frame")
        scales = sorted(hr_by_scale)
        meter.start()
        model.zero_grad()
        hidden = None  # hidden state resets at every sequence boundary
        total = None
        scale_totals: dict[int, float] = {s: 0.0 for s in scales}
        weight = 1.0 / (frames * len(scales))
        for t in range(frames):
            outputs, hidden = model(Tensor(lr_seq[t]), hidden)
            for s in scales:
                term = loss_fn(outputs[s], Tensor(hr_by_scale[s][t]))
                scale_totals[s] += term.item() / frames
                term = F.mul(term, weight)
                total = term if total is None else F.add(total, term)
        total.backward()
        optimizer.step()
        meter.stop(images=frames * lr_seq.shape[1])
        result.losses.append(total.item())
        for s in scales:
            result.per_scale_losses.setdefault(s, []).append(scale_totals[s])
        result.sequences += 1
    result.frames_per_second = meter.images_per_second()
    return result
