"""Gradient compression & communication reduction (``repro.compression``).

Three mechanisms, each with a simulated wire-cost story *and* a
functional numpy-trainer story:

* dense precision compression (fp16 / bf16) — `compressor`,
* top-k sparsification with error feedback — `topk`,
* local-SGD periodic averaging — configured on the trainer/study
  (``local_sgd_h``), priced as a parameter allreduce every H steps.

See ``docs/compression.md`` for wire formats and the autotuner story.
"""

from repro.compression.config import (
    CompressionConfig,
    TOPK_INDEX_BYTES,
    TOPK_VALUE_BYTES,
)
from repro.compression.compressor import (
    Bf16Compressor,
    Fp16Compressor,
    IdentityCompressor,
    build_compressor,
)
from repro.compression.topk import (
    sparse_wire_nbytes,
    sparsify_with_feedback,
    top_k_count,
    top_k_indices,
)

__all__ = [
    "CompressionConfig",
    "TOPK_INDEX_BYTES",
    "TOPK_VALUE_BYTES",
    "IdentityCompressor",
    "Fp16Compressor",
    "Bf16Compressor",
    "build_compressor",
    "top_k_count",
    "top_k_indices",
    "sparsify_with_feedback",
    "sparse_wire_nbytes",
]
