"""Dense gradient compressors (none / fp16 / bf16).

A compressor owns the *functional* cast (numpy arrays in, numpy arrays
out) and the *wire pricing* (how many bytes a compressed tensor occupies
on the fabric, and which :class:`~repro.mpi.datatypes.Datatype` the
cost model should use when pricing the reduction kernels).

fp16 reduces in half precision on the wire — the same accumulation the
real Horovod fp16 allreduce performs — while bf16 keeps fp32
accumulation and truncates the mantissa at the boundary (numpy has no
bfloat16 dtype, so bf16 values live in fp32 storage restricted to the
bf16 grid; the wire still carries 2 bytes/element).
"""

from __future__ import annotations

import numpy as np

from repro.compression.config import CompressionConfig
from repro.errors import ConfigError
from repro.mpi.datatypes import Datatype


class IdentityCompressor:
    """Dense fp32 pass-through: the uncompressed engine path."""

    name = "none"
    wire_dtype = Datatype.FLOAT32

    def wire_nbytes(self, nbytes: int) -> int:
        return nbytes

    def compress(self, array: np.ndarray) -> np.ndarray:
        return array

    def decompress(self, array: np.ndarray) -> np.ndarray:
        return array


class Fp16Compressor:
    """IEEE binary16 cast-compress; reduction accumulates in fp16."""

    name = "fp16"
    wire_dtype = Datatype.FLOAT16

    def wire_nbytes(self, nbytes: int) -> int:
        elements = nbytes // Datatype.FLOAT32.size
        return elements * Datatype.FLOAT16.size

    def compress(self, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(array, dtype=np.float32).astype(np.float16)

    def decompress(self, array: np.ndarray) -> np.ndarray:
        return array.astype(np.float32)


class Bf16Compressor:
    """bfloat16 truncation with round-to-nearest-even.

    Values are stored in fp32 restricted to the bf16 grid (numpy has no
    native bfloat16); the reduction accumulates in fp32 and the result
    is re-truncated, matching hardware bf16 allreduces with fp32
    accumulators.
    """

    name = "bf16"
    wire_dtype = Datatype.FLOAT16  # 2 bytes/element on the wire

    def wire_nbytes(self, nbytes: int) -> int:
        elements = nbytes // Datatype.FLOAT32.size
        return elements * 2

    def compress(self, array: np.ndarray) -> np.ndarray:
        bits = np.ascontiguousarray(array, dtype=np.float32).view(np.uint32)
        # Round to nearest even on the 16 retained mantissa bits.
        rounded = (bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1)))
        rounded &= np.uint32(0xFFFF0000)
        return rounded.view(np.float32)

    def decompress(self, array: np.ndarray) -> np.ndarray:
        return array


def build_compressor(config: CompressionConfig):
    """Dense compressor for ``config``.

    Sparse (top-k) selection happens per-tensor in the engine; its dense
    fallback (e.g. parameter synchronisation in local-SGD) is identity.
    """
    if config.mode in ("none", "topk"):
        return IdentityCompressor()
    if config.mode == "fp16":
        return Fp16Compressor()
    if config.mode == "bf16":
        return Bf16Compressor()
    raise ConfigError(f"no compressor for mode {config.mode!r}")
