"""Deterministic top-k sparsification with error feedback.

Selection is ordered by ``(-|value|, index)`` — a stable argsort on the
negated magnitudes — so ties break toward the lowest index and every
replica selects the same coordinates for the same input.  Error feedback
keeps the unselected mass in a per-(rank, tensor) residual that is added
back before the next selection, so no gradient mass is ever dropped,
only delayed (Stich et al., "Sparsified SGD with Memory").

Wire format: each rank contributes ``k`` (int32 index, fp32 value)
pairs; ranks exchange them with an **allgather** (sparse patterns differ
per rank, so a reduction cannot combine payloads in-network).
"""

from __future__ import annotations

import numpy as np

from repro.compression.config import TOPK_INDEX_BYTES, TOPK_VALUE_BYTES


def top_k_count(elements: int, ratio: float) -> int:
    """Number of elements kept for a tensor of ``elements`` entries."""
    if elements <= 0:
        return 0
    return max(1, min(elements, int(ratio * elements)))


def top_k_indices(flat: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries, ascending order.

    Deterministic: ties in magnitude resolve to the lowest index (stable
    sort), and the returned indices are sorted so the wire layout does
    not depend on the sort's internal order.
    """
    order = np.argsort(-np.abs(flat), kind="stable")[:k]
    return np.sort(order)


def sparsify_with_feedback(
    grad: np.ndarray, residual: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """One error-feedback step: select top-k of (grad + residual).

    Mutates ``residual`` in place to hold the unselected mass and
    returns ``(indices, values)``.  The invariant — exact, no floating
    rounding beyond the single add — is::

        scatter(values at indices) + residual == grad + residual_before

    element for element.
    """
    send = grad + residual
    idx = top_k_indices(send, k)
    values = send[idx].copy()
    residual[...] = send
    residual[idx] = 0.0
    return idx, values


def sparse_wire_nbytes(k: int) -> int:
    """Per-rank bytes on the wire for a k-element sparse payload."""
    return k * (TOPK_INDEX_BYTES + TOPK_VALUE_BYTES)
