"""Gradient-compression configuration.

A compression mode is spelled as a short spec string so it can travel
through CLIs, study configs, and cache digests unchanged:

* ``"none"``       — dense fp32 allreduce (the default; byte-identical to
  the uncompressed engine path).
* ``"fp16"``       — cast gradients to IEEE half precision before the
  allreduce; 2 bytes/element on the wire.
* ``"bf16"``       — truncate the fp32 mantissa to bfloat16 (round to
  nearest even); 2 bytes/element on the wire, fp32 accumulation.
* ``"topk:<r>"``   — keep only the ``r`` fraction of largest-magnitude
  elements per tensor, with error feedback; the wire format becomes an
  allgather of (index, value) pairs.
* ``"local-sgd"`` cadence is *not* a compression spec — it is configured
  separately (``StudyConfig.local_sgd_h`` / ``DistributedTrainer``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

MODES = ("none", "fp16", "bf16", "topk")

#: Bytes per sparse element on the wire: int32 index + fp32 value.
TOPK_INDEX_BYTES = 4
TOPK_VALUE_BYTES = 4


@dataclass(frozen=True)
class CompressionConfig:
    """Parsed, validated compression selection."""

    mode: str = "none"
    topk_ratio: float = 0.01

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown compression mode {self.mode!r}; expected one of {MODES}"
            )
        if self.mode == "topk" and not (0.0 < self.topk_ratio <= 1.0):
            raise ConfigError(
                f"topk ratio must be in (0, 1], got {self.topk_ratio!r}"
            )

    @property
    def is_identity(self) -> bool:
        return self.mode == "none"

    @property
    def is_sparse(self) -> bool:
        return self.mode == "topk"

    def spec(self) -> str:
        """Canonical spec string (round-trips through :func:`parse`)."""
        if self.mode == "topk":
            return f"topk:{self.topk_ratio:g}"
        return self.mode

    @classmethod
    def parse(cls, spec: str) -> "CompressionConfig":
        """Parse a ``--compression`` spec string."""
        if not isinstance(spec, str):
            raise ConfigError(f"compression spec must be a string, got {spec!r}")
        text = spec.strip().lower()
        if text in ("", "none"):
            return cls(mode="none")
        if text in ("fp16", "bf16"):
            return cls(mode=text)
        if text.startswith("topk"):
            _, _, ratio_text = text.partition(":")
            if not ratio_text:
                return cls(mode="topk")
            try:
                ratio = float(ratio_text)
            except ValueError:
                raise ConfigError(
                    f"bad top-k ratio in compression spec {spec!r}"
                ) from None
            return cls(mode="topk", topk_ratio=ratio)
        raise ConfigError(
            f"unknown compression spec {spec!r}; expected "
            "none | fp16 | bf16 | topk:<ratio>"
        )
