"""Backend-agnostic communication layer.

One collective API over every backend (MPI, NCCL, and the hierarchical
two-level backend), MVAPICH2-style algorithm-selection tables, a
sim-driven autotuner, and unified per-op accounting:

* :mod:`repro.comm.records` — :class:`CommRecord`, the one accounting
  record every collective emits (hvprof bins and the Chrome trace
  exporter both consume it);
* :mod:`repro.comm.cost` — shared α-β cost identities and the collective
  schedule memo (deduplicated out of the mpi/nccl/horovod layers);
* :mod:`repro.comm.selection` — (message size × world size) selection
  tables and the process-local active-table registry;
* :mod:`repro.comm.api` — the :class:`Communicator` protocol and the
  :class:`RoutedCommunicator` shell the stack talks to;
* :mod:`repro.comm.hierarchical` — intra-node NVLink reduce-scatter +
  inter-node IB allreduce + intra-node broadcast backend;
* :mod:`repro.comm.registry` — backend factories behind one
  ``build_communicator`` seam (world sizing is strict: no silent
  ``cluster.num_gpus`` fallback);
* :mod:`repro.comm.tuning` — the autotuner that sweeps candidate
  algorithms per (bytes, ranks) bucket and emits a cached, digest-keyed
  table.

Behavior-preserving by construction: with no active selection table the
routed communicator passes ``algorithm=None`` and each backend reproduces
its pre-refactor timings bit-identically (``tests/test_comm_equivalence``).

See ``docs/communication.md`` for the layer diagram and table format.
"""

# Only leaf modules are imported eagerly: repro.mpi.collectives imports
# repro.comm.cost back during its own init, so this package __init__ must
# not (transitively) import the mpi layer.  Backend-touching symbols
# resolve lazily via the module __getattr__ below.
from repro.comm.records import CommRecord
from repro.comm.cost import (
    ScheduleMemo,
    allreduce_lower_bound,
    alpha_beta_time,
    ring_step_count,
    weight_broadcast_time,
)
from repro.comm.selection import (
    SelectionTable,
    active_table_digests,
    active_tables,
    clear_active_tables,
    get_active_table,
    install_table_payloads,
    set_active_table,
)
from repro.comm.api import (
    CollectiveOp,
    Communicator,
    RoutedCommunicator,
    broadcast_weights,
)

_LAZY = {
    "available_backends": "repro.comm.registry",
    "build_communicator": "repro.comm.registry",
    "register_backend": "repro.comm.registry",
    "resolve_world_size": "repro.comm.registry",
    "HierarchicalCommunicator": "repro.comm.hierarchical",
    "HierarchicalWorld": "repro.comm.hierarchical",
    "CANDIDATES": "repro.comm.tuning",
    "TuningConfig": "repro.comm.tuning",
    "default_table": "repro.comm.tuning",
    "tune_compression_table": "repro.comm.tuning",
    "tune_table": "repro.comm.tuning",
    "tuning_digest": "repro.comm.tuning",
}

__all__ = [
    "CommRecord",
    "ScheduleMemo",
    "allreduce_lower_bound",
    "alpha_beta_time",
    "ring_step_count",
    "weight_broadcast_time",
    "SelectionTable",
    "active_table_digests",
    "active_tables",
    "clear_active_tables",
    "get_active_table",
    "install_table_payloads",
    "set_active_table",
    "CollectiveOp",
    "Communicator",
    "RoutedCommunicator",
    "broadcast_weights",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.comm' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
