"""Sim-driven autotuner: sweep algorithms per (bytes, ranks) bucket.

MVAPICH2's tuning tables are produced by running an allreduce sweep on the
target machine at install time; this is the simulator's analogue.  For
each (message size, rank count) grid point the tuner times every candidate
algorithm through the *real* backend cost model (the same code path
training steps take) and fills the selection table with the argmin.  The
result is content-addressed: the tuning configuration digests to a cache
key, so re-tuning an unchanged configuration is a cache hit, and the
table's own digest folds into scaling/serve point digests so tuned-table
runs never alias untuned cached results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.selection import SelectionTable
from repro.errors import ConfigError
from repro.hardware.specs import LASSEN, ClusterSpec
from repro.utils.units import KIB, MIB

#: candidate algorithms the tuner sweeps, per backend, ordered
#: latency-optimal first (ties resolve to the earlier candidate)
CANDIDATES: dict[str, tuple[str, ...]] = {
    "mpi": (
        "recursive_doubling",
        "reduce_scatter_allgather",
        "ring",
        "hierarchical",
    ),
    "nccl": ("nccl-tree", "nccl-ring"),
    "hierarchical": ("hier-2level",),
}

#: algorithms that require a power-of-two communicator size
_POW2_ONLY = {"recursive_doubling", "reduce_scatter_allgather"}

DEFAULT_BYTE_POINTS = (4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB)
DEFAULT_RANK_COUNTS = (4, 16, 64)


@dataclass(frozen=True)
class TuningConfig:
    """Everything that determines a tuned table (digest preimage)."""

    backend: str = "mpi"
    byte_points: tuple[int, ...] = DEFAULT_BYTE_POINTS
    rank_counts: tuple[int, ...] = DEFAULT_RANK_COUNTS
    cluster: ClusterSpec = LASSEN
    #: scenario supplying the MPI device policy + MV2 config (mpi backend)
    scenario: str = "MPI-Opt"

    def __post_init__(self) -> None:
        if self.backend not in CANDIDATES:
            raise ConfigError(
                f"no tuning candidates for backend {self.backend!r}; "
                f"known: {sorted(CANDIDATES)}"
            )
        for name, points in (
            ("byte_points", self.byte_points),
            ("rank_counts", self.rank_counts),
        ):
            if not points or list(points) != sorted(set(points)):
                raise ConfigError(f"{name} must be non-empty and ascending")


#: in-process memo (digest -> table): tuning is deterministic, and test
#: suites re-tune the same configuration many times
_TUNE_MEMO: dict[str, SelectionTable] = {}


def tuning_digest(config: TuningConfig) -> str:
    from repro.perf.digest import canonical_digest

    return canonical_digest({"kind": "comm-tuning", "config": config})


def _geometric_edges(points: tuple[int, ...]) -> tuple[int, ...]:
    """Bucket boundaries at geometric midpoints between sweep points."""
    return tuple(
        int(math.sqrt(points[i] * points[i + 1])) for i in range(len(points) - 1)
    )


def _build_sweep_comm(config: TuningConfig, num_ranks: int):
    """A raw backend communicator sized for one rank-count sweep column."""
    from repro.comm.registry import build_communicator
    from repro.hardware.cluster import build_cluster

    cluster = build_cluster(config.cluster, num_ranks)
    world_spec = None
    if config.backend == "mpi":
        from repro.core.scenarios import scenario_by_name
        from repro.mpi.process import WorldSpec

        scenario = scenario_by_name(config.scenario)
        world_spec = WorldSpec(
            num_ranks=num_ranks, policy=scenario.policy, config=scenario.mv2
        )
    _world, comm = build_communicator(
        cluster,
        config.backend,
        world_spec=world_spec,
        num_ranks=num_ranks,
        table=None,
    )
    return comm


def _time_algorithm(comm, nbytes: int, algorithm: str) -> float:
    from repro.mpi.comm import GpuBuffer

    buffers = [GpuBuffer.virtual(nbytes) for _ in range(comm.size)]
    return comm.allreduce(buffers, algorithm=algorithm).time


def tune_table(config: TuningConfig, *, cache=None) -> SelectionTable:
    """Sweep candidates over the grid and emit the argmin selection table.

    ``cache`` is a :class:`~repro.perf.cache.ResultCache`; hits return the
    stored table without simulating.  An in-process memo backs both paths.
    """
    digest = tuning_digest(config)
    memo = _TUNE_MEMO.get(digest)
    if memo is not None:
        return memo
    if cache is not None and getattr(cache, "enabled", True):
        hit = cache.get(digest)
        if hit is not None:
            table = SelectionTable.from_payload(hit)
            _TUNE_MEMO[digest] = table
            return table

    candidates = CANDIDATES[config.backend]
    timings: dict[str, dict[str, float]] = {}
    grid: list[list[str]] = []
    for nbytes in config.byte_points:
        row: list[str] = []
        for num_ranks in config.rank_counts:
            comm = _build_sweep_comm(config, num_ranks)
            best_algo, best_time = None, math.inf
            cell: dict[str, float] = {}
            for algo in candidates:
                if algo in _POW2_ONLY and num_ranks & (num_ranks - 1):
                    continue
                t = _time_algorithm(comm, nbytes, algo)
                cell[algo] = t
                if t < best_time:
                    best_algo, best_time = algo, t
            timings[f"{nbytes}x{num_ranks}"] = cell
            row.append(best_algo)
        grid.append(row)

    table = SelectionTable(
        backend=config.backend,
        byte_edges=_geometric_edges(config.byte_points),
        rank_edges=_geometric_edges(config.rank_counts),
        algorithms=tuple(tuple(row) for row in grid),
        source="tuned",
        extra={
            "byte_points": list(config.byte_points),
            "rank_counts": list(config.rank_counts),
            "timings": timings,
        },
    )
    _TUNE_MEMO[digest] = table
    if cache is not None and getattr(cache, "enabled", True):
        cache.put(digest, table.to_payload())
    return table


def _time_compression(comm, nbytes: int, mode: str, ratio: float) -> float:
    """Simulated wire time of one gradient exchange under ``mode``."""
    from repro.compression import sparse_wire_nbytes, top_k_count
    from repro.mpi.comm import GpuBuffer
    from repro.mpi.datatypes import Datatype

    if mode == "none":
        buffers = [GpuBuffer.virtual(nbytes) for _ in range(comm.size)]
        return comm.allreduce(buffers).time
    if mode == "fp16":
        wire = (nbytes // Datatype.FLOAT32.size) * Datatype.FLOAT16.size
        buffers = [
            GpuBuffer.virtual(wire, Datatype.FLOAT16) for _ in range(comm.size)
        ]
        return comm.allreduce(buffers).time
    # top-k: per-rank (index, value) payload exchanged via allgather
    k = top_k_count(nbytes // Datatype.FLOAT32.size, ratio)
    wire = sparse_wire_nbytes(k)
    buffers = [GpuBuffer.virtual(wire, Datatype.UINT8) for _ in range(comm.size)]
    _, timing = comm.allgather(buffers)
    return timing.time


def tune_compression_table(
    config: TuningConfig, *, topk_ratio: float = 0.01, cache=None
) -> SelectionTable:
    """Sweep compression modes over the grid and emit the argmin table.

    Same machinery as :func:`tune_table`, but the candidates are wire
    formats rather than collective algorithms: dense fp32 ("none"), dense
    fp16 (half the bytes through the same allreduce), and top-k sparse
    (k·8 bytes per rank through an allgather — a different collective
    *shape*, which is why this cannot be folded into the algorithm table).
    The result is stored under backend key ``"<backend>+compression"`` and
    is advisory: it reports which mode the cost model favours per
    (bytes, ranks) regime, it does not rewrite a study's configuration.
    """
    from repro.perf.digest import canonical_digest

    digest = canonical_digest(
        {
            "kind": "comm-compression-tuning",
            "config": config,
            "topk_ratio": topk_ratio,
        }
    )
    memo = _TUNE_MEMO.get(digest)
    if memo is not None:
        return memo
    if cache is not None and getattr(cache, "enabled", True):
        hit = cache.get(digest)
        if hit is not None:
            table = SelectionTable.from_payload(hit)
            _TUNE_MEMO[digest] = table
            return table

    candidates = ("none", "fp16", f"topk:{topk_ratio:g}")
    timings: dict[str, dict[str, float]] = {}
    grid: list[list[str]] = []
    for nbytes in config.byte_points:
        row: list[str] = []
        for num_ranks in config.rank_counts:
            comm = _build_sweep_comm(config, num_ranks)
            best_mode, best_time = None, math.inf
            cell: dict[str, float] = {}
            for mode in candidates:
                t = _time_compression(comm, nbytes, mode, topk_ratio)
                cell[mode] = t
                if t < best_time:
                    best_mode, best_time = mode, t
            timings[f"{nbytes}x{num_ranks}"] = cell
            row.append(best_mode)
        grid.append(row)

    table = SelectionTable(
        backend=f"{config.backend}+compression",
        byte_edges=_geometric_edges(config.byte_points),
        rank_edges=_geometric_edges(config.rank_counts),
        algorithms=tuple(tuple(row) for row in grid),
        source="tuned",
        extra={
            "byte_points": list(config.byte_points),
            "rank_counts": list(config.rank_counts),
            "topk_ratio": topk_ratio,
            "timings": timings,
        },
    )
    _TUNE_MEMO[digest] = table
    if cache is not None and getattr(cache, "enabled", True):
        cache.put(digest, table.to_payload())
    return table


def default_table(backend: str) -> SelectionTable:
    """The built-in table mirroring each backend's historical heuristic.

    Informational (``repro comm show`` without tuning): the routed
    communicator does *not* install these by default — it passes
    ``algorithm=None`` so backends keep their internal heuristics,
    including topology terms (node count, power-of-two) a static
    (bytes, ranks) grid cannot express.
    """
    if backend == "mpi":
        return SelectionTable(
            backend="mpi",
            byte_edges=(32 * KIB,),
            rank_edges=(4,),
            algorithms=(
                ("recursive_doubling", "recursive_doubling"),
                ("ring", "hierarchical"),
            ),
            source="builtin",
        )
    if backend == "nccl":
        return SelectionTable(
            backend="nccl",
            byte_edges=(64 * KIB,),
            rank_edges=(32,),
            algorithms=(("nccl-ring", "nccl-tree"), ("nccl-ring", "nccl-tree")),
            source="builtin",
        )
    if backend == "hierarchical":
        return SelectionTable(
            backend="hierarchical",
            byte_edges=(),
            rank_edges=(),
            algorithms=(("hier-2level",),),
            source="builtin",
        )
    raise ConfigError(f"no built-in table for backend {backend!r}")
