"""End-to-end payload integrity: CRC32 framing for the wire.

InfiniBand protects each hop with its own CRCs, but bit flips between the
HCA and memory (or in buggy staging copies) arrive link-clean and
payload-corrupt — the failure mode :class:`~repro.faults.CorruptionFault`
models.  The transport guards against it the way real MPI stacks do:
a CRC32 over the payload rides with every message, the receiver
recomputes it, and a mismatch triggers a retransmission through the
normal retry ladder.  Corruption is therefore *detected by construction*;
the chaos invariants assert that every injected ``wire-corrupt`` event
pairs with a ``crc-detected`` one.

The functional helpers (:func:`crc32`, :func:`checked_frame`,
:func:`verify_frame`) operate on real byte buffers for the functional
tests; :func:`crc_check_time` is the simulated cost charged to the
critical path.
"""

from __future__ import annotations

import struct
import zlib

from repro.utils.units import GB

#: sustained host CRC32 throughput (hardware-assisted, single core).
#: Power9 and modern x86 both sustain several GB/s; the exact value only
#: scales a small additive term on corrupt attempts.
CRC32_BANDWIDTH = 5.0 * GB

#: fixed per-message cost of computing + comparing the 4-byte checksum
CRC32_BASE_LATENCY_S = 50e-9

_HEADER = struct.Struct("<I")


def crc32(data: bytes) -> int:
    """CRC32 of a payload (zlib polynomial, masked to 32 bits)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc_check_time(nbytes: int) -> float:
    """Simulated wall time to checksum one ``nbytes`` payload."""
    return CRC32_BASE_LATENCY_S + nbytes / CRC32_BANDWIDTH


def checked_frame(payload: bytes) -> bytes:
    """Prepend the payload's CRC32 (little-endian u32) to the payload."""
    return _HEADER.pack(crc32(payload)) + payload


def verify_frame(frame: bytes) -> bytes:
    """Strip and verify a :func:`checked_frame` header.

    Returns the payload; raises :class:`ValueError` on a checksum
    mismatch or a frame too short to carry the header.
    """
    if len(frame) < _HEADER.size:
        raise ValueError(
            f"frame of {len(frame)} byte(s) cannot carry a CRC32 header"
        )
    (expected,) = _HEADER.unpack_from(frame)
    payload = frame[_HEADER.size:]
    actual = crc32(payload)
    if actual != expected:
        raise ValueError(
            f"CRC32 mismatch: header {expected:#010x}, payload {actual:#010x}"
        )
    return payload
