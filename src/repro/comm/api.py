"""The backend-agnostic communicator surface.

:class:`CollectiveOp` / :class:`Communicator` name the protocol every
backend implements (MPI, NCCL, hierarchical); :class:`RoutedCommunicator`
is the thin routing shell the rest of the stack talks to.  It

* consults the backend's active :class:`~repro.comm.selection.
  SelectionTable` (when one is installed) to pick the collective
  algorithm per (message size, world size) — and passes ``algorithm=None``
  otherwise, so default routing is bit-identical to the pre-refactor
  backends;
* records one :class:`~repro.comm.records.CommRecord` per executed
  collective via the backend's own observer seam, so *every* op —
  including ones issued on the underlying communicator directly — lands
  in the unified accounting stream;
* delegates everything else (restrict/reform, observers, the long tail of
  MPI-only collectives) to the wrapped backend communicator.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.comm.records import CommRecord
from repro.comm.selection import SelectionTable


@runtime_checkable
class CollectiveOp(Protocol):
    """Return type contract of every collective: a CollectiveTiming-like."""

    op: str
    algorithm: str
    nbytes: int
    time: float


@runtime_checkable
class Communicator(Protocol):
    """What every backend communicator must offer the layers above."""

    @property
    def size(self) -> int: ...  # pragma: no cover - protocol

    def add_observer(self, observer) -> None: ...  # pragma: no cover

    def allreduce(self, buffers, *args, **kwargs): ...  # pragma: no cover

    def bcast(self, buffers, *, root_index: int = 0): ...  # pragma: no cover

    def barrier(self): ...  # pragma: no cover

    def restrict(self, ranks: Sequence[int]): ...  # pragma: no cover

    def reform(self, ranks: Sequence[int]): ...  # pragma: no cover


class RoutedCommunicator:
    """Table-routing, record-emitting wrapper over a backend communicator."""

    def __init__(self, inner, *, table: SelectionTable | None = None):
        self.inner = inner
        self.table = table
        self._table_digest = table.digest() if table is not None else None
        self.records: list[CommRecord] = []
        # one stable bound-method object: attribute access would mint a new
        # one each time, defeating the identity check in _rewrap
        self._recorder = self._record
        inner.add_observer(self._recorder)

    # -- identity -----------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self.inner.world.backend_name

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def world(self):
        return self.inner.world

    @property
    def ranks(self):
        return self.inner.ranks

    @property
    def total_comm_time(self) -> float:
        return self.inner.total_comm_time

    @property
    def op_count(self) -> int:
        return self.inner.op_count

    # -- unified accounting -------------------------------------------------
    def _record(self, timing, backend: str) -> None:
        self.records.append(
            CommRecord.from_timing(timing, backend, table_digest=self._table_digest)
        )

    # -- routed collectives -------------------------------------------------
    def _route(self, nbytes: int, algorithm: str | None) -> str | None:
        if algorithm is not None:
            return algorithm
        if self.table is None:
            return None
        return self.table.lookup(nbytes, self.size)

    def allreduce(self, buffers, *args, **kwargs):
        algorithm = kwargs.pop("algorithm", None)
        nbytes = max((b.nbytes for b in buffers), default=0)
        return self.inner.allreduce(
            buffers, *args, algorithm=self._route(nbytes, algorithm), **kwargs
        )

    def bcast(self, buffers, *, root_index: int = 0):
        return self.inner.bcast(buffers, root_index=root_index)

    def barrier(self):
        return self.inner.barrier()

    # -- elasticity ---------------------------------------------------------
    def _rewrap(self, sub) -> "RoutedCommunicator":
        # the sub-communicator inherited this wrapper's recorder observer;
        # strip it so the new wrapper's recorder is the only one attached
        sub.observers = [o for o in sub.observers if o is not self._recorder]
        return RoutedCommunicator(sub, table=self.table)

    def restrict(self, ranks: Sequence[int]) -> "RoutedCommunicator":
        return self._rewrap(self.inner.restrict(ranks))

    def reform(self, ranks: Sequence[int]) -> "RoutedCommunicator":
        return self._rewrap(self.inner.reform(ranks))

    # -- everything else (observer management, MPI-only collectives) --------
    def __getattr__(self, name):
        return getattr(self.inner, name)


def broadcast_weights(comm, nbytes: int):
    """Charge a weight (re-)broadcast over an existing communicator.

    Used by elastic re-grow: the regrown replica's state is cloned
    functionally, and this prices pushing it over the re-formed ring.
    Returns the backend's CollectiveTiming (zero-op on trivial worlds).
    """
    from repro.mpi.comm import GpuBuffer

    if comm.size <= 1 or nbytes <= 0:
        return None
    return comm.bcast([GpuBuffer.virtual(nbytes) for _ in range(comm.size)])
