"""The hierarchical two-level collective backend.

Composes the split Laanait et al. (arXiv:1909.11150) exploit on NVLink-dense
nodes: an intra-node NVLink reduce-scatter, an inter-node IB allreduce over
the per-GPU shards, and an intra-node broadcast (allgather of the reduced
shards).  Each node's g GPUs therefore drive the network with 1/g-sized
shards concurrently through the shared HCA, so the inter-node phase moves
``2n(nodes-1)/nodes`` bytes at IB rate while the full-message hops stay on
NVLink — which is why this backend beats a flat ring on multi-node worlds
once messages are bandwidth-bound (>= ~1 MB).

Analytic envelope only (like the NCCL backend): per-phase α-β terms using
the NCCL protocol constants for link efficiencies and step latencies.
Functional semantics are the shared lock-step helpers, and the
:class:`~repro.faults.FaultInjector` degrades the NVLink/IB phases exactly
as it does the other backends' cost envelopes.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import CommError
from repro.hardware.cluster import Cluster
from repro.hardware.links import LinkKind
from repro.mpi.collectives.base import CollectiveTiming, ExecutionMode
from repro.mpi.comm import (
    CollectiveObserver,
    GpuBuffer,
    apply_allreduce,
    apply_bcast,
)
from repro.mpi.datatypes import ReduceOp
from repro.nccl.protocol import DEFAULT_PROTOCOL, NcclProtocol

#: the one algorithm this backend implements
ALGORITHM = "hier-2level"


class HierarchicalWorld:
    """Two-level backend job state: cluster + protocol envelope + faults."""

    backend_name = "hierarchical"

    def __init__(
        self,
        cluster: Cluster,
        num_ranks: int,
        protocol: NcclProtocol = DEFAULT_PROTOCOL,
        *,
        faults=None,
    ):
        if num_ranks < 1:
            raise CommError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks > cluster.num_gpus:
            raise CommError(
                f"{num_ranks} ranks > {cluster.num_gpus} GPUs in cluster"
            )
        self.cluster = cluster
        self.protocol = protocol
        self.num_ranks = num_ranks
        self.faults = faults

    @property
    def size(self) -> int:
        return self.num_ranks

    def communicator(self) -> "HierarchicalCommunicator":
        return HierarchicalCommunicator(self, list(range(self.num_ranks)))


class HierarchicalCommunicator:
    """Intra-node reduce-scatter + inter-node allreduce + intra broadcast."""

    def __init__(self, world: HierarchicalWorld, ranks: Sequence[int]):
        self.world = world
        self.ranks = list(ranks)
        self.observers: list[CollectiveObserver] = []
        self.total_comm_time = 0.0
        self.op_count = 0

    @property
    def size(self) -> int:
        return len(self.ranks)

    def add_observer(self, observer: CollectiveObserver) -> None:
        self.observers.append(observer)

    # -- elasticity ---------------------------------------------------------
    def restrict(self, ranks: Sequence[int]) -> "HierarchicalCommunicator":
        missing = set(ranks) - set(self.ranks)
        if missing:
            raise CommError(
                f"cannot restrict to ranks {sorted(missing)} not in "
                f"communicator {self.ranks}"
            )
        if not ranks:
            raise CommError("cannot restrict a communicator to zero ranks")
        sub = HierarchicalCommunicator(self.world, list(ranks))
        sub.observers = list(self.observers)
        return sub

    def reform(self, ranks: Sequence[int]) -> "HierarchicalCommunicator":
        unknown = {r for r in ranks if not 0 <= r < self.world.num_ranks}
        if unknown:
            raise CommError(
                f"cannot form a communicator on ranks {sorted(unknown)} "
                f"outside the {self.world.num_ranks}-rank world"
            )
        if not ranks:
            raise CommError("cannot form a communicator over zero ranks")
        sub = HierarchicalCommunicator(self.world, list(ranks))
        sub.observers = list(self.observers)
        return sub

    # -- topology -----------------------------------------------------------
    def _node_groups(self) -> list[list[int]]:
        gpn = self.world.cluster.gpus_per_node
        by_node: dict[int, list[int]] = {}
        for r in sorted(self.ranks):
            by_node.setdefault(r // gpn, []).append(r)
        return [g for _, g in sorted(by_node.items())]

    # -- link environment (fault-aware) -------------------------------------
    def _link_env(self, now: float) -> tuple[float, float, float, float]:
        """(nv_bw, nv_alpha, ib_bw, ib_alpha) at simulation time ``now``."""
        cluster = self.world.cluster
        proto = self.world.protocol
        nv_bw = cluster.spec.node.nvlink_gpu_gpu.bandwidth * proto.nvlink_efficiency
        ib_bw = cluster.spec.ib.bandwidth * proto.ib_efficiency
        nv_alpha = proto.intra_step_latency_s
        ib_alpha = proto.inter_step_latency_s
        faults = self.world.faults
        if faults is not None:
            nv_factor, nv_extra = faults.link_state(LinkKind.NVLINK_P2P, now)
            ib_factor, ib_extra = faults.link_state(LinkKind.IB, now)
            nv_bw = nv_bw * nv_factor if nv_factor > 0 else float("inf")
            ib_bw = ib_bw * ib_factor if ib_factor > 0 else float("inf")
            if nv_factor <= 0 or ib_factor <= 0:
                raise CommError("link fault zeroed bandwidth; cannot make progress")
            nv_alpha += nv_extra
            ib_alpha += ib_extra
        return nv_bw, nv_alpha, ib_bw, ib_alpha

    def _message_delay(self, groups: list[list[int]], now: float, ib_bw: float, ib_alpha: float) -> float:
        """Injected drop/delay penalty over the inter-node leader ring."""
        faults = self.world.faults
        if faults is None or len(groups) <= 1:
            return 0.0
        leaders = [g[0] for g in groups]
        delay = 0.0
        for i, src in enumerate(leaders):
            dst = leaders[(i + 1) % len(leaders)]
            verdict = faults.message_verdict(src, dst, now)
            delay += verdict.delay_s
            if verdict.severed:
                from repro.errors import MpiTimeoutError
                from repro.faults.plan import RetryPolicy

                retry = RetryPolicy()
                faults.record(
                    "msg-timeout", now, src=src, dst=dst,
                    detail="severed leader-ring hop",
                )
                raise MpiTimeoutError(
                    f"leader-ring hop {src}->{dst} path severed "
                    f"(partition/switch outage); retry budget "
                    f"({retry.max_retries}) exhausted after "
                    f"{retry.ladder_time():.6f}s"
                )
            if verdict.drop:
                # one deterministic retransmission of a pipeline chunk
                delay += ib_alpha + self.world.protocol.chunk_bytes / ib_bw
        return delay

    # -- timing model -------------------------------------------------------
    def _allreduce_segments(self, nbytes: int) -> dict[str, float]:
        groups = self._node_groups()
        g = max(len(grp) for grp in groups)
        nodes = len(groups)
        nv_bw, nv_alpha, ib_bw, ib_alpha = self._link_env(self.total_comm_time)
        segments: dict[str, float] = {}
        if g > 1:
            intra = (g - 1) * nv_alpha + (g - 1) / g * nbytes / nv_bw
            segments["intra_reduce_scatter"] = intra
        if nodes > 1:
            inter = (
                2 * (nodes - 1) * ib_alpha
                + 2 * nbytes * (nodes - 1) / (nodes * ib_bw)
            )
            inter += self._message_delay(groups, self.total_comm_time, ib_bw, ib_alpha)
            segments["inter_allreduce"] = inter
        if g > 1:
            segments["intra_broadcast"] = (
                (g - 1) * nv_alpha + (g - 1) / g * nbytes / nv_bw
            )
        return segments

    def _allgather_segments(self, nbytes_per_rank: int) -> dict[str, float]:
        """Two-level allgather: intra gather to the leader, leader-ring
        exchange over IB, then an intra broadcast of the remote portion."""
        groups = self._node_groups()
        g = max(len(grp) for grp in groups)
        nodes = len(groups)
        nv_bw, nv_alpha, ib_bw, ib_alpha = self._link_env(self.total_comm_time)
        segments: dict[str, float] = {}
        if g > 1:
            segments["intra_gather"] = (
                (g - 1) * nv_alpha + (g - 1) * nbytes_per_rank / nv_bw
            )
        if nodes > 1:
            inter = (
                (nodes - 1) * ib_alpha
                + (nodes - 1) * g * nbytes_per_rank / ib_bw
            )
            inter += self._message_delay(groups, self.total_comm_time, ib_bw, ib_alpha)
            segments["inter_allgather"] = inter
            remote = (nodes - 1) * g * nbytes_per_rank
            if g > 1:
                segments["intra_broadcast"] = (
                    math.ceil(math.log2(g)) * nv_alpha + remote / nv_bw
                )
        return segments

    def _reduce_scatter_segments(self, nbytes_per_rank: int) -> dict[str, float]:
        """Two-level reduce-scatter: the time-reverse of the allgather.

        Combine the remote portions node-locally, exchange reduced partials
        over the leader ring, then scatter each rank's shard off the leader
        — the same bytes as :meth:`_allgather_segments` traverse the same
        links in the opposite direction, so the envelope is symmetric (the
        standard allgather/reduce-scatter duality).
        """
        groups = self._node_groups()
        g = max(len(grp) for grp in groups)
        nodes = len(groups)
        nv_bw, nv_alpha, ib_bw, ib_alpha = self._link_env(self.total_comm_time)
        segments: dict[str, float] = {}
        if nodes > 1:
            remote = (nodes - 1) * g * nbytes_per_rank
            if g > 1:
                segments["intra_reduce"] = (
                    math.ceil(math.log2(g)) * nv_alpha + remote / nv_bw
                )
            inter = (
                (nodes - 1) * ib_alpha
                + (nodes - 1) * g * nbytes_per_rank / ib_bw
            )
            inter += self._message_delay(groups, self.total_comm_time, ib_bw, ib_alpha)
            segments["inter_reduce_scatter"] = inter
        if g > 1:
            segments["intra_scatter"] = (
                (g - 1) * nv_alpha + (g - 1) * nbytes_per_rank / nv_bw
            )
        return segments

    def _bcast_segments(self, nbytes: int) -> dict[str, float]:
        groups = self._node_groups()
        g = max(len(grp) for grp in groups)
        nodes = len(groups)
        nv_bw, nv_alpha, ib_bw, ib_alpha = self._link_env(self.total_comm_time)
        segments: dict[str, float] = {}
        if nodes > 1:
            # pipelined chain to the other node leaders over IB
            inter = (nodes - 1) * ib_alpha + nbytes / ib_bw
            inter += self._message_delay(groups, self.total_comm_time, ib_bw, ib_alpha)
            segments["inter_broadcast"] = inter
        if g > 1:
            segments["intra_broadcast"] = (
                math.ceil(math.log2(g)) * nv_alpha + nbytes / nv_bw
            )
        return segments

    # -- collective API ------------------------------------------------------
    def _validate(self, buffers: Sequence[GpuBuffer]) -> int:
        if len(buffers) != self.size:
            raise CommError(
                f"collective needs {self.size} buffers, got {len(buffers)}"
            )
        sizes = {b.nbytes for b in buffers}
        if len(sizes) != 1:
            raise CommError(f"mismatched buffer sizes: {sorted(sizes)}")
        return sizes.pop()

    def _notify(self, timing: CollectiveTiming) -> None:
        self.total_comm_time += timing.time
        self.op_count += 1
        for observer in self.observers:
            observer(timing, self.world.backend_name)

    def allreduce(
        self,
        buffers: Sequence[GpuBuffer],
        op: ReduceOp = ReduceOp.SUM,
        *,
        average: bool = False,
        algorithm: str | None = None,
    ) -> CollectiveTiming:
        if algorithm not in (None, ALGORITHM):
            raise CommError(
                f"hierarchical backend implements only {ALGORITHM!r}, "
                f"got {algorithm!r}"
            )
        nbytes = self._validate(buffers)
        apply_allreduce(buffers, op, average=average)
        segments = (
            self._allreduce_segments(nbytes)
            if self.size > 1 and nbytes > 0
            else {}
        )
        timing = CollectiveTiming(
            "allreduce",
            ALGORITHM,
            nbytes,
            self.size,
            sum(segments.values()),
            ExecutionMode.ANALYTIC,
            segments,
        )
        self._notify(timing)
        return timing

    def allgather(
        self, buffers: Sequence[GpuBuffer]
    ) -> tuple[list | None, CollectiveTiming]:
        """Gather every rank's data to all ranks (two-level envelope)."""
        nbytes = self._validate(buffers)
        datas = [b.data for b in buffers]
        gathered = None
        if all(d is not None for d in datas):
            gathered = [d.copy() for d in datas]
        segments = (
            self._allgather_segments(nbytes)
            if self.size > 1 and nbytes > 0
            else {}
        )
        timing = CollectiveTiming(
            "allgather",
            ALGORITHM,
            nbytes,
            self.size,
            sum(segments.values()),
            ExecutionMode.ANALYTIC,
            segments,
        )
        self._notify(timing)
        return gathered, timing

    def reduce_scatter(
        self, buffers: Sequence[GpuBuffer], op: ReduceOp = ReduceOp.SUM
    ) -> tuple[list | None, CollectiveTiming]:
        """Reduce every rank's full vector, scatter one shard per rank.

        Each buffer holds the full input vector; the timing covers each
        rank ending with its ``nbytes / size`` reduced shard (the dual of
        :meth:`allgather`, and the collective tensor parallelism uses to
        combine sharded activation gradients).
        """
        nbytes = self._validate(buffers)
        if self.size > 1 and nbytes % self.size:
            raise CommError(
                f"reduce_scatter needs nbytes divisible by {self.size} "
                f"ranks, got {nbytes}"
            )
        datas = [b.data for b in buffers]
        scattered = None
        if all(d is not None for d in datas) and self.size > 0:
            import numpy as np

            reduced = op.reduce([d for d in datas])
            if reduced.size % self.size == 0:
                scattered = [c.copy() for c in np.split(reduced, self.size)]
        per_rank = nbytes // self.size if self.size else nbytes
        segments = (
            self._reduce_scatter_segments(per_rank)
            if self.size > 1 and nbytes > 0
            else {}
        )
        timing = CollectiveTiming(
            "reduce_scatter",
            ALGORITHM,
            per_rank,
            self.size,
            sum(segments.values()),
            ExecutionMode.ANALYTIC,
            segments,
        )
        self._notify(timing)
        return scattered, timing

    def bcast(
        self, buffers: Sequence[GpuBuffer], *, root_index: int = 0
    ) -> CollectiveTiming:
        nbytes = self._validate(buffers)
        apply_bcast(buffers, root_index)
        segments = (
            self._bcast_segments(nbytes) if self.size > 1 and nbytes > 0 else {}
        )
        timing = CollectiveTiming(
            "bcast",
            ALGORITHM,
            nbytes,
            self.size,
            sum(segments.values()),
            ExecutionMode.ANALYTIC,
            segments,
        )
        self._notify(timing)
        return timing

    def barrier(self) -> CollectiveTiming:
        p = self.size
        _, _, _, ib_alpha = self._link_env(self.total_comm_time)
        time = math.ceil(math.log2(max(p, 2))) * ib_alpha if p > 1 else 0.0
        timing = CollectiveTiming(
            "barrier", "hier", 0, p, time, ExecutionMode.ANALYTIC
        )
        self._notify(timing)
        return timing
