"""Backend registry: one factory seam for every communication backend.

``build_communicator`` is what the layers above (Horovod's
``build_backend``, the scaling study, the CLI) call; backends register a
factory keyed by name.  The returned communicator is always a
:class:`~repro.comm.api.RoutedCommunicator` so algorithm-selection tables
and unified accounting apply uniformly, and ``faults`` is threaded into
*every* backend's cost envelope (the MPI-only asymmetry is gone).

World sizing is strict: a backend that needs a rank count gets it from
``num_ranks`` or ``world_spec`` explicitly — there is no silent fallback
to ``cluster.num_gpus`` (that fallback used to let an NCCL study quietly
simulate the wrong world when both were omitted).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.comm.api import RoutedCommunicator
from repro.comm.selection import SelectionTable, get_active_table
from repro.mpi.collectives import ExecutionMode

#: name -> factory(cluster, world_spec, num_ranks, mode, faults) -> (world, comm)
_FACTORIES: dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory


def available_backends() -> list[str]:
    return sorted(_FACTORIES)


def resolve_world_size(world_spec, num_ranks, *, backend: str) -> int:
    """Explicit world sizing or a hard error — never a silent guess."""
    if num_ranks is not None:
        return num_ranks
    if world_spec is not None:
        return world_spec.num_ranks
    raise ConfigError(
        f"{backend!r} backend needs an explicit world size: pass num_ranks "
        f"or world_spec (refusing to fall back to cluster.num_gpus)"
    )


def _build_mpi(cluster, world_spec, num_ranks, mode, faults):
    from repro.mpi.comm import MpiWorld

    if world_spec is None:
        raise ConfigError("MPI backend requires a WorldSpec")
    world = MpiWorld(cluster, world_spec, mode=mode, faults=faults)
    return world, world.communicator()


def _build_nccl(cluster, world_spec, num_ranks, mode, faults):
    from repro.nccl.communicator import NcclWorld

    ranks = resolve_world_size(world_spec, num_ranks, backend="nccl")
    world = NcclWorld(cluster, ranks, faults=faults)
    return world, world.communicator()


def _build_hierarchical(cluster, world_spec, num_ranks, mode, faults):
    from repro.comm.hierarchical import HierarchicalWorld

    ranks = resolve_world_size(world_spec, num_ranks, backend="hierarchical")
    world = HierarchicalWorld(cluster, ranks, faults=faults)
    return world, world.communicator()


register_backend("mpi", _build_mpi)
register_backend("nccl", _build_nccl)
register_backend("hierarchical", _build_hierarchical)


def build_communicator(
    cluster,
    backend: str,
    *,
    world_spec=None,
    num_ranks: int | None = None,
    mode: ExecutionMode = ExecutionMode.ANALYTIC,
    faults=None,
    table: SelectionTable | None = None,
):
    """Return ``(world, routed_communicator)`` for the requested backend.

    ``table`` overrides the process-wide active selection table for the
    backend (``repro.comm.selection.set_active_table``); with neither, the
    communicator routes with ``algorithm=None`` and the backend heuristics
    reproduce pre-refactor timings bit-identically.
    """
    factory = _FACTORIES.get(backend)
    if factory is None:
        raise ConfigError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        )
    world, comm = factory(cluster, world_spec, num_ranks, mode, faults)
    if table is None:
        table = get_active_table(backend)
    return world, RoutedCommunicator(comm, table=table)
