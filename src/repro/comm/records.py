"""Unified per-op communication accounting record.

Every backend's collectives report a :class:`~repro.mpi.collectives.base.
CollectiveTiming`; observers (hvprof, the routed communicator, trace
export) normalize it into one :class:`CommRecord` so the profiler bins,
the Chrome trace exporter, and the selection-table autotuner all consume
the same shape regardless of which backend executed the op.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CommRecord:
    """One executed collective, backend-agnostic.

    Field names are load-bearing: ``profiling.trace_export`` and the
    hvprof reports read ``op``/``backend``/``algorithm``/``nbytes``/
    ``time`` directly.
    """

    op: str
    backend: str
    algorithm: str
    nbytes: int
    time: float
    num_ranks: int = 0
    segments: dict = field(default_factory=dict)
    #: digest of the selection table that routed this op (None = heuristic)
    table_digest: str | None = None

    @classmethod
    def from_timing(
        cls, timing, backend: str, *, table_digest: str | None = None
    ) -> "CommRecord":
        return cls(
            op=timing.op,
            backend=backend,
            algorithm=timing.algorithm,
            nbytes=timing.nbytes,
            time=timing.time,
            num_ranks=getattr(timing, "num_ranks", 0),
            segments=dict(getattr(timing, "segments", None) or {}),
            table_digest=table_digest,
        )
