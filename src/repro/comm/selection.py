"""Message-size × world-size algorithm-selection tables (MVAPICH2-style).

MVAPICH2 ships per-architecture tuning tables that pick a collective
algorithm from the (message size, communicator size) pair; the paper's
MVAPICH2-GDR vs. NCCL crossover is exactly that mechanism.  A
:class:`SelectionTable` is the simulator's version: a small 2-D grid of
algorithm names bucketed by byte and rank thresholds, either built in
(mirroring the heuristics the backends already apply) or produced by the
sim-driven autotuner in :mod:`repro.comm.tuning`.

Tables are *opt-in*: with no active table the routed communicator passes
``algorithm=None`` and every backend falls back to its historical
heuristic, which is what keeps the refactor bit-identical by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.utils.tables import TextTable
from repro.utils.units import format_bytes


@dataclass(frozen=True)
class SelectionTable:
    """Algorithm choices on a (byte bucket) × (rank bucket) grid.

    ``byte_edges``/``rank_edges`` are ascending *inclusive upper bounds*
    of buckets ``0..len(edges)-1``; values beyond the last edge land in
    the final, open-ended bucket.  ``algorithms[b][r]`` is therefore a
    ``(len(byte_edges)+1) × (len(rank_edges)+1)`` grid.
    """

    backend: str
    byte_edges: tuple[int, ...]
    rank_edges: tuple[int, ...]
    algorithms: tuple[tuple[str, ...], ...]
    source: str = "builtin"
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for name, edges in (("byte_edges", self.byte_edges), ("rank_edges", self.rank_edges)):
            if list(edges) != sorted(set(edges)):
                raise ConfigError(f"{name} must be strictly ascending, got {edges}")
        want_rows = len(self.byte_edges) + 1
        want_cols = len(self.rank_edges) + 1
        if len(self.algorithms) != want_rows or any(
            len(row) != want_cols for row in self.algorithms
        ):
            raise ConfigError(
                f"algorithms grid must be {want_rows}x{want_cols} for "
                f"{len(self.byte_edges)} byte edges and {len(self.rank_edges)} rank edges"
            )

    # -- lookup -------------------------------------------------------------
    @staticmethod
    def _bucket(value: int, edges: tuple[int, ...]) -> int:
        for i, edge in enumerate(edges):
            if value <= edge:
                return i
        return len(edges)

    def lookup(self, nbytes: int, num_ranks: int) -> str:
        """The algorithm this table selects for one collective."""
        b = self._bucket(nbytes, self.byte_edges)
        r = self._bucket(num_ranks, self.rank_edges)
        return self.algorithms[b][r]

    # -- identity -----------------------------------------------------------
    def digest(self) -> str:
        """Content address of the selection policy (folds into cache keys)."""
        from repro.perf.digest import canonical_digest

        return canonical_digest(
            {
                "kind": "comm-table",
                "backend": self.backend,
                "byte_edges": list(self.byte_edges),
                "rank_edges": list(self.rank_edges),
                "algorithms": [list(row) for row in self.algorithms],
            }
        )

    # -- serialization ------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "backend": self.backend,
            "byte_edges": list(self.byte_edges),
            "rank_edges": list(self.rank_edges),
            "algorithms": [list(row) for row in self.algorithms],
            "source": self.source,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SelectionTable":
        return cls(
            backend=payload["backend"],
            byte_edges=tuple(payload["byte_edges"]),
            rank_edges=tuple(payload["rank_edges"]),
            algorithms=tuple(tuple(row) for row in payload["algorithms"]),
            source=payload.get("source", "builtin"),
            extra=dict(payload.get("extra", {})),
        )

    # -- display ------------------------------------------------------------
    def render(self) -> str:
        headers = ["Message Size"] + [
            f"<= {e} ranks" for e in self.rank_edges
        ] + [f"> {self.rank_edges[-1]} ranks" if self.rank_edges else "any ranks"]
        table = TextTable(
            headers,
            title=f"{self.backend} selection table ({self.source}) "
            f"digest={self.digest()[:12]}",
        )
        labels = [f"<= {format_bytes(e)}" for e in self.byte_edges] + [
            f"> {format_bytes(self.byte_edges[-1])}" if self.byte_edges else "any"
        ]
        for label, row in zip(labels, self.algorithms):
            table.add_row(label, *row)
        return table.render()


# -- active tables (process-local routing state) ----------------------------
_ACTIVE: dict[str, SelectionTable] = {}


def set_active_table(table: SelectionTable) -> None:
    """Install ``table`` as the routing policy for its backend."""
    _ACTIVE[table.backend] = table


def get_active_table(backend: str) -> SelectionTable | None:
    return _ACTIVE.get(backend)


def clear_active_tables() -> None:
    _ACTIVE.clear()


def active_tables() -> dict[str, SelectionTable]:
    return dict(_ACTIVE)


def active_table_digests() -> dict[str, str]:
    """Backend -> table digest for every active table (cache-key material)."""
    return {backend: table.digest() for backend, table in sorted(_ACTIVE.items())}


def install_table_payloads(payloads) -> None:
    """Re-install serialized tables (worker processes of parallel sweeps)."""
    clear_active_tables()
    for payload in payloads or ():
        set_active_table(SelectionTable.from_payload(payload))
