"""Shared α-β cost arithmetic and the collective schedule memo.

The α-β (latency-bandwidth) identities and the step-schedule memoization
used to be copied between ``mpi/collectives/allreduce.py``,
``nccl/communicator.py``, and the Horovod fusion layer; this module is
their single home.  ``mpi.collectives.allreduce`` re-exports
``allreduce_lower_bound`` and keeps a module-level alias of the memo's
backing dict for backward compatibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.perf import flags as perf_flags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.specs import ClusterSpec


#: Wire bytes per element of the default (fp32) gradient dtype.  This is
#: the *only* place the 4 lives: every reduce-cost call site threads an
#: explicit ``dtype_bytes`` that defaults to this constant, so compressed
#: (2-byte) traffic prices its reduction kernels correctly everywhere.
FLOAT32_BYTES = 4


def reduce_elements(nbytes: int, dtype_bytes: int) -> float:
    """Element count of an ``nbytes`` payload at ``dtype_bytes``/element."""
    return nbytes / dtype_bytes


def reduce_time(nbytes: int, dtype_bytes: int, *, reduce_flops: float) -> float:
    """Elementwise-sum cost of combining two ``nbytes`` buffers."""
    return reduce_elements(nbytes, dtype_bytes) / reduce_flops


def alpha_beta_time(nbytes: int, *, alpha_s: float, bandwidth: float) -> float:
    """One message: startup latency plus serialization time."""
    if bandwidth == float("inf"):
        return alpha_s
    return alpha_s + nbytes / bandwidth


def allreduce_lower_bound(nbytes: int, p: int, bandwidth: float) -> float:
    """Bandwidth-optimal lower bound ``2n(p-1)/(pB)`` for sanity checks."""
    if p <= 1:
        return 0.0
    return 2 * nbytes * (p - 1) / (p * bandwidth)


def ring_step_count(p: int) -> int:
    """Steps of a chunked-ring allreduce (reduce-scatter + allgather)."""
    return 2 * (p - 1)


def weight_broadcast_time(spec: "ClusterSpec", nbytes: int, *, replicas: int = 1) -> float:
    """Cold-start weight push to new replicas over the inter-node fabric.

    The serving tier brings replicas online one at a time, so the flat
    model is one α-β IB transfer per replica (same envelope
    ``serve.costing`` charged before this layer existed).
    """
    if nbytes <= 0 or replicas <= 0:
        return 0.0
    return replicas * spec.ib.transfer_time(nbytes)


class ScheduleMemo:
    """FIFO memo of immutable collective step-schedules.

    A schedule is pure data determined by (algorithm, rank list, message
    size, buffer ids[, node grouping]), and Horovod issues the same
    allreduce shape every training step — so plans are built once and
    reused instead of being reconstructed per call.  Schedules are
    immutable after construction (lists of frozen PairTransfers that the
    costers only read), which is what makes sharing them safe.

    Gated on :data:`repro.perf.flags.schedule_memo`; ``entries`` is the
    long-lived backing dict (aliased by legacy call sites), so eviction
    and clearing mutate it in place rather than rebinding.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self.entries: dict[tuple, object] = {}

    def get(self, key: tuple, builder: Callable[[], object]) -> object:
        if not perf_flags.schedule_memo:
            return builder()
        hit = self.entries.get(key)
        if hit is None:
            if len(self.entries) >= self.max_entries:
                # FIFO eviction is enough: the working set per study is tiny
                self.entries.pop(next(iter(self.entries)))
            hit = builder()
            self.entries[key] = hit
        return hit

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)
