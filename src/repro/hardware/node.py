"""Node model: sockets, GPUs, NVLink/X-Bus wiring, HBM and host memory.

The Lassen wiring (Fig. 8 of the paper) is reproduced structurally:

* socket 0 hosts GPUs 0-1, socket 1 hosts GPUs 2-3 (for 4-GPU nodes);
* GPUs on the same socket are NVLink peers and NVLink-attached to the CPU;
* the two sockets are joined by X-Bus;
* each CPU socket reaches the InfiniBand HCA over PCIe (socket 0 holds it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.errors import HardwareError
from repro.sim.engine import Environment
from repro.hardware.links import Link, LinkKind
from repro.hardware.memory import MemoryPool
from repro.hardware.specs import NodeSpec


class DeviceKind(enum.Enum):
    GPU = "gpu"
    CPU = "cpu"
    HCA = "hca"


@dataclass(frozen=True, order=True)
class DeviceRef:
    """Globally-unique address of a device in the cluster."""

    node: int
    kind: DeviceKind
    index: int

    def __str__(self) -> str:
        return f"n{self.node}:{self.kind.value}{self.index}"

    __repr__ = __str__


class Node:
    """One compute node: devices, memory pools, and intra-node links."""

    def __init__(self, env: Environment, node_id: int, spec: NodeSpec):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.gpu_refs = [
            DeviceRef(node_id, DeviceKind.GPU, i) for i in range(spec.gpus_per_node)
        ]
        self.cpu_refs = [
            DeviceRef(node_id, DeviceKind.CPU, s) for s in range(spec.sockets)
        ]
        self.hca_ref = DeviceRef(node_id, DeviceKind.HCA, 0)
        self.gpu_memory = {
            ref: MemoryPool(f"{ref}:hbm", spec.gpu.memory_bytes) for ref in self.gpu_refs
        }
        self.host_memory = MemoryPool(f"n{node_id}:dram", spec.cpu.memory_bytes * spec.sockets)
        self._links: list[Link] = []
        self._adjacency: dict[DeviceRef, list[Link]] = {
            ref: [] for ref in (*self.gpu_refs, *self.cpu_refs, self.hca_ref)
        }
        # the wiring is fixed at construction, so shortest routes are too:
        # memoize them (route() dominates large analytic sweeps otherwise)
        self._route_cache: dict[tuple[DeviceRef, DeviceRef], list[Link]] = {}
        self._wire()

    # -- wiring -----------------------------------------------------------
    def _add_link(self, spec, kind: LinkKind, a: DeviceRef, b: DeviceRef) -> None:
        link = Link(self.env, spec, kind, a, b)
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)

    def _wire(self) -> None:
        s = self.spec
        for gi, gref in enumerate(self.gpu_refs):
            socket = gi // s.gpus_per_socket
            self._add_link(s.nvlink_gpu_cpu, LinkKind.NVLINK_CPU, gref, self.cpu_refs[socket])
        # Same-socket GPU peers (all-to-all within the socket).
        for socket in range(s.sockets):
            members = self.gpu_refs[
                socket * s.gpus_per_socket : (socket + 1) * s.gpus_per_socket
            ]
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    self._add_link(
                        s.nvlink_gpu_gpu, LinkKind.NVLINK_P2P, members[i], members[j]
                    )
        if s.sockets == 2:
            self._add_link(s.xbus_cpu_cpu, LinkKind.XBUS, self.cpu_refs[0], self.cpu_refs[1])
        self._add_link(s.pcie_cpu_hca, LinkKind.PCIE, self.cpu_refs[0], self.hca_ref)

    # -- queries ----------------------------------------------------------
    def socket_of_gpu(self, gpu_index: int) -> int:
        if not 0 <= gpu_index < self.spec.gpus_per_node:
            raise HardwareError(f"gpu index {gpu_index} out of range on node {self.node_id}")
        return gpu_index // self.spec.gpus_per_socket

    def links_between(self, a: DeviceRef, b: DeviceRef) -> Link | None:
        for link in self._adjacency.get(a, ()):
            if link.connects(a, b):
                return link
        return None

    def route(self, src: DeviceRef, dst: DeviceRef) -> list[Link]:
        """Shortest intra-node route (BFS over the small device graph).

        Memoized: the device graph never changes after ``_wire``.  Callers
        must treat the returned list as read-only.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        route = self._route_uncached(src, dst)
        self._route_cache[(src, dst)] = route
        return route

    def _route_uncached(self, src: DeviceRef, dst: DeviceRef) -> list[Link]:
        if src == dst:
            return []
        if src not in self._adjacency or dst not in self._adjacency:
            raise HardwareError(f"device not on node {self.node_id}: {src} or {dst}")
        frontier = [(src, [])]
        seen = {src}
        while frontier:
            nxt: list[tuple[DeviceRef, list[Link]]] = []
            for here, path in frontier:
                for link in self._adjacency[here]:
                    there = link.other(here)
                    if there in seen:
                        continue
                    if there == dst:
                        return path + [link]
                    seen.add(there)
                    nxt.append((there, path + [link]))
            frontier = nxt
        raise HardwareError(f"no route {src} -> {dst} on node {self.node_id}")

    @property
    def links(self) -> Iterable[Link]:
        return tuple(self._links)

    def __repr__(self) -> str:
        return f"<Node {self.node_id} spec={self.spec.name!r} gpus={len(self.gpu_refs)}>"
