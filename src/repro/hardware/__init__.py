"""Hardware models: GPUs, CPUs, links, nodes, and cluster topology.

The default presets model the LLNL *Lassen* system used in the paper
(4 × V100 per node, NVLink2 intra-node, EDR InfiniBand fat-tree) plus the
TACC *Longhorn* system mentioned in §IV-A.
"""

from repro.hardware.specs import (
    CpuSpec,
    GpuSpec,
    LinkSpec,
    NodeSpec,
    ClusterSpec,
    LASSEN,
    LONGHORN,
    V100_16GB,
    POWER9,
)
from repro.hardware.memory import MemoryBlock, MemoryPool, PoolExhaustedError
from repro.hardware.links import Link, LinkKind
from repro.hardware.node import DeviceRef, Node
from repro.hardware.cluster import Cluster

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "LinkSpec",
    "NodeSpec",
    "ClusterSpec",
    "LASSEN",
    "LONGHORN",
    "V100_16GB",
    "POWER9",
    "MemoryPool",
    "MemoryBlock",
    "PoolExhaustedError",
    "Link",
    "LinkKind",
    "Node",
    "DeviceRef",
    "Cluster",
]
