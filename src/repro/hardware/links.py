"""Contended link instances on top of :class:`~repro.hardware.specs.LinkSpec`.

A :class:`Link` owns one :class:`~repro.sim.resources.Resource` per
direction (full-duplex) or a single shared resource (half-duplex).  A
transfer claims its directional channel for ``alpha + n/B`` seconds, so two
simultaneous same-direction transfers serialize — the mechanism behind
intra-node congestion when four ranks stage through the same CPU.
"""

from __future__ import annotations

import enum
from typing import Generator

from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.hardware.specs import LinkSpec


class LinkKind(enum.Enum):
    """Physical class of a link; used by transports to pick routes."""

    NVLINK_P2P = "nvlink-p2p"
    NVLINK_CPU = "nvlink-cpu"
    XBUS = "x-bus"
    PCIE = "pcie"
    IB = "ib"
    HOST_MEM = "host-mem"


class Link:
    """One physical link between two endpoints.

    ``endpoints`` are opaque hashable ids (DeviceRef or node ids); direction
    keys are the ordered endpoint pair.
    """

    def __init__(
        self,
        env: Environment,
        spec: LinkSpec,
        kind: LinkKind,
        a: object,
        b: object,
        *,
        channels: int = 1,
    ):
        self.env = env
        self.spec = spec
        self.kind = kind
        self.a = a
        self.b = b
        name = f"{kind.value}:{a}<->{b}"
        if spec.duplex:
            self._res = {
                (a, b): Resource(env, capacity=channels, name=name + ":fwd"),
                (b, a): Resource(env, capacity=channels, name=name + ":rev"),
            }
        else:
            shared = Resource(env, capacity=channels, name=name)
            self._res = {(a, b): shared, (b, a): shared}
        self.bytes_carried = 0
        self.transfer_count = 0
        # optional FaultInjector consulted (at env.now) for degradation
        self.fault_injector = None

    def other(self, endpoint: object) -> object:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise KeyError(f"{endpoint!r} is not an endpoint of {self!r}")

    def connects(self, x: object, y: object) -> bool:
        return {x, y} == {self.a, self.b}

    def channel(self, src: object, dst: object) -> Resource:
        try:
            return self._res[(src, dst)]
        except KeyError:
            raise KeyError(f"no direction {src!r}->{dst!r} on {self!r}") from None

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended message cost (degraded if a link fault is active)."""
        if self.fault_injector is not None:
            bw_factor, extra = self.fault_injector.link_state(
                self.kind, self.env.now
            )
            if bw_factor != 1.0 or extra != 0.0:
                return (
                    self.spec.latency_s
                    + extra
                    + nbytes / (self.spec.bandwidth * bw_factor)
                )
        return self.spec.transfer_time(nbytes)

    def transfer(self, src: object, dst: object, nbytes: int) -> Generator:
        """Simulation process moving ``nbytes`` from ``src`` to ``dst``.

        Claims the directional channel for the whole duration; contention
        shows up as queueing delay before the alpha-beta cost.
        """
        res = self.channel(src, dst)
        yield res.request()
        try:
            yield self.env.timeout(self.transfer_time(nbytes))
            self.bytes_carried += nbytes
            self.transfer_count += 1
        finally:
            res.release()

    def __repr__(self) -> str:
        return f"<Link {self.kind.value} {self.a!r}<->{self.b!r} {self.spec.name}>"
