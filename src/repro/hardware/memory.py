"""Byte-accounting memory pools.

We do not model address-space fragmentation, only capacity: each pool tracks
named allocations so the CUDA layer can report exactly *what* filled a GPU
when an allocation fails (compute tensors vs. contexts vs. fusion buffers —
the distinction at the heart of the paper's Fig. 6a).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.utils.units import format_bytes


class PoolExhaustedError(HardwareError):
    """Allocation exceeded pool capacity."""

    def __init__(self, pool: "MemoryPool", requested: int):
        self.pool = pool
        self.requested = requested
        super().__init__(
            f"pool {pool.name!r}: cannot allocate {format_bytes(requested)} "
            f"({format_bytes(pool.free)} free of {format_bytes(pool.capacity)}; "
            f"largest consumers: {pool.top_consumers(3)})"
        )


@dataclass(frozen=True)
class MemoryBlock:
    """Handle for one live allocation."""

    block_id: int
    pool_name: str
    nbytes: int
    tag: str


class MemoryPool:
    """Capacity-limited allocator with per-tag accounting."""

    _ids = itertools.count()

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise HardwareError(f"pool capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self._used = 0
        self._blocks: dict[int, MemoryBlock] = {}
        self.peak_used = 0
        self.alloc_count = 0
        self.oom_count = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def alloc(self, nbytes: int, tag: str = "anon") -> MemoryBlock:
        if nbytes < 0:
            raise HardwareError(f"allocation size must be >= 0, got {nbytes}")
        if self._used + nbytes > self.capacity:
            self.oom_count += 1
            raise PoolExhaustedError(self, nbytes)
        block = MemoryBlock(next(self._ids), self.name, int(nbytes), tag)
        self._blocks[block.block_id] = block
        self._used += block.nbytes
        self.peak_used = max(self.peak_used, self._used)
        self.alloc_count += 1
        return block

    def free_block(self, block: MemoryBlock) -> None:
        live = self._blocks.pop(block.block_id, None)
        if live is None:
            raise HardwareError(
                f"double free or foreign block {block.block_id} in pool {self.name!r}"
            )
        self._used -= live.nbytes

    def can_alloc(self, nbytes: int) -> bool:
        return self._used + nbytes <= self.capacity

    def used_by_tag(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for block in self._blocks.values():
            totals[block.tag] = totals.get(block.tag, 0) + block.nbytes
        return totals

    def top_consumers(self, n: int) -> str:
        totals = sorted(self.used_by_tag().items(), key=lambda kv: -kv[1])[:n]
        return ", ".join(f"{tag}={format_bytes(size)}" for tag, size in totals) or "none"

    def reset(self) -> None:
        """Drop all allocations (simulated process teardown)."""
        self._blocks.clear()
        self._used = 0

    def __repr__(self) -> str:
        return (
            f"<MemoryPool {self.name!r} used={format_bytes(self._used)}/"
            f"{format_bytes(self.capacity)}>"
        )
