"""Cluster model: nodes plus the InfiniBand fabric.

The fabric is a full-bisection fat-tree (Lassen/Longhorn both are), so the
core is modelled as non-blocking: an inter-node message contends only for
the source node's HCA uplink and the destination node's HCA downlink.
``oversubscription > 1`` in the spec derates the per-port bandwidth to model
tapered networks.

Transfers are *pipelined* (wormhole) across multi-hop routes: total time is
``sum(alpha_i) + nbytes / min(bandwidth_i)``, with every hop's directional
channel held for the duration so congestion propagates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator

from repro.comm.cost import FLOAT32_BYTES, reduce_time
from repro.errors import HardwareError
from repro.perf import flags as perf_flags
from repro.sim.engine import Environment
from repro.sim.resources import try_acquire_all
from repro.hardware.links import Link, LinkKind
from repro.hardware.node import DeviceKind, DeviceRef, Node
from repro.hardware.specs import ClusterSpec

#: sentinel endpoint for the non-blocking switch core
CORE = "ib-core"


class Cluster:
    """A set of nodes wired to a fat-tree core."""

    def __init__(self, env: Environment, spec: ClusterSpec, num_nodes: int):
        if num_nodes < 1:
            raise HardwareError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_nodes > spec.max_nodes:
            raise HardwareError(
                f"{spec.name} has {spec.max_nodes} nodes, requested {num_nodes}"
            )
        self.env = env
        self.spec = spec
        self.nodes = [Node(env, i, spec.node) for i in range(num_nodes)]
        ib_spec = spec.ib
        if spec.oversubscription != 1.0:
            ib_spec = replace(
                ib_spec, bandwidth=ib_spec.bandwidth / spec.oversubscription
            )
        self._ib_links = [
            Link(env, ib_spec, LinkKind.IB, node.hca_ref, CORE) for node in self.nodes
        ]
        self.fault_injector = None
        # Topology is immutable after construction: memoize routes and the
        # (sum-of-alphas, bottleneck-bandwidth) pair per endpoint pair.
        # path_cost/route are the hottest calls of an analytic sweep.
        self._route_cache: dict[
            tuple[DeviceRef, DeviceRef], list[tuple[Link, object, object]]
        ] = {}
        self._path_cache: dict[tuple[DeviceRef, DeviceRef], tuple[float, float]] = {}

    def apply_fault_injector(self, injector) -> None:
        """Register a :class:`~repro.faults.FaultInjector` on every link so
        active :class:`~repro.faults.LinkFault` windows degrade both the
        event-driven transfers and the analytic ``path_cost``."""
        self.fault_injector = injector
        for node in self.nodes:
            for link in node.links:
                link.fault_injector = injector
        for link in self._ib_links:
            link.fault_injector = injector

    # -- device addressing -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def gpus_per_node(self) -> int:
        return self.spec.node.gpus_per_node

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def gpu_ref(self, global_gpu: int) -> DeviceRef:
        """Map a flat GPU index (MPI-rank order) to its device ref."""
        if not 0 <= global_gpu < self.num_gpus:
            raise HardwareError(f"gpu index {global_gpu} out of range (n={self.num_gpus})")
        node, local = divmod(global_gpu, self.gpus_per_node)
        return self.nodes[node].gpu_refs[local]

    def node_of(self, ref: DeviceRef) -> Node:
        return self.nodes[ref.node]

    # -- failure-domain addressing ------------------------------------------
    @property
    def num_switches(self) -> int:
        """Leaf (TOR) switches serving this cluster's nodes."""
        per = self.spec.nodes_per_switch
        return (self.num_nodes + per - 1) // per

    def switch_of_node(self, node: int) -> int:
        """Which leaf switch a node's IB uplink lands on."""
        if not 0 <= node < self.num_nodes:
            raise HardwareError(
                f"node {node} out of range (n={self.num_nodes})"
            )
        return node // self.spec.nodes_per_switch

    def nodes_behind_switch(self, switch: int) -> list[int]:
        """Node ids whose only fabric path runs through ``switch``."""
        if not 0 <= switch < self.num_switches:
            raise HardwareError(
                f"switch {switch} out of range (n={self.num_switches})"
            )
        lo = switch * self.spec.nodes_per_switch
        hi = min(lo + self.spec.nodes_per_switch, self.num_nodes)
        return list(range(lo, hi))

    def topology(self):
        """The fault layer's :class:`~repro.faults.domains.Topology` view
        of this cluster (rank → node → leaf-switch addressing)."""
        from repro.faults.domains import Topology

        return Topology(
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            nodes_per_switch=self.spec.nodes_per_switch,
        )

    def same_node(self, a: DeviceRef, b: DeviceRef) -> bool:
        return a.node == b.node

    def same_socket(self, a: DeviceRef, b: DeviceRef) -> bool:
        if a.node != b.node:
            return False
        if a.kind is not DeviceKind.GPU or b.kind is not DeviceKind.GPU:
            return False
        node = self.nodes[a.node]
        return node.socket_of_gpu(a.index) == node.socket_of_gpu(b.index)

    def gpu_memory(self, ref: DeviceRef):
        if ref.kind is not DeviceKind.GPU:
            raise HardwareError(f"{ref} is not a GPU")
        return self.nodes[ref.node].gpu_memory[ref]

    # -- routing -----------------------------------------------------------
    def route(self, src: DeviceRef, dst: DeviceRef) -> list[tuple[Link, object, object]]:
        """Return the hop list [(link, from, to), ...] from src to dst.

        Memoized (the fabric is fixed); callers must treat the returned
        list as read-only.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        hops = self._route_uncached(src, dst)
        self._route_cache[(src, dst)] = hops
        return hops

    def _route_uncached(
        self, src: DeviceRef, dst: DeviceRef
    ) -> list[tuple[Link, object, object]]:
        if src == dst:
            return []
        if src.node == dst.node:
            node = self.nodes[src.node]
            hops = []
            here: object = src
            for link in node.route(src, dst):
                there = link.other(here)
                hops.append((link, here, there))
                here = there
            return hops
        src_node, dst_node = self.nodes[src.node], self.nodes[dst.node]
        hops: list[tuple[Link, object, object]] = []
        here = src
        for link in src_node.route(src, src_node.hca_ref):
            there = link.other(here)
            hops.append((link, here, there))
            here = there
        hops.append((self._ib_links[src.node], src_node.hca_ref, CORE))
        hops.append((self._ib_links[dst.node], CORE, dst_node.hca_ref))
        here = dst_node.hca_ref
        for link in dst_node.route(dst_node.hca_ref, dst):
            there = link.other(here)
            hops.append((link, here, there))
            here = there
        return hops

    def path_cost(self, src: DeviceRef, dst: DeviceRef, nbytes: int) -> float:
        """Uncontended pipelined transfer time along the route."""
        if self.fault_injector is not None:
            hops = self.route(src, dst)
            if not hops:
                return 0.0
            now = self.env.now
            alpha = 0.0
            bottleneck = float("inf")
            for link, _, _ in hops:
                bw_factor, extra = self.fault_injector.link_state(link.kind, now)
                alpha += link.spec.latency_s + extra
                bottleneck = min(bottleneck, link.spec.bandwidth * bw_factor)
            return alpha + nbytes / bottleneck
        # fault-free route constants are immutable: compute (alpha, B) once
        constants = self._path_cache.get((src, dst))
        if constants is None:
            hops = self.route(src, dst)
            if not hops:
                constants = (0.0, float("inf"))
            else:
                constants = (
                    sum(link.spec.latency_s for link, _, _ in hops),
                    min(link.spec.bandwidth for link, _, _ in hops),
                )
            self._path_cache[(src, dst)] = constants
        alpha, bottleneck = constants
        if bottleneck == float("inf"):
            return 0.0
        return alpha + nbytes / bottleneck

    def path_bandwidth(self, src: DeviceRef, dst: DeviceRef) -> float:
        hops = self.route(src, dst)
        if not hops:
            return float("inf")
        return min(link.spec.bandwidth for link, _, _ in hops)

    def transfer(self, src: DeviceRef, dst: DeviceRef, nbytes: int) -> Generator:
        """Simulation process: move ``nbytes`` src -> dst, holding all hops.

        Channels are acquired in route order (consistent ordering avoids
        deadlock among concurrent transfers).
        """
        hops = self.route(src, dst)
        if not hops:
            return
        duration = self.path_cost(src, dst, nbytes)
        channels = [link.channel(frm, to) for link, frm, to in hops]
        if perf_flags.link_fastpath and try_acquire_all(channels):
            # Uncontended fast path: the whole route was free, so per-hop
            # request/grant events would all fire immediately — collapse
            # them into the single timed event.  Channels are genuinely
            # held, so concurrent flows queue exactly as on the slow path.
            try:
                yield self.env.timeout(duration)
                for link, _, _ in hops:
                    link.bytes_carried += nbytes
                    link.transfer_count += 1
            finally:
                for channel in reversed(channels):
                    channel.release()
            return
        held = []
        try:
            for channel in channels:
                yield channel.request()
                held.append(channel)
            yield self.env.timeout(duration)
            for link, _, _ in hops:
                link.bytes_carried += nbytes
                link.transfer_count += 1
        finally:
            for channel in reversed(held):
                channel.release()

    # -- host-side costs -----------------------------------------------------
    def host_memcpy_time(self, node_id: int, nbytes: int) -> float:
        """Cost of one CPU memcpy (staging copy) of ``nbytes`` on a node."""
        return nbytes / self.nodes[node_id].spec.cpu.memcpy_bandwidth

    def host_reduce_time(
        self, node_id: int, nbytes: int, dtype_bytes: int = FLOAT32_BYTES
    ) -> float:
        """Cost of an elementwise sum of two ``nbytes`` buffers on the CPU."""
        return reduce_time(
            nbytes, dtype_bytes,
            reduce_flops=self.nodes[node_id].spec.cpu.reduce_flops,
        )

    def link_utilization_report(self) -> dict[str, int]:
        """Total bytes carried per link kind (for contention analysis)."""
        totals: dict[str, int] = {}
        for node in self.nodes:
            for link in node.links:
                totals[link.kind.value] = (
                    totals.get(link.kind.value, 0) + link.bytes_carried
                )
        for link in self._ib_links:
            totals[link.kind.value] = totals.get(link.kind.value, 0) + link.bytes_carried
        return totals

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.spec.name!r} nodes={self.num_nodes} "
            f"gpus={self.num_gpus}>"
        )


def build_cluster(
    spec: ClusterSpec, num_gpus: int, env: Environment | None = None
) -> Cluster:
    """Convenience: build the smallest cluster holding ``num_gpus`` GPUs."""
    env = env or Environment()
    per = spec.node.gpus_per_node
    nodes = (num_gpus + per - 1) // per
    return Cluster(env, spec, nodes)
