"""Hardware specification records and the Lassen/Longhorn presets.

Bandwidth/latency values come from public documentation of the systems the
paper evaluated on:

* NVIDIA V100 (SXM2, 16 GB): 15.7 TFLOP/s fp32 peak, 900 GB/s HBM2.
* Lassen node: IBM Power9 (2 sockets, 44 cores total), 4 × V100, NVLink2
  (3 bricks/GPU at 25 GB/s/dir/brick -> ~75 GB/s peer or CPU), X-Bus 64 GB/s
  between sockets, EDR InfiniBand (~12.5 GB/s/port).
* Longhorn node: identical GPU complement on Power9 with EDR IB.

Sustained efficiencies are intentionally below peak: the paper's measured
10.3 img/s for EDSR and 360 img/s for ResNet-50 on one V100 back-solve to
roughly one third of fp32 peak for conv-heavy fp32 training, which is the
``sustained_efficiency`` default (see ``repro.core.calibration``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.utils.units import GIB, GB, MIB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    memory_bytes: int
    peak_fp32_flops: float
    hbm_bandwidth: float
    # Fraction of peak a well-tuned conv-stack training step sustains. The
    # per-model/batch utilization curve further scales this (costing module).
    sustained_efficiency: float = 0.34
    # Fixed per-kernel-launch overhead; bounds throughput for tiny batches.
    kernel_launch_overhead_s: float = 6.0e-6
    # Bytes of device memory consumed by a bare CUDA context ("overhead
    # kernel" footprint of Fig. 6a when a process touches a remote GPU).
    context_overhead_bytes: int = 320 * MIB

    def __post_init__(self) -> None:
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("peak_fp32_flops", self.peak_fp32_flops)
        check_positive("hbm_bandwidth", self.hbm_bandwidth)
        if not 0 < self.sustained_efficiency <= 1:
            raise ConfigError(
                f"sustained_efficiency must be in (0,1], got {self.sustained_efficiency}"
            )

    @property
    def sustained_fp32_flops(self) -> float:
        return self.peak_fp32_flops * self.sustained_efficiency


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one CPU socket."""

    name: str
    cores: int
    memory_bytes: int
    memcpy_bandwidth: float  # host memcpy / staging-copy bandwidth
    reduce_flops: float  # elementwise SIMD reduce throughput (for host-staged reduction)

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("memcpy_bandwidth", self.memcpy_bandwidth)
        check_positive("reduce_flops", self.reduce_flops)


@dataclass(frozen=True)
class LinkSpec:
    """alpha-beta parameters of one link class."""

    name: str
    latency_s: float  # alpha
    bandwidth: float  # beta^-1, bytes/s (effective, not marketing peak)
    duplex: bool = True  # full-duplex links carry both directions concurrently

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        if self.latency_s < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency_s}")

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended alpha + n/B cost of a single message."""
        return self.latency_s + nbytes / self.bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """Per-node composition: sockets, GPUs, and intra-node link classes."""

    name: str
    gpu: GpuSpec
    cpu: CpuSpec
    gpus_per_node: int = 4
    sockets: int = 2
    nvlink_gpu_gpu: LinkSpec = field(
        default_factory=lambda: LinkSpec("nvlink2-p2p", 1.8e-6, 62.0 * GB)
    )
    nvlink_gpu_cpu: LinkSpec = field(
        default_factory=lambda: LinkSpec("nvlink2-cpu", 1.8e-6, 58.0 * GB)
    )
    xbus_cpu_cpu: LinkSpec = field(
        default_factory=lambda: LinkSpec("x-bus", 0.9e-6, 50.0 * GB)
    )
    pcie_cpu_hca: LinkSpec = field(
        default_factory=lambda: LinkSpec("pcie-hca", 0.9e-6, 14.0 * GB)
    )
    # cudaMemcpy to *pageable* host memory (the MPI shared-memory staging
    # region is pageable): the driver double-buffers through internal pinned
    # buffers, capping throughput far below NVLink.  This is the mechanism
    # that makes the non-IPC intra-node path slow.  8.0 GB/s back-solves
    # from the paper's Table I default allreduce time (~72 ms/step for the
    # 172 MB gradient set on 4 GPUs) on the NVLink-attached Power9.
    pageable_copy_bandwidth: float = 8.0 * GB
    # Concurrent staging copies a node sustains before they serialize
    # (copy-engine/DRAM concurrency limit shared by all ranks on the node).
    staging_engines: int = 2

    def __post_init__(self) -> None:
        check_positive("pageable_copy_bandwidth", self.pageable_copy_bandwidth)
        if self.staging_engines < 1:
            raise ConfigError("staging_engines must be >= 1")
        if self.gpus_per_node < 1:
            raise ConfigError("gpus_per_node must be >= 1")
        if self.sockets not in (1, 2):
            raise ConfigError("only 1- or 2-socket nodes are modelled")
        if self.gpus_per_node % self.sockets != 0:
            raise ConfigError("gpus_per_node must divide evenly across sockets")

    @property
    def gpus_per_socket(self) -> int:
        return self.gpus_per_node // self.sockets


@dataclass(frozen=True)
class ClusterSpec:
    """Whole-system composition: nodes plus the inter-node fabric."""

    name: str
    node: NodeSpec
    max_nodes: int
    ib: LinkSpec = field(
        default_factory=lambda: LinkSpec("ib-edr", 1.5e-6, 12.2 * GB)
    )
    # Fat-tree with full bisection bandwidth => no core over-subscription,
    # but >1 models tapered networks.
    oversubscription: float = 1.0
    # Nodes sharing one leaf (TOR) switch: the granularity of correlated
    # switch-failure domains.  The core stays non-blocking for performance
    # modelling; this only shapes fault blast radii (see repro.faults).
    nodes_per_switch: int = 2

    def __post_init__(self) -> None:
        check_positive("max_nodes", self.max_nodes)
        check_positive("oversubscription", self.oversubscription)
        if self.nodes_per_switch < 1:
            raise ConfigError(
                f"nodes_per_switch must be >= 1, got {self.nodes_per_switch}"
            )

    def with_nodes(self, max_nodes: int) -> "ClusterSpec":
        return replace(self, max_nodes=max_nodes)


V100_16GB = GpuSpec(
    name="Tesla V100-SXM2-16GB",
    memory_bytes=16 * GIB,
    peak_fp32_flops=15.7e12,
    hbm_bandwidth=900.0 * GB,
)

POWER9 = CpuSpec(
    name="IBM Power9 (22c)",
    cores=22,
    memory_bytes=128 * GIB,
    memcpy_bandwidth=24.0 * GB,
    reduce_flops=150.0e9,
)

_LASSEN_NODE = NodeSpec(name="lassen-node", gpu=V100_16GB, cpu=POWER9)

LASSEN = ClusterSpec(name="lassen", node=_LASSEN_NODE, max_nodes=792)

_LONGHORN_NODE = NodeSpec(name="longhorn-node", gpu=V100_16GB, cpu=POWER9)

LONGHORN = ClusterSpec(name="longhorn", node=_LONGHORN_NODE, max_nodes=96)

# An x86 DGX-1V-like system for cross-architecture studies: 8 V100s per
# node in two quads, PCIe-attached CPUs (no NVLink-to-CPU), slower pageable
# copies than Power9's NVLink-attached memory.
XEON_DGX = CpuSpec(
    name="Xeon E5-2698v4",
    cores=20,
    memory_bytes=256 * GIB,
    memcpy_bandwidth=18.0 * GB,
    reduce_flops=120.0e9,
)

_DGX1V_NODE = NodeSpec(
    name="dgx1v-node",
    gpu=V100_16GB,
    cpu=XEON_DGX,
    gpus_per_node=8,
    sockets=2,
    nvlink_gpu_cpu=LinkSpec("pcie-gpu", 1.4e-6, 11.0 * GB),  # PCIe x16 gen3
    xbus_cpu_cpu=LinkSpec("qpi", 1.0e-6, 19.0 * GB),
    pageable_copy_bandwidth=5.5 * GB,
)

DGX1V = ClusterSpec(name="dgx1v", node=_DGX1V_NODE, max_nodes=64)
