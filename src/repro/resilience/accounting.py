"""Time-to-solution accounting under faults.

Synchronous data-parallel training under failures spends wall time in five
distinguishable buckets, and recovery tuning is the art of trading them
against each other:

* **productive** — steps whose updates survive into the final model;
* **checkpoint overhead** — snapshot I/O charged to the critical path
  (more frequent checkpoints shrink lost work but grow this bucket);
* **detection** — the hung-collective stall between a rank dying and the
  watchdog declaring it (heartbeat timeout + probe ladder);
* **lost work** — productive time since the last checkpoint, discarded
  and replayed on restart (zero under shrink-and-continue);
* **recovery** — checkpoint read-back plus ring re-formation per
  restart/regrow event.

:class:`RecoveryAccounting` accumulates the buckets during a run; its
payload is JSON-encodable so it travels through the perf result cache and
parallel sweep merge unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryAccounting:
    """Mutable cost ledger, one per training/simulation run."""

    productive_s: float = 0.0
    checkpoint_s: float = 0.0
    detection_s: float = 0.0
    lost_work_s: float = 0.0
    recovery_s: float = 0.0

    checkpoint_saves: int = 0
    detections: int = 0
    restarts: int = 0
    lost_steps: int = 0
    blacklisted_ranks: list[int] = field(default_factory=list)
    regrown_ranks: list[int] = field(default_factory=list)

    # -- accumulation ------------------------------------------------------------
    def note_productive(self, seconds: float) -> None:
        self.productive_s += seconds

    def note_checkpoint(self, cost: float) -> None:
        self.checkpoint_s += cost
        self.checkpoint_saves += 1

    def note_detection(self, latency: float) -> None:
        self.detection_s += latency
        self.detections += 1

    def note_lost_work(self, seconds: float, steps: int = 0) -> None:
        self.lost_work_s += seconds
        self.lost_steps += steps

    def note_restart(self, cost: float) -> None:
        self.recovery_s += cost
        self.restarts += 1

    def note_blacklist(self, rank: int) -> None:
        self.blacklisted_ranks.append(rank)

    def note_regrow(self, rank: int, cost: float) -> None:
        self.regrown_ranks.append(rank)
        self.recovery_s += cost

    # -- derived -----------------------------------------------------------------
    @property
    def overhead_s(self) -> float:
        """Everything that is not productive step time."""
        return (
            self.checkpoint_s + self.detection_s + self.lost_work_s
            + self.recovery_s
        )

    @property
    def time_to_solution_s(self) -> float:
        return self.productive_s + self.overhead_s

    @property
    def goodput(self) -> float:
        """Fraction of wall time spent on surviving work (1.0 fault-free)."""
        total = self.time_to_solution_s
        return self.productive_s / total if total > 0 else 1.0

    # -- serialization -----------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-encodable form (cache/parallel-merge safe)."""
        return {
            "productive_s": self.productive_s,
            "checkpoint_s": self.checkpoint_s,
            "detection_s": self.detection_s,
            "lost_work_s": self.lost_work_s,
            "recovery_s": self.recovery_s,
            "time_to_solution_s": self.time_to_solution_s,
            "goodput": self.goodput,
            "checkpoint_saves": self.checkpoint_saves,
            "detections": self.detections,
            "restarts": self.restarts,
            "lost_steps": self.lost_steps,
            "blacklisted_ranks": list(self.blacklisted_ranks),
            "regrown_ranks": list(self.regrown_ranks),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RecoveryAccounting":
        acct = cls(
            productive_s=payload["productive_s"],
            checkpoint_s=payload["checkpoint_s"],
            detection_s=payload["detection_s"],
            lost_work_s=payload["lost_work_s"],
            recovery_s=payload["recovery_s"],
            checkpoint_saves=payload["checkpoint_saves"],
            detections=payload["detections"],
            restarts=payload["restarts"],
            lost_steps=payload.get("lost_steps", 0),
            blacklisted_ranks=list(payload.get("blacklisted_ranks", [])),
            regrown_ranks=list(payload.get("regrown_ranks", [])),
        )
        return acct

    def lines(self) -> list[str]:
        """Human-readable itemization for reports and the CLI."""
        return [
            f"time to solution   {self.time_to_solution_s:10.3f} s "
            f"(goodput {self.goodput:.1%})",
            f"  productive       {self.productive_s:10.3f} s",
            f"  checkpointing    {self.checkpoint_s:10.3f} s "
            f"({self.checkpoint_saves} save(s))",
            f"  detection        {self.detection_s:10.3f} s "
            f"({self.detections} failure(s))",
            f"  lost work        {self.lost_work_s:10.3f} s "
            f"({self.lost_steps} step(s) replayed)",
            f"  recovery         {self.recovery_s:10.3f} s "
            f"({self.restarts} restart(s), "
            f"{len(self.regrown_ranks)} regrow(s), "
            f"{len(self.blacklisted_ranks)} blacklist(s))",
        ]
