"""Checkpoint orchestration: cadence, atomicity, integrity, retention.

:class:`CheckpointPolicy` decides *when* to snapshot and what the
simulated I/O costs — charged to the training critical path — are.
:class:`CheckpointManager` owns a checkpoint directory and provides the
guarantees a restart path needs:

* **atomic writes** — serialize to a temp file, fsync-equivalent rename
  into place, checksum sidecar renamed last; a crash mid-write leaves the
  previous checkpoint intact and the torn file unreferenced;
* **corruption detection** — every file carries a SHA-256 content
  checksum; :meth:`CheckpointManager.restore` walks newest → oldest and
  silently falls back past any checkpoint whose bytes no longer match;
* **retention/rotation** — only the newest ``keep_last`` checkpoints are
  kept on disk (plus whatever is mid-rotation), bounding footprint.

The serialization format is :mod:`repro.trainer.checkpoint` — model plus
optimizer plus LR-schedule state, so restarts resume the exact trajectory.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from dataclasses import dataclass

from repro.errors import CheckpointError, ConfigError

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


@dataclass(frozen=True)
class CheckpointPolicy:
    """Cadence and simulated storage costs of checkpointing."""

    interval_steps: int = 10
    keep_last: int = 2
    #: effective per-job bandwidth to the parallel filesystem.  Lassen's
    #: GPFS sustains far more in aggregate; a single job's checkpoint
    #: stream sees a few GB/s.
    write_bandwidth: float = 2e9
    read_bandwidth: float = 4e9
    #: fixed per-operation latency (metadata, open/close, rename)
    base_latency_s: float = 0.05

    def __post_init__(self) -> None:
        if self.interval_steps < 1:
            raise ConfigError(
                f"interval_steps must be >= 1, got {self.interval_steps}"
            )
        if self.keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ConfigError("checkpoint bandwidths must be > 0")
        if self.base_latency_s < 0:
            raise ConfigError(
                f"base_latency_s must be >= 0, got {self.base_latency_s}"
            )

    def due(self, steps_completed: int) -> bool:
        """True when a snapshot is scheduled after this many steps."""
        return steps_completed > 0 and steps_completed % self.interval_steps == 0

    def write_cost(self, nbytes: int) -> float:
        """Simulated wall time to persist ``nbytes`` (charged to the step)."""
        return self.base_latency_s + nbytes / self.write_bandwidth

    def read_cost(self, nbytes: int) -> float:
        """Simulated wall time to read ``nbytes`` back during recovery."""
        return self.base_latency_s + nbytes / self.read_bandwidth


def file_checksum(path: str) -> str:
    """SHA-256 of a file's bytes."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


class CheckpointManager:
    """Rotating, checksummed checkpoint store for one training job."""

    def __init__(self, directory: str, policy: CheckpointPolicy | None = None):
        self.directory = directory
        self.policy = policy or CheckpointPolicy()
        self.saves = 0
        self.corrupt_detected = 0
        os.makedirs(directory, exist_ok=True)

    # -- paths -------------------------------------------------------------------
    def path_for(self, steps_completed: int) -> str:
        if steps_completed < 0:
            raise ConfigError(
                f"steps_completed must be >= 0, got {steps_completed}"
            )
        return os.path.join(self.directory, f"ckpt-{steps_completed:08d}.npz")

    def available(self) -> list[tuple[int, str]]:
        """(steps_completed, path) of every on-disk checkpoint, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _CKPT_RE.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, name)))
        return sorted(found)

    # -- write path --------------------------------------------------------------
    def save(
        self,
        model,
        *,
        steps_completed: int,
        optimizer=None,
        scheduler=None,
    ) -> tuple[str, float]:
        """Snapshot atomically; returns (path, simulated write cost).

        The npz is serialized to a temp file in the same directory, its
        checksum sidecar written first, then both renamed into place —
        readers either see a complete (file, checksum) pair or the
        previous checkpoint.
        """
        # imported here, not at module top: repro.trainer's package import
        # pulls in the trainer loop, which itself uses this module
        from repro.trainer.checkpoint import save_checkpoint

        path = self.path_for(steps_completed)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-ckpt-", suffix=".npz"
        )
        os.close(fd)
        try:
            save_checkpoint(
                model, tmp, step=steps_completed,
                optimizer=optimizer, scheduler=scheduler,
            )
            digest = file_checksum(tmp)
            fd2, tmp_sum = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-sum-", suffix=".sha256"
            )
            with os.fdopen(fd2, "w", encoding="utf-8") as fh:
                fh.write(digest + "\n")
            os.replace(tmp_sum, path + ".sha256")
            os.replace(tmp, path)
        except BaseException:
            for stale in (tmp,):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
            raise
        self.saves += 1
        cost = self.policy.write_cost(os.path.getsize(path))
        self._rotate()
        return path, cost

    def _rotate(self) -> None:
        entries = self.available()
        for steps_completed, path in entries[: -self.policy.keep_last]:
            for stale in (path, path + ".sha256"):
                try:
                    os.unlink(stale)
                except OSError:
                    pass

    # -- integrity ---------------------------------------------------------------
    def verify(self, path: str) -> bool:
        """True iff the checkpoint's bytes match its recorded checksum."""
        try:
            with open(path + ".sha256", "r", encoding="utf-8") as fh:
                expected = fh.read().strip()
            return file_checksum(path) == expected
        except OSError:
            return False

    def latest_valid(self) -> tuple[int, str] | None:
        """Newest checkpoint that passes verification (falls back past
        corrupt or torn files, counting each)."""
        for steps_completed, path in reversed(self.available()):
            if self.verify(path):
                return steps_completed, path
            self.corrupt_detected += 1
        return None

    # -- read path ---------------------------------------------------------------
    def restore(
        self, model, *, optimizer=None, scheduler=None
    ) -> tuple[int, float]:
        """Load the newest valid checkpoint; returns (steps_completed,
        simulated read cost).  Raises :class:`CheckpointError` when no
        valid checkpoint survives."""
        from repro.trainer.checkpoint import load_checkpoint

        entry = self.latest_valid()
        if entry is None:
            raise CheckpointError(
                f"no valid checkpoint in {self.directory!r} "
                f"({self.corrupt_detected} corrupt)"
            )
        steps_completed, path = entry
        load_checkpoint(model, path, optimizer=optimizer, scheduler=scheduler)
        return steps_completed, self.policy.read_cost(os.path.getsize(path))
