"""Recovery policies: what the job does once a fault is detected.

A :class:`RecoveryPolicy` is a frozen, digest-able description of the
job's elastic behaviour — it participates in
:func:`repro.perf.digest.canonical_digest`, so cached sweep results can
never be reused across different recovery configurations.

Three escalation levers, composable:

* **restart** — reload the last valid checkpoint on the shrunk world and
  replay the lost steps (elastic-Horovod-style restart).  Off, the job
  shrinks and continues from live state (losing the dead rank's replica
  but no optimizer history — the survivors are in sync).
* **blacklist_after** — evict a rank after this many straggler offenses
  (its compute factor exceeded the supervisor's threshold), before it
  drags every synchronous step.  ``0`` disables blacklisting.
* **regrow** — when a failed rank's outage window ends
  (:class:`~repro.faults.RankFailure` with ``down_s``), re-admit it:
  clone the survivors' model/optimizer state onto a fresh replica and
  re-form the ring at the old world size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.resilience.checkpoint import CheckpointPolicy
from repro.resilience.supervisor import HeartbeatConfig


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the job responds to detected failures and chronic stragglers."""

    restart: bool = True
    blacklist_after: int = 0
    regrow: bool = False
    #: fixed re-initialization cost per restart / regrow event (process
    #: respawn, NCCL/MPI ring rebuild, parameter re-broadcast)
    restart_overhead_s: float = 2.0
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)

    def __post_init__(self) -> None:
        if self.blacklist_after < 0:
            raise ConfigError(
                f"blacklist_after must be >= 0, got {self.blacklist_after}"
            )
        if self.restart_overhead_s < 0:
            raise ConfigError(
                f"restart_overhead_s must be >= 0, got {self.restart_overhead_s}"
            )


#: shrink-and-continue without checkpoint replay — PR 1's old SHRINK
#: behaviour, expressed in the new policy vocabulary
SHRINK_CONTINUE = RecoveryPolicy(restart=False)

#: the default elastic policy: checkpoint/restart on a shrunk world
RESTART_FROM_CHECKPOINT = RecoveryPolicy(restart=True)
