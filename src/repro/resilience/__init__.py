"""Elastic recovery: faults become survivable, costed events.

PR 1's :mod:`repro.faults` can kill ranks, flap links, and slow compute —
but the only responses were shrink-and-hope or abort, and checkpoints
dropped optimizer state.  This package closes the loop, modeled on
elastic Horovod's recovery flow:

* :class:`CheckpointPolicy` / :class:`CheckpointManager` — periodic
  atomic snapshots of model **and** optimizer/LR-schedule state, with
  content checksums, retention rotation, and simulated I/O cost charged
  to the training critical path (:mod:`repro.resilience.checkpoint`);
* :class:`HeartbeatConfig` / :class:`HeartbeatSupervisor` — watchdog
  detection of dead and chronically-straggling ranks with deterministic
  timeout + exponential-backoff probe latency
  (:mod:`repro.resilience.supervisor`);
* :class:`RecoveryPolicy` — restart-from-checkpoint on a shrunk world,
  blacklist after repeated straggler offenses, elastic regrow when an
  outage window ends (:mod:`repro.resilience.policy`);
* :class:`RecoveryAccounting` — time-to-solution decomposition:
  productive time, checkpoint overhead, detection latency, lost work,
  recovery cost (:mod:`repro.resilience.accounting`).

Consumed by :class:`~repro.trainer.DistributedTrainer` (functional runs)
and :class:`~repro.core.ScalingStudy` (paper-scale performance runs);
exposed via ``python -m repro resilience``.
"""

from repro.resilience.accounting import RecoveryAccounting
from repro.resilience.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    file_checksum,
)
from repro.resilience.policy import (
    RESTART_FROM_CHECKPOINT,
    SHRINK_CONTINUE,
    RecoveryPolicy,
)
from repro.resilience.supervisor import (
    Detection,
    DomainDetection,
    HeartbeatConfig,
    HeartbeatSupervisor,
)

__all__ = [
    "CheckpointPolicy",
    "CheckpointManager",
    "file_checksum",
    "HeartbeatConfig",
    "HeartbeatSupervisor",
    "Detection",
    "DomainDetection",
    "RecoveryPolicy",
    "RecoveryAccounting",
    "SHRINK_CONTINUE",
    "RESTART_FROM_CHECKPOINT",
]
