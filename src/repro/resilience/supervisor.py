"""Heartbeat/watchdog supervision of rank liveness.

Every rank posts a heartbeat each ``interval_s`` of simulated time; the
supervisor suspects a rank after ``timeout_s`` of silence and then probes
it with exponential backoff before declaring it dead.  Detection latency
is therefore a *pure function* of the failure time and the config — the
watchdog adds no randomness, so chaos runs stay byte-reproducible.

The supervisor also tracks chronic stragglers: each step whose compute
factor exceeds ``straggler_threshold`` counts one offense, and the
recovery policy may blacklist a rank after repeated offenses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class HeartbeatConfig:
    """Watchdog timing: cadence, suspicion timeout, probe backoff."""

    interval_s: float = 0.1
    timeout_s: float = 0.25
    probes: int = 3
    probe_timeout_s: float = 0.05
    backoff_factor: float = 2.0
    #: compute factor at or above which a step counts as a straggler offense
    straggler_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError(f"interval_s must be > 0, got {self.interval_s}")
        if self.timeout_s < 0 or self.probe_timeout_s < 0:
            raise ConfigError("heartbeat timeouts must be >= 0")
        if self.probes < 0:
            raise ConfigError(f"probes must be >= 0, got {self.probes}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.straggler_threshold <= 1.0:
            raise ConfigError(
                "straggler_threshold must be > 1 (1.0 would flag every step), "
                f"got {self.straggler_threshold}"
            )

    def probe_time(self) -> float:
        """Total wall time of the full probe ladder (exponential backoff)."""
        return sum(
            self.probe_timeout_s * self.backoff_factor**k
            for k in range(self.probes)
        )

    def declared_at(self, fail_time: float) -> float:
        """When a failure at ``fail_time`` is *declared* dead.

        The last heartbeat lands on the beat boundary at or before the
        failure; suspicion fires ``timeout_s`` later, then the probe
        ladder runs to exhaustion.
        """
        last_beat = math.floor(fail_time / self.interval_s) * self.interval_s
        return last_beat + self.timeout_s + self.probe_time()

    def detection_latency(self, fail_time: float) -> float:
        """Seconds between the failure and its declaration."""
        return self.declared_at(fail_time) - fail_time


@dataclass(frozen=True)
class Detection:
    """One declared rank death."""

    rank: int
    fail_time: float
    declared_at: float

    @property
    def latency(self) -> float:
        return self.declared_at - self.fail_time


@dataclass(frozen=True)
class DomainDetection:
    """One declared *failure-domain* death: every rank the domain took
    down, declared atomically in a single detection window.

    ``domain`` is the injector's blast-radius label (``"node:2"``,
    ``"switch:1"``, ``"partition:0"``) or ``"rank:<r>"`` for an
    independent failure.  Correlated failures cost ONE detection window,
    not N staggered ones: the watchdog misses every member's heartbeat in
    the same interval and the probe ladder runs once per domain.
    """

    domain: str
    fail_time: float
    declared_at: float
    detections: tuple[Detection, ...]

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(d.rank for d in self.detections)

    @property
    def latency(self) -> float:
        return self.declared_at - self.fail_time


class HeartbeatSupervisor:
    """Tracks rank liveness and straggler offenses against an injector."""

    def __init__(self, ranks, injector, config: HeartbeatConfig | None = None):
        self.active = list(ranks)
        if not self.active:
            raise ConfigError("supervisor needs at least one rank")
        self.injector = injector
        self.config = config or HeartbeatConfig()
        self.offenses: dict[int, int] = {}
        self._declared: dict[int, float] = {}  # rank -> fail_time

    # -- death detection ---------------------------------------------------------
    def poll(self, now: float) -> list[Detection]:
        """Declare ranks whose failure time has passed; returns detections.

        The caller charges ``max(0, declared_at - now)`` of extra wait to
        its clock — detection may complete after the poll instant.
        """
        if self.injector is None:
            return []
        detections = []
        for rank in list(self.active):
            fail_time = self.injector.failure_time(rank)
            if fail_time is None or fail_time > now:
                continue
            down = self.injector.failure_down_s(rank)
            if down is not None and fail_time + down <= now:
                # outage window already over (readmitted rank, or a blip
                # shorter than the poll cadence): not declared dead
                continue
            declared = self.config.declared_at(fail_time)
            detection = Detection(rank, fail_time, declared)
            self.active.remove(rank)
            self._declared[rank] = fail_time
            self.injector.record(
                "heartbeat-miss", fail_time, rank=rank,
                detail=f"interval={self.config.interval_s:g}s",
            )
            self.injector.record(
                "rank-dead", declared, rank=rank,
                detail=f"latency={detection.latency:.4f}s "
                       f"probes={self.config.probes}",
            )
            detections.append(detection)
        return detections

    def poll_domains(self, now: float) -> list[DomainDetection]:
        """Like :meth:`poll`, but grouped by failure domain.

        Ranks felled by the same correlated fault (node failure, switch
        outage, partition) share a fail time and a domain label, so they
        are declared together — the caller charges one detection stall
        per group, off its *updated* clock, instead of N overlapping
        windows.  Independent failures form singleton groups keyed
        ``"rank:<r>"``.  Groups come back ordered by declaration time.
        """
        detections = self.poll(now)
        if not detections:
            return []
        groups: dict[tuple[str, float], list[Detection]] = {}
        for d in detections:
            domain = ""
            if self.injector is not None and hasattr(self.injector, "domain_of"):
                domain = self.injector.domain_of(d.rank)
            key = (domain or f"rank:{d.rank}", d.fail_time)
            groups.setdefault(key, []).append(d)
        out = []
        for (domain, fail_time), members in groups.items():
            members.sort(key=lambda d: d.rank)
            declared = max(d.declared_at for d in members)
            group = DomainDetection(domain, fail_time, declared, tuple(members))
            if len(members) > 1 and self.injector is not None:
                self.injector.record(
                    "domain-dead", declared,
                    detail=f"{domain} ranks={list(group.ranks)} "
                           f"latency={group.latency:.4f}s",
                )
            out.append(group)
        out.sort(key=lambda g: (g.declared_at, g.domain))
        return out

    # -- elastic regrow ----------------------------------------------------------
    def recovered(self, now: float) -> list[int]:
        """Previously-declared ranks whose outage window has ended."""
        back = []
        for rank, fail_time in list(self._declared.items()):
            down = self.injector.failure_down_s(rank) if self.injector else None
            if down is not None and fail_time + down <= now:
                del self._declared[rank]
                back.append(rank)
        return sorted(back)

    def readmit(self, rank: int) -> None:
        """Return a regrown rank to active supervision."""
        if rank not in self.active:
            self.active.append(rank)
            self.active.sort()

    # -- straggler offenses ------------------------------------------------------
    def note_compute(self, rank: int, factor: float, now: float) -> None:
        """Record one step's compute factor; counts offenses at/over the
        threshold."""
        if factor >= self.config.straggler_threshold:
            self.offenses[rank] = self.offenses.get(rank, 0) + 1
            if self.injector is not None:
                self.injector.record(
                    "straggler-offense", now, rank=rank,
                    detail=f"factor={factor:.3f} "
                           f"count={self.offenses[rank]}",
                )

    def over_limit(self, limit: int) -> list[int]:
        """Active ranks with at least ``limit`` offenses (blacklist set)."""
        if limit <= 0:
            return []
        return sorted(
            r for r in self.active if self.offenses.get(r, 0) >= limit
        )

    def drop(self, rank: int) -> None:
        """Remove a blacklisted rank from supervision (no regrow)."""
        if rank in self.active:
            self.active.remove(rank)
        self.offenses.pop(rank, None)
