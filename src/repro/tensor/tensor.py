"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a ``numpy`` array plus the closure needed to
propagate gradients to its parents.  The graph is built eagerly by the op
functions in :mod:`repro.tensor.ops`; ``backward()`` runs a topological
sweep accumulating ``.grad`` arrays.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional

import numpy as np

from repro.errors import GradError, TensorError

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / optimizer updates)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


class Tensor:
    """An array with optional gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        _parents: tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            raise TensorError("cannot wrap a Tensor in a Tensor")
        arr = np.asarray(data)
        if arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # -- constructors -------------------------------------------------------
    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape, dtype=np.float32), requires_grad)

    @classmethod
    def ones(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape, dtype=np.float32), requires_grad)

    @classmethod
    def randn(
        cls, *shape: int, rng: np.random.Generator | None = None,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng or np.random.default_rng()
        return cls(rng.standard_normal(shape).astype(np.float32), requires_grad)

    # -- inspection ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.size * self.data.itemsize

    def item(self) -> float:
        if self.data.size != 1:
            raise TensorError(f"item() on tensor of size {self.data.size}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    # -- autograd -----------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        if grad.shape != self.data.shape:
            raise GradError(
                f"gradient shape {grad.shape} != tensor shape {self.data.shape}"
                + (f" (tensor {self.name!r})" if self.name else "")
            )
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless grad given)."""
        if not self.requires_grad:
            raise GradError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.accumulate_grad(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- operator sugar (implemented in ops.basic; bound at import) -----------------
    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        label = f" {self.name!r}" if self.name else ""
        return f"<Tensor{label} shape={self.shape} dtype={self.dtype}{grad_flag}>"

    def __len__(self) -> int:
        return len(self.data)


def as_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def collect_parents(*tensors: Tensor) -> tuple[Tensor, ...]:
    """Parents tuple for a new graph node (empty if grad is globally off)."""
    if not _grad_enabled:
        return ()
    return tuple(t for t in tensors if t.requires_grad)


def result_requires_grad(*tensors: Tensor) -> bool:
    return _grad_enabled and any(t.requires_grad for t in tensors)


def iterate_graph(root: Tensor) -> Iterable[Tensor]:
    """Yield all nodes reachable from ``root`` (debugging helper)."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node._parents)
