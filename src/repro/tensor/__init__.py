"""Minimal NumPy-backed deep-learning framework (the "PyTorch" substrate).

Provides exactly what EDSR-class models need: a reverse-mode autograd
``Tensor``, convolution/pixel-shuffle/activation/loss ops, an ``nn.Module``
hierarchy, and SGD/Adam optimizers with LR schedules.  Everything runs on
plain ``numpy`` so training is *real* (gradients, convergence, PSNR) even
though the hardware underneath is simulated.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor import nn
from repro.tensor import optim

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "nn", "optim"]
