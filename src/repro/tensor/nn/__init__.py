"""Neural-network module system."""

from repro.tensor.nn.module import Module, Parameter
from repro.tensor.nn.layers import (
    Conv2d,
    Linear,
    ReLU,
    LeakyReLU,
    Sequential,
    PixelShuffle,
    BatchNorm2d,
    Identity,
    Flatten,
)
from repro.tensor.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Conv2d",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "PixelShuffle",
    "BatchNorm2d",
    "Identity",
    "Flatten",
    "init",
]
