"""Standard layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.tensor import functional as F
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Conv2d(Module):
    """2-D convolution with 'same'-style integer padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels < 1 or out_channels < 1 or kernel_size < 1:
            raise ConfigError("Conv2d dimensions must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None
        # Per-layer im2col scratch: shapes repeat every step, so the patch
        # matrix is written in place instead of reallocated.  Per-layer
        # ownership keeps deferred backward closures valid (each layer has
        # one forward/backward in flight; see ConvWorkspace).
        self._workspace = F.ConvWorkspace()

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            workspace=self._workspace,
        )


class Linear(Module):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, self.weight.transpose())
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.reshape(x, (x.shape[0], -1))


class PixelShuffle(Module):
    """Sub-pixel convolution upsampler component (EDSR tail)."""

    def __init__(self, upscale_factor: int):
        super().__init__()
        if upscale_factor < 1:
            raise ConfigError(f"upscale_factor must be >= 1, got {upscale_factor}")
        self.upscale_factor = upscale_factor

    def forward(self, x: Tensor) -> Tensor:
        return F.pixel_shuffle(x, self.upscale_factor)


class BatchNorm2d(Module):
    """Batch normalization (SRResNet keeps it; EDSR's key edit removes it).

    Gradients treat the batch statistics as constants (the "frozen
    statistics" approximation).  This is exact in eval mode and a standard
    simplification in training mode; the SRResNet baseline is compared on
    throughput/architecture, not BN-gradient fidelity.
    """

    def __init__(self, num_features: int, *, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expects (N,{self.num_features},H,W), got {x.shape}"
            )
        if self.training:
            batch_mean = x.data.mean(axis=(0, 2, 3))
            batch_var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            ).astype(np.float32)
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var
        mean_t = Tensor(mean.reshape(1, -1, 1, 1))
        std_t = Tensor(np.sqrt(var + self.eps).reshape(1, -1, 1, 1))
        normalized = F.div(F.sub(x, mean_t), std_t)
        scale = F.reshape(self.weight, (1, -1, 1, 1))
        shift = F.reshape(self.bias, (1, -1, 1, 1))
        return F.add(F.mul(normalized, scale), shift)


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self._seq = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._seq:
            x = module(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self._seq[index]

    def __len__(self) -> int:
        return len(self._seq)
