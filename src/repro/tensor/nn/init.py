"""Weight initializers (deterministic given an RNG)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # conv (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ConfigError(f"cannot infer fan for shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, *, nonlinearity: str = "relu"
) -> np.ndarray:
    """He initialization (what the EDSR reference implementation uses)."""
    fan_in, _ = _fan_in_out(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / np.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
