"""``Module``/``Parameter`` hierarchy (PyTorch-style, minimal)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TensorError
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: tracks sub-modules and parameters by attribute assignment."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # -- traversal ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted_name, parameter) in deterministic registration order."""
        for key, param in self._parameters.items():
            yield (f"{prefix}{key}", param)
        for key, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for key, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{key}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- train/eval -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise TensorError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise TensorError(
                    f"shape mismatch for {name!r}: {param.data.shape} vs "
                    f"{state[name].shape}"
                )
            param.data = state[name].astype(np.float32, copy=True)

    # -- call protocol --------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} params={self.num_parameters():,}>"
