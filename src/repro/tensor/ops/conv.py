"""Convolution, padding, and pixel-shuffle (the EDSR upsampler primitive).

``conv2d`` uses im2col + GEMM: the transformation numpy executes fastest
and the same lowering real frameworks use on GPUs, so the FLOP model in
:mod:`repro.models.costing` mirrors what actually runs here.

Layout is NCHW throughout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor, collect_parents, result_requires_grad


class ConvWorkspace:
    """Reusable im2col scratch buffers, keyed by (shape, dtype).

    The im2col patch matrix is the largest allocation of a conv layer's
    forward pass and its shape is fixed across training steps, so each
    :class:`~repro.tensor.nn.layers.Conv2d` owns one workspace and the
    buffer is allocated once and rewritten in place every step.

    Validity condition: the buffer is overwritten by the next forward
    call, and the backward closure reads it for the weight gradient — so
    a workspace-backed layer supports **one forward/backward in flight at
    a time** (the training pattern).  Layers never share a workspace.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[tuple[int, ...], np.dtype], np.ndarray] = {}

    def buffer(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


def _im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    workspace: ConvWorkspace | None = None,
) -> tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix.

    With a workspace the patch copy lands in a reused buffer instead of a
    fresh allocation (the gather itself is unavoidable: the GEMM needs a
    contiguous operand).
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # -> (N, out_h, out_w, C, kh, kw) then flatten the window
    windowed = patches.transpose(0, 2, 3, 1, 4, 5)
    if workspace is None:
        return windowed.reshape(n, out_h, out_w, c * kh * kw), out_h, out_w
    out = workspace.buffer((n, out_h, out_w, c, kh, kw), x.dtype)
    np.copyto(out, windowed)
    return out.reshape(n, out_h, out_w, c * kh * kw), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add the patch matrix back to input layout (grad of im2col)."""
    n, c, h, w = x_shape
    x_grad = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            x_grad[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += cols[
                :, :, :, :, i, j
            ]
    return x_grad


def pad2d(x, padding: int, value: float = 0.0) -> Tensor:
    """Zero (or constant) padding on the two spatial dims of NCHW."""
    x = as_tensor(x)
    if padding == 0:
        return x
    if padding < 0:
        raise ShapeError(f"padding must be >= 0, got {padding}")
    p = padding
    out_data = np.pad(
        x.data, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=value
    )
    if not result_requires_grad(x):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        x.accumulate_grad(grad[:, :, p:-p, p:-p])

    return Tensor(out_data, True, _parents=collect_parents(x), _backward=backward)


def conv2d(
    x,
    weight,
    bias=None,
    *,
    stride: int = 1,
    padding: int = 0,
    workspace: ConvWorkspace | None = None,
) -> Tensor:
    """2-D cross-correlation: x (N,C,H,W), weight (F,C,kh,kw), bias (F,).

    ``workspace`` reuses the im2col buffer across calls; see
    :class:`ConvWorkspace` for the one-in-flight validity condition.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError(
            f"conv2d expects 4-D input/weight, got {x.shape} and {weight.shape}"
        )
    f, c_w, kh, kw = weight.shape
    if x.shape[1] != c_w:
        raise ShapeError(
            f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {c_w}"
        )
    x_padded = pad2d(x, padding) if padding else x
    xp = x_padded.data
    n, c, h, w = xp.shape
    if h < kh or w < kw:
        raise ShapeError(f"input {xp.shape} smaller than kernel ({kh},{kw})")
    cols, out_h, out_w = _im2col(xp, kh, kw, stride, workspace)
    w_mat = weight.data.reshape(f, c * kh * kw)
    out_data = cols @ w_mat.T  # (N, out_h, out_w, F)
    if bias is not None:
        bias = as_tensor(bias)
        out_data = out_data + bias.data
    out_data = np.ascontiguousarray(out_data.transpose(0, 3, 1, 2))

    if not result_requires_grad(x, weight, *( [bias] if bias is not None else [] )):
        return Tensor(out_data)

    cols_flat = cols.reshape(-1, c * kh * kw)

    def backward(grad: np.ndarray) -> None:
        g = grad.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*oh*ow, F)
        if weight.requires_grad:
            gw = (g.T @ cols_flat).reshape(f, c, kh, kw)
            weight.accumulate_grad(gw)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g.sum(axis=0))
        if x_padded.requires_grad or x.requires_grad:
            gcols = g @ w_mat  # (N*oh*ow, C*kh*kw)
            gx_padded = _col2im(
                gcols.reshape(n, out_h, out_w, c * kh * kw),
                xp.shape, kh, kw, stride, out_h, out_w,
            )
            if padding:
                # accumulate into the pad node; the topological sweep in
                # Tensor.backward() propagates it on to ``x``
                x_padded.accumulate_grad(gx_padded)
            else:
                x.accumulate_grad(gx_padded)

    parents = collect_parents(
        x if padding == 0 else x_padded,
        weight,
        *([bias] if bias is not None else []),
    )
    return Tensor(out_data, True, _parents=parents, _backward=backward)


def pixel_shuffle(x, upscale_factor: int) -> Tensor:
    """(N, C*r^2, H, W) -> (N, C, H*r, W*r) sub-pixel rearrangement."""
    x = as_tensor(x)
    r = upscale_factor
    n, c_r2, h, w = x.shape
    if c_r2 % (r * r) != 0:
        raise ShapeError(
            f"pixel_shuffle: channels {c_r2} not divisible by r^2={r * r}"
        )
    c = c_r2 // (r * r)
    out_data = (
        x.data.reshape(n, c, r, r, h, w)
        .transpose(0, 1, 4, 2, 5, 3)
        .reshape(n, c, h * r, w * r)
    )
    if not result_requires_grad(x):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g = (
            grad.reshape(n, c, h, r, w, r)
            .transpose(0, 1, 3, 5, 2, 4)
            .reshape(n, c_r2, h, w)
        )
        x.accumulate_grad(g)

    return Tensor(out_data, True, _parents=collect_parents(x), _backward=backward)
