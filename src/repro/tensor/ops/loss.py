"""Loss functions.

EDSR trains with L1 (the paper's reference [5] found it outperforms L2 for
SR); MSE is provided for SRCNN/SRResNet baselines and PSNR computation;
cross-entropy for the ResNet-50 classification comparison model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor, collect_parents, result_requires_grad
from repro.tensor.ops.basic import abs_, mean, sub


def mse_loss(prediction, target) -> Tensor:
    prediction, target = as_tensor(prediction), as_tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    diff = sub(prediction, target)
    return mean(diff * diff)


def l1_loss(prediction, target) -> Tensor:
    prediction, target = as_tensor(prediction), as_tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"l1_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    return mean(abs_(sub(prediction, target)))


def cross_entropy(logits, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer labels; logits (N, K)."""
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, K) logits, got {logits.shape}")
    labels = np.asarray(labels)
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ShapeError(f"labels shape {labels.shape} != ({n},)")
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss_value = -log_probs[np.arange(n), labels].mean()
    if not result_requires_grad(logits):
        return Tensor(loss_value)

    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(n), labels] -= 1.0
        logits.accumulate_grad(g * (grad / n))

    return Tensor(
        loss_value, True, _parents=collect_parents(logits), _backward=backward
    )
