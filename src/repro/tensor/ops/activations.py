"""Activation functions."""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, as_tensor, collect_parents, result_requires_grad


def relu(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.maximum(a.data, 0)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (a.data > 0))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    out_data = np.where(a.data > 0, a.data, negative_slope * a.data)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * np.where(a.data > 0, 1.0, negative_slope).astype(np.float32))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * out_data * (1 - out_data))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * (1 - out_data * out_data))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        a.accumulate_grad(out_data * (grad - dot))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)
