"""Elementwise, reduction, and shape ops with reverse-mode gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, TensorError
from repro.tensor.tensor import (
    Tensor,
    as_tensor,
    collect_parents,
    result_requires_grad,
)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    return grad


def _binary(a, b, fwd, da, db) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = fwd(a.data, b.data)
    if not result_requires_grad(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(da(grad, a.data, b.data, out_data), a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(db(grad, a.data, b.data, out_data), b.shape))

    return Tensor(out_data, True, _parents=collect_parents(a, b), _backward=backward)


def add(a, b) -> Tensor:
    return _binary(a, b, np.add, lambda g, x, y, o: g, lambda g, x, y, o: g)


def sub(a, b) -> Tensor:
    return _binary(a, b, np.subtract, lambda g, x, y, o: g, lambda g, x, y, o: -g)


def mul(a, b) -> Tensor:
    return _binary(a, b, np.multiply, lambda g, x, y, o: g * y, lambda g, x, y, o: g * x)


def div(a, b) -> Tensor:
    return _binary(
        a, b, np.divide,
        lambda g, x, y, o: g / y,
        lambda g, x, y, o: -g * x / (y * y),
    )


def pow_(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    out_data = a.data**exponent
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def neg(a) -> Tensor:
    a = as_tensor(a)
    out_data = -a.data
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(-grad)

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 1 or b.ndim < 1:
        raise ShapeError("matmul requires at least 1-D operands")
    out_data = a.data @ b.data
    if not result_requires_grad(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if b.ndim == 1:
                ga = np.outer(grad, b.data) if a.ndim == 2 else grad[..., None] * b.data
            else:
                ga = grad @ np.swapaxes(b.data, -1, -2)
            a.accumulate_grad(_unbroadcast(ga, a.shape) if ga.shape != a.shape else ga)
        if b.requires_grad:
            if a.ndim == 1:
                gb = np.outer(a.data, grad) if b.ndim == 2 else grad * a.data
            else:
                gb = np.swapaxes(a.data, -1, -2) @ grad
            b.accumulate_grad(_unbroadcast(gb, b.shape) if gb.shape != b.shape else gb)

    return Tensor(out_data, True, _parents=collect_parents(a, b), _backward=backward)


def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g = grad
        if axis is not None and not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            axes = tuple(ax % a.ndim for ax in axes)
            for ax in sorted(axes):
                g = np.expand_dims(g, ax)
        a.accumulate_grad(np.broadcast_to(g, a.shape).astype(np.float32))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = int(np.prod([a.shape[ax % a.ndim] for ax in axes]))
    return mul(sum_(a, axis=axis, keepdims=keepdims), 1.0 / count)


def reshape(a, *shape: int) -> Tensor:
    a = as_tensor(a)
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out_data = a.data.reshape(shape)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(grad.reshape(a.shape))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def transpose(a, axes: tuple[int, ...] | None = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    if not result_requires_grad(a):
        return Tensor(out_data)
    inverse = None if axes is None else tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(np.transpose(grad, inverse))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def concatenate(tensors: list, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise TensorError("concatenate of empty list")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not result_requires_grad(*tensors):
        return Tensor(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t.accumulate_grad(grad[tuple(index)])

    return Tensor(
        out_data, True, _parents=collect_parents(*tensors), _backward=backward
    )


def _unary(a, fwd, dfn) -> Tensor:
    a = as_tensor(a)
    out_data = fwd(a.data)
    if not result_requires_grad(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a.accumulate_grad(dfn(grad, a.data, out_data))

    return Tensor(out_data, True, _parents=collect_parents(a), _backward=backward)


def exp(a) -> Tensor:
    return _unary(a, np.exp, lambda g, x, o: g * o)


def log(a) -> Tensor:
    return _unary(a, np.log, lambda g, x, o: g / x)


def sqrt(a) -> Tensor:
    return _unary(a, np.sqrt, lambda g, x, o: g / (2 * o))


def abs_(a) -> Tensor:
    return _unary(a, np.abs, lambda g, x, o: g * np.sign(x))


def clip(a, low: float, high: float) -> Tensor:
    return _unary(
        a,
        lambda x: np.clip(x, low, high),
        lambda g, x, o: g * ((x >= low) & (x <= high)),
    )


# -- bind operator protocol onto Tensor ------------------------------------------
Tensor.__add__ = lambda self, other: add(self, other)
Tensor.__radd__ = lambda self, other: add(other, self)
Tensor.__sub__ = lambda self, other: sub(self, other)
Tensor.__rsub__ = lambda self, other: sub(other, self)
Tensor.__mul__ = lambda self, other: mul(self, other)
Tensor.__rmul__ = lambda self, other: mul(other, self)
Tensor.__truediv__ = lambda self, other: div(self, other)
Tensor.__rtruediv__ = lambda self, other: div(other, self)
Tensor.__neg__ = lambda self: neg(self)
Tensor.__pow__ = lambda self, exponent: pow_(self, exponent)
Tensor.__matmul__ = lambda self, other: matmul(self, other)
Tensor.sum = lambda self, axis=None, keepdims=False: sum_(self, axis, keepdims)
Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
Tensor.reshape = lambda self, *shape: reshape(self, *shape)
Tensor.transpose = lambda self, axes=None: transpose(self, axes)
Tensor.exp = lambda self: exp(self)
Tensor.log = lambda self: log(self)
Tensor.sqrt = lambda self: sqrt(self)
Tensor.abs = lambda self: abs_(self)
Tensor.clip = lambda self, low, high: clip(self, low, high)
