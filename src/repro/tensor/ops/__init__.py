"""Differentiable operations.

Importing this package binds the operator protocol (``+``, ``*``, ``@``,
``.sum()``, ...) onto :class:`~repro.tensor.tensor.Tensor`.
"""

from repro.tensor.ops import basic  # noqa: F401 - binds Tensor operators
from repro.tensor.ops.basic import (
    add,
    sub,
    mul,
    div,
    neg,
    pow_,
    matmul,
    sum_,
    mean,
    reshape,
    transpose,
    concatenate,
    exp,
    log,
    sqrt,
    abs_,
    clip,
)
from repro.tensor.ops.activations import relu, leaky_relu, sigmoid, tanh, softmax
from repro.tensor.ops.conv import ConvWorkspace, conv2d, pad2d, pixel_shuffle
from repro.tensor.ops.pooling import avg_pool2d, max_pool2d, global_avg_pool2d
from repro.tensor.ops.loss import l1_loss, mse_loss, cross_entropy

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow_", "matmul", "sum_", "mean",
    "reshape", "transpose", "concatenate", "exp", "log", "sqrt", "abs_", "clip",
    "relu", "leaky_relu", "sigmoid", "tanh", "softmax",
    "ConvWorkspace", "conv2d", "pad2d", "pixel_shuffle",
    "avg_pool2d", "max_pool2d", "global_avg_pool2d",
    "l1_loss", "mse_loss", "cross_entropy",
]
