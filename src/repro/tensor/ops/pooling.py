"""Pooling ops (used by the ResNet-50 functional variant)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor, collect_parents, result_requires_grad


def _check_pool_args(x, kernel: int, stride: int) -> None:
    if x.ndim != 4:
        raise ShapeError(f"pooling expects NCHW input, got {x.shape}")
    if kernel < 1 or stride < 1:
        raise ShapeError(f"kernel/stride must be >= 1, got {kernel}/{stride}")
    if x.shape[2] < kernel or x.shape[3] < kernel:
        raise ShapeError(f"input {x.shape} smaller than pool kernel {kernel}")


def _windows(x: np.ndarray, kernel: int, stride: int):
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s0, s1, s2, s3 = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    strides = (s0, s1, s2 * stride, s3 * stride, s2, s3)
    return np.lib.stride_tricks.as_strided(x, shape, strides), out_h, out_w


def avg_pool2d(x, kernel: int, stride: int | None = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    _check_pool_args(x, kernel, stride)
    win, out_h, out_w = _windows(x.data, kernel, stride)
    out_data = win.mean(axis=(4, 5))
    if not result_requires_grad(x):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        scale = 1.0 / (kernel * kernel)
        for i in range(kernel):
            for j in range(kernel):
                gx[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                    grad * scale
                )
        x.accumulate_grad(gx)

    return Tensor(out_data, True, _parents=collect_parents(x), _backward=backward)


def max_pool2d(x, kernel: int, stride: int | None = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    _check_pool_args(x, kernel, stride)
    win, out_h, out_w = _windows(x.data, kernel, stride)
    flat = win.reshape(*win.shape[:4], -1)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    if not result_requires_grad(x):
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        ki, kj = np.unravel_index(arg, (kernel, kernel))
        n, c = x.shape[:2]
        n_idx, c_idx, oh_idx, ow_idx = np.indices((n, c, out_h, out_w))
        rows = oh_idx * stride + ki
        cols = ow_idx * stride + kj
        np.add.at(gx, (n_idx, c_idx, rows, cols), grad)
        x.accumulate_grad(gx)

    return Tensor(out_data, True, _parents=collect_parents(x), _backward=backward)


def global_avg_pool2d(x) -> Tensor:
    """(N, C, H, W) -> (N, C) spatial mean."""
    x = as_tensor(x)
    if x.ndim != 4:
        raise ShapeError(f"global_avg_pool2d expects NCHW input, got {x.shape}")
    return x.mean(axis=(2, 3))
