"""Optimizers and LR schedulers."""

from repro.tensor.optim.sgd import SGD
from repro.tensor.optim.adam import Adam
from repro.tensor.optim.lr_scheduler import StepLR, MultiStepLR

__all__ = ["SGD", "Adam", "StepLR", "MultiStepLR"]
