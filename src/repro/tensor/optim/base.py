"""Optimizer base class."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.tensor.nn.module import Parameter
from repro.tensor.tensor import no_grad


class Optimizer:
    """Holds parameters and a learning rate; subclasses implement the update."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer constructed with no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        with no_grad():
            self.step_count += 1
            for p in self.params:
                if p.grad is not None:
                    self._update(p)

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError
