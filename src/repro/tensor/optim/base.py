"""Optimizer base class."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Parameter
from repro.tensor.tensor import no_grad


class Optimizer:
    """Holds parameters and a learning rate; subclasses implement the update."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer constructed with no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        with no_grad():
            self.step_count += 1
            for p in self.params:
                if p.grad is not None:
                    self._update(p)

    def _update(self, param: Parameter) -> None:
        raise NotImplementedError

    # -- state round-trip -------------------------------------------------------
    # Per-parameter state is keyed by *position* in ``self.params``, so a
    # checkpoint restores into any optimizer built over the same model in
    # the same registration order (parameter ids are process-local).
    def state_dict(self) -> dict[str, Any]:
        """Dynamic state only — hyperparameters stay with the constructor."""
        return {
            "lr": self.lr,
            "step_count": self.step_count,
            "per_param": self._per_param_state(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])
        per_param = state.get("per_param", {})
        if per_param:
            self._load_per_param_state(per_param)

    def _per_param_state(self) -> dict[str, list[np.ndarray]]:
        """Mapping slot-name -> one array per parameter (position-aligned)."""
        return {}

    def _load_per_param_state(
        self, per_param: dict[str, Sequence[np.ndarray]]
    ) -> None:
        if per_param:
            raise ConfigError(
                f"{type(self).__name__} carries no per-parameter state but the "
                f"checkpoint provides slots {sorted(per_param)}"
            )
