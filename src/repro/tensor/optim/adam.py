"""Adam (the optimizer EDSR trains with: beta1=0.9, beta2=0.999, eps=1e-8)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Parameter
from repro.tensor.optim.base import Optimizer


class Adam(Optimizer):
    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-4,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigError(f"betas must be in [0,1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            self._v[key] = np.zeros_like(param.data)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key] = m, v
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def state_bytes_per_param(self) -> int:
        """Adam keeps two fp32 moments per parameter (memory model input)."""
        return 8
