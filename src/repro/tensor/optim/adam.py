"""Adam (the optimizer EDSR trains with: beta1=0.9, beta2=0.999, eps=1e-8)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Parameter
from repro.tensor.optim.base import Optimizer


class Adam(Optimizer):
    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-4,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigError(f"betas must be in [0,1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        key = id(param)
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            self._v[key] = np.zeros_like(param.data)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key] = m, v
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def state_bytes_per_param(self) -> int:
        """Adam keeps two fp32 moments per parameter (memory model input)."""
        return 8

    # -- state round-trip -------------------------------------------------------
    def _per_param_state(self) -> dict[str, list[np.ndarray]]:
        m, v, t = [], [], []
        for p in self.params:
            key = id(p)
            m.append(self._m.get(key, np.zeros_like(p.data)))
            v.append(self._v.get(key, np.zeros_like(p.data)))
            t.append(np.asarray(self._t.get(key, 0)))
        return {"m": m, "v": v, "t": t}

    def _load_per_param_state(self, per_param) -> None:
        m, v, t = per_param["m"], per_param["v"], per_param["t"]
        if not len(m) == len(v) == len(t) == len(self.params):
            raise ConfigError(
                f"Adam state for {len(m)} parameter(s) cannot restore into "
                f"an optimizer over {len(self.params)}"
            )
        for p, m_i, v_i, t_i in zip(self.params, m, v, t):
            if m_i.shape != p.data.shape:
                raise ConfigError(
                    f"Adam moment shape {m_i.shape} does not match parameter "
                    f"shape {p.data.shape}"
                )
            key = id(p)
            self._m[key] = np.array(m_i, dtype=p.data.dtype, copy=True)
            self._v[key] = np.array(v_i, dtype=p.data.dtype, copy=True)
            self._t[key] = int(t_i)
