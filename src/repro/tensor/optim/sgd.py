"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn.module import Parameter
from repro.tensor.optim.base import Optimizer


class SGD(Optimizer):
    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0 <= momentum < 1:
            raise ConfigError(f"momentum must be in [0,1), got {momentum}")
        if weight_decay < 0:
            raise ConfigError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            v = self._velocity.get(id(param))
            if v is None:
                v = np.zeros_like(param.data)
            v = self.momentum * v + grad
            self._velocity[id(param)] = v
            grad = v
        param.data -= self.lr * grad

    # -- state round-trip -------------------------------------------------------
    def _per_param_state(self) -> dict[str, list[np.ndarray]]:
        if not self.momentum:
            return {}
        return {
            "velocity": [
                self._velocity.get(id(p), np.zeros_like(p.data))
                for p in self.params
            ]
        }

    def _load_per_param_state(self, per_param) -> None:
        velocity = per_param.get("velocity", [])
        if len(velocity) != len(self.params):
            raise ConfigError(
                f"SGD velocity for {len(velocity)} parameter(s) cannot restore "
                f"into an optimizer over {len(self.params)}"
            )
        for p, v in zip(self.params, velocity):
            if v.shape != p.data.shape:
                raise ConfigError(
                    f"SGD velocity shape {v.shape} does not match parameter "
                    f"shape {p.data.shape}"
                )
            self._velocity[id(p)] = np.array(v, dtype=p.data.dtype, copy=True)
