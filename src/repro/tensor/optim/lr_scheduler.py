"""Learning-rate schedules (EDSR halves LR every 2e5 steps)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.tensor.optim.base import Optimizer


class StepLR:
    """Multiply LR by ``gamma`` every ``step_size`` scheduler steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ConfigError(f"step_size must be >= 1, got {step_size}")
        if not 0 < gamma <= 1:
            raise ConfigError(f"gamma must be in (0,1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)

    def state_dict(self) -> dict:
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)


class MultiStepLR:
    """Multiply LR by ``gamma`` at each listed milestone."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.5
    ):
        if sorted(milestones) != list(milestones):
            raise ConfigError("milestones must be sorted ascending")
        self.optimizer = optimizer
        self.milestones = list(milestones)
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        self.optimizer.lr = self.base_lr * (self.gamma**passed)

    def state_dict(self) -> dict:
        return {"epoch": self.epoch, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        self.optimizer.lr = self.base_lr * (self.gamma**passed)
