"""repro: reproduction of "Scaling Single-Image Super-Resolution Training on
Modern HPC Clusters: Early Experiences" (Anthony, Xu, Subramoni, Panda;
IPDPS-W 2021).

The package stacks, bottom to top (paper Fig. 3):

``repro.sim``       discrete-event engine
``repro.hardware``  Lassen-like cluster (V100 nodes, NVLink, EDR IB)
``repro.cuda``      CUDA runtime semantics incl. IPC visibility rules
``repro.net``       InfiniBand registration cache / RDMA protocol costs
``repro.mpi``       CUDA-aware MPI (MVAPICH2-GDR-like)
``repro.nccl``      NCCL-like backend
``repro.tensor``    numpy autograd DL framework
``repro.models``    EDSR + baselines, analytic cost structures
``repro.data``      synthetic DIV2K pipeline; ``repro.metrics`` PSNR/SSIM
``repro.horovod``   data-parallel middleware with Tensor Fusion
``repro.profiling`` hvprof
``repro.core``      the paper's scenarios / scaling studies / methodology
``repro.trainer``   functional training loops

Quick start::

    from repro.core import MPI_OPT, ScalingStudy
    point = ScalingStudy(MPI_OPT).run_point(num_gpus=512)
    print(point.images_per_second)
"""

from repro.version import __version__
from repro.errors import ReproError

__all__ = ["__version__", "ReproError"]
