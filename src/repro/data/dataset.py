"""SR dataset: HR source + degradation, with per-image caching."""

from __future__ import annotations

import numpy as np

from repro.data.degradation import DegradationConfig, degrade
from repro.data.synthetic import SyntheticDiv2k
from repro.errors import DataError
from repro.utils.seeding import derive_seed


class SRDataset:
    """Pairs (lr, hr) images over a chosen split of the synthetic source."""

    def __init__(
        self,
        source: SyntheticDiv2k,
        *,
        split: str = "train",
        degradation: DegradationConfig | None = None,
        cache_size: int = 64,
    ):
        splits = {
            "train": source.train_indices,
            "val": source.val_indices,
            "test": source.test_indices,
        }
        if split not in splits:
            raise DataError(f"unknown split {split!r}; use train/val/test")
        self.source = source
        self.split = split
        self.indices = list(splits[split]())
        self.degradation = degradation or DegradationConfig()
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._cache_size = cache_size

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def scale(self) -> int:
        return self.degradation.scale

    def __getitem__(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (lr, hr) for the i-th item of this split."""
        if not 0 <= i < len(self):
            raise DataError(f"index {i} out of range for split of {len(self)}")
        cached = self._cache.get(i)
        if cached is not None:
            return cached
        image_index = self.indices[i]
        hr = self.source.image(image_index)
        rng = np.random.default_rng(
            derive_seed(self.source.seed, "degrade", image_index)
        )
        lr = degrade(hr, self.degradation, rng=rng)
        pair = (lr, hr)
        if len(self._cache) < self._cache_size:
            self._cache[i] = pair
        return pair
