"""Aligned LR/HR patch sampling (the unit of EDSR training)."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def sample_patch_pair(
    lr: np.ndarray,
    hr: np.ndarray,
    lr_patch: int,
    scale: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random aligned crop: (C, p, p) from LR, (C, p*s, p*s) from HR."""
    if lr.ndim != 3 or hr.ndim != 3:
        raise DataError("patch sampling expects (C,H,W) images")
    _, lh, lw = lr.shape
    _, hh, hw = hr.shape
    if hh != lh * scale or hw != lw * scale:
        raise DataError(
            f"HR {hr.shape} is not {scale}x the LR {lr.shape}"
        )
    if lr_patch > lh or lr_patch > lw:
        raise DataError(f"patch {lr_patch} larger than LR image {lr.shape}")
    y = int(rng.integers(0, lh - lr_patch + 1))
    x = int(rng.integers(0, lw - lr_patch + 1))
    lr_crop = lr[:, y : y + lr_patch, x : x + lr_patch]
    hy, hx = y * scale, x * scale
    hr_crop = hr[:, hy : hy + lr_patch * scale, hx : hx + lr_patch * scale]
    return lr_crop, hr_crop


def augment_pair(
    lr: np.ndarray, hr: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Standard SR augmentation: random flips and 90-degree rotation."""
    if rng.random() < 0.5:
        lr, hr = lr[:, :, ::-1], hr[:, :, ::-1]
    if rng.random() < 0.5:
        lr, hr = lr[:, ::-1, :], hr[:, ::-1, :]
    if rng.random() < 0.5:
        lr = np.rot90(lr, axes=(1, 2))
        hr = np.rot90(hr, axes=(1, 2))
    return np.ascontiguousarray(lr), np.ascontiguousarray(hr)
