"""HR -> LR degradation pipeline.

Bicubic downsampling is the DIV2K-standard degradation; optional Gaussian
blur and sensor noise model the harder settings the paper's §II-E mentions
(anisotropic degradations, sensor/speckle noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError
from repro.models.bicubic import bicubic_downscale


@dataclass(frozen=True)
class DegradationConfig:
    scale: int = 2
    blur_sigma: float = 0.0
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise DataError(f"scale must be >= 1, got {self.scale}")
        if self.blur_sigma < 0 or self.noise_sigma < 0:
            raise DataError("blur/noise sigma must be >= 0")


def _gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur on (C,H,W) with reflect padding."""
    radius = max(1, int(3 * sigma))
    xs = np.arange(-radius, radius + 1)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    kernel /= kernel.sum()
    padded = np.pad(image, ((0, 0), (radius, radius), (0, 0)), mode="reflect")
    rows = sum(
        padded[:, i : i + image.shape[1], :] * k for i, k in enumerate(kernel)
    )
    padded = np.pad(rows, ((0, 0), (0, 0), (radius, radius)), mode="reflect")
    return sum(
        padded[:, :, i : i + image.shape[2]] * k for i, k in enumerate(kernel)
    )


def degrade(
    hr: np.ndarray,
    config: DegradationConfig,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Produce the LR counterpart of an HR (C,H,W) image."""
    if hr.ndim != 3:
        raise DataError(f"degrade expects (C,H,W), got {hr.shape}")
    out = hr.astype(np.float32)
    if config.blur_sigma > 0:
        out = _gaussian_blur(out, config.blur_sigma).astype(np.float32)
    if config.scale > 1:
        out = bicubic_downscale(out, config.scale).astype(np.float32)
    if config.noise_sigma > 0:
        rng = rng or np.random.default_rng(0)
        out = out + rng.normal(0, config.noise_sigma, out.shape).astype(np.float32)
    return np.clip(out, 0.0, 1.0)
