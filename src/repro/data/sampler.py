"""Distributed sampler: shards a dataset across data-parallel ranks.

Mirrors ``torch.utils.data.DistributedSampler``: every rank sees a
disjoint, equally-sized shard of a per-epoch shuffled permutation (padded
by wrap-around so all ranks take the same number of steps — the lock-step
requirement of synchronous data parallelism, paper §II-C).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.utils.seeding import derive_seed


class DistributedSampler:
    def __init__(
        self,
        dataset_size: int,
        num_ranks: int,
        rank: int,
        *,
        shuffle: bool = True,
        seed: int = 0,
    ):
        if dataset_size < 1:
            raise DataError("dataset_size must be >= 1")
        if not 0 <= rank < num_ranks:
            raise DataError(f"rank {rank} out of range for {num_ranks} ranks")
        self.dataset_size = dataset_size
        self.num_ranks = num_ranks
        self.rank = rank
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    @property
    def samples_per_rank(self) -> int:
        return -(-self.dataset_size // self.num_ranks)

    def indices(self) -> list[int]:
        """This rank's shard for the current epoch."""
        order = np.arange(self.dataset_size)
        if self.shuffle:
            rng = np.random.default_rng(derive_seed(self.seed, "epoch", self.epoch))
            rng.shuffle(order)
        total = self.samples_per_rank * self.num_ranks
        padded = np.resize(order, total)  # wrap-around padding
        return padded[self.rank : total : self.num_ranks].tolist()
