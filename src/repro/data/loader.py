"""Patch-batch loader for SR training."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import SRDataset
from repro.data.patches import augment_pair, sample_patch_pair
from repro.data.sampler import DistributedSampler
from repro.errors import DataError


class PatchLoader:
    """Yields (lr_batch, hr_batch) float32 arrays in NCHW.

    Each batch draws ``batch_size`` random patches from this rank's shard,
    matching EDSR's random-crop training regime.
    """

    def __init__(
        self,
        dataset: SRDataset,
        *,
        batch_size: int,
        lr_patch: int,
        sampler: DistributedSampler | None = None,
        augment: bool = True,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise DataError("batch_size must be >= 1")
        if lr_patch < 4:
            raise DataError("lr_patch must be >= 4")
        self.dataset = dataset
        self.batch_size = batch_size
        self.lr_patch = lr_patch
        self.sampler = sampler or DistributedSampler(len(dataset), 1, 0, seed=seed)
        self.augment = augment
        self._rng = np.random.default_rng(seed + 7919 * (self.sampler.rank + 1))

    def batches(self, num_batches: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``num_batches`` random patch batches from the shard."""
        shard = self.sampler.indices()
        scale = self.dataset.scale
        for _ in range(num_batches):
            lrs, hrs = [], []
            for _ in range(self.batch_size):
                item = int(self._rng.choice(shard))
                lr, hr = self.dataset[item]
                lr_crop, hr_crop = sample_patch_pair(
                    lr, hr, self.lr_patch, scale, self._rng
                )
                if self.augment:
                    lr_crop, hr_crop = augment_pair(lr_crop, hr_crop, self._rng)
                lrs.append(lr_crop)
                hrs.append(hr_crop)
            yield np.stack(lrs), np.stack(hrs)
