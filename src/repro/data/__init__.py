"""Data pipeline: synthetic DIV2K-like dataset, degradation, patches, loaders.

The paper trains on DIV2K (800 train / 100 val / 100 test HR images).  We
cannot ship DIV2K, so :mod:`repro.data.synthetic` procedurally generates
photo-statistics-like HR images (multi-octave value noise + edges +
gradients); the LR side is produced by the same bicubic degradation DIV2K
uses.  The *workload* (patch geometry, batch composition, bytes/step) is
what the paper's evaluation measures, and that is preserved exactly.
"""

from repro.data.synthetic import SyntheticDiv2k
from repro.data.degradation import DegradationConfig, degrade
from repro.data.patches import sample_patch_pair
from repro.data.dataset import SRDataset
from repro.data.sampler import DistributedSampler
from repro.data.loader import PatchLoader

__all__ = [
    "SyntheticDiv2k",
    "DegradationConfig",
    "degrade",
    "sample_patch_pair",
    "SRDataset",
    "DistributedSampler",
    "PatchLoader",
]
