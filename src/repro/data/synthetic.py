"""Procedural DIV2K-like image generator.

Images are deterministic functions of (seed, index): multi-octave smooth
value noise gives natural low-frequency structure, plus random linear
gradients (lighting), and sharp geometric shapes (rectangles/disks) that
give SR models real edges to learn.  Values are RGB float32 in [0, 1],
CHW layout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.utils.seeding import derive_seed

#: DIV2K split sizes (paper §II-E)
TRAIN_SIZE = 800
VAL_SIZE = 100
TEST_SIZE = 100


def _smooth_noise(rng: np.random.Generator, h: int, w: int, grid: int) -> np.ndarray:
    """One octave: random values on a coarse grid, bilinearly upsampled."""
    gh, gw = max(2, h // grid), max(2, w // grid)
    coarse = rng.random((gh, gw), dtype=np.float64)
    ys = np.linspace(0, gh - 1, h)
    xs = np.linspace(0, gw - 1, w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, gh - 1)
    x1 = np.minimum(x0 + 1, gw - 1)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    top = coarse[y0][:, x0] * (1 - fx) + coarse[y0][:, x1] * fx
    bottom = coarse[y1][:, x0] * (1 - fx) + coarse[y1][:, x1] * fx
    return top * (1 - fy) + bottom * fy


class SyntheticDiv2k:
    """Deterministic synthetic HR image source with DIV2K-like splits."""

    def __init__(
        self,
        *,
        height: int = 96,
        width: int = 96,
        seed: int = 2021,
        octaves: int = 4,
        num_shapes: int = 6,
    ):
        if height < 8 or width < 8:
            raise DataError(f"images must be at least 8x8, got {height}x{width}")
        if octaves < 1:
            raise DataError("octaves must be >= 1")
        self.height = height
        self.width = width
        self.seed = seed
        self.octaves = octaves
        self.num_shapes = num_shapes

    def __len__(self) -> int:
        return TRAIN_SIZE + VAL_SIZE + TEST_SIZE

    def image(self, index: int) -> np.ndarray:
        """HR image ``index`` as (3, H, W) float32 in [0, 1]."""
        if not 0 <= index < len(self):
            raise DataError(f"image index {index} out of range [0, {len(self)})")
        rng = np.random.default_rng(derive_seed(self.seed, "image", index))
        h, w = self.height, self.width
        channels = []
        base_hue = rng.random(3) * 0.6 + 0.2
        for c in range(3):
            acc = np.zeros((h, w))
            amplitude, total = 1.0, 0.0
            for octave in range(self.octaves):
                grid = max(4, min(h, w) // (2**octave + 1))
                acc += amplitude * _smooth_noise(rng, h, w, grid)
                total += amplitude
                amplitude *= 0.55
            channels.append(base_hue[c] * 0.5 + 0.5 * acc / total)
        img = np.stack(channels)
        # lighting gradient
        gy, gx = rng.standard_normal(2) * 0.15
        yy = np.linspace(-0.5, 0.5, h)[:, None]
        xx = np.linspace(-0.5, 0.5, w)[None, :]
        img += gy * yy + gx * xx
        # sharp shapes (edges)
        for _ in range(self.num_shapes):
            color = rng.random(3).reshape(3, 1, 1)
            if rng.random() < 0.5:
                y0, x0 = rng.integers(0, h - 4), rng.integers(0, w - 4)
                dy = int(rng.integers(3, max(4, h // 3)))
                dx = int(rng.integers(3, max(4, w // 3)))
                img[:, y0 : y0 + dy, x0 : x0 + dx] = (
                    0.6 * img[:, y0 : y0 + dy, x0 : x0 + dx] + 0.4 * color
                )
            else:
                cy, cx = rng.integers(0, h), rng.integers(0, w)
                r = int(rng.integers(2, max(3, min(h, w) // 5)))
                mask = (yy * h - (cy - h / 2)) ** 2 + (xx * w - (cx - w / 2)) ** 2 <= r * r
                img[:, mask] = 0.6 * img[:, mask] + 0.4 * color.reshape(3, 1)
        return np.clip(img, 0.0, 1.0).astype(np.float32)

    # -- splits -------------------------------------------------------------
    def train_indices(self) -> range:
        return range(0, TRAIN_SIZE)

    def val_indices(self) -> range:
        return range(TRAIN_SIZE, TRAIN_SIZE + VAL_SIZE)

    def test_indices(self) -> range:
        return range(TRAIN_SIZE + VAL_SIZE, TRAIN_SIZE + VAL_SIZE + TEST_SIZE)
