"""Declarative, serializable fault schedules.

A :class:`FaultPlan` is the single source of truth for everything adverse
that happens during a simulated run: which ranks slow down and when, which
link classes degrade or flap, which messages get dropped or delayed, and
which ranks die outright.  Plans are frozen dataclasses keyed by a root
seed, so the same plan always produces the same injected behaviour — the
property the chaos and determinism test suites are built on.

Time values are *simulation* seconds (the trainer's accumulated step clock
or ``Environment.now`` inside the event engine, depending on the layer the
fault targets).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigError, FaultPlanError


def _check_window(name: str, start: float, duration: float | None) -> None:
    if start < 0:
        raise FaultPlanError(f"{name}: start must be >= 0, got {start}")
    if duration is not None and duration <= 0:
        # Windows are half-open [start, start + duration) — see
        # ``repro.faults.injector.window_active`` — so duration=0 would
        # define an empty window that can never fire.
        raise FaultPlanError(
            f"{name}: duration must be positive (or None for permanent); "
            f"duration={duration} defines an empty window that never fires"
        )


@dataclass(frozen=True)
class StragglerFault:
    """Deterministic per-rank compute slowdown.

    ``factor`` multiplies the rank's backward/compute time while the fault
    window is active; ``duration=None`` makes the straggler permanent.
    """

    rank: int
    factor: float
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultPlanError(f"straggler: rank must be >= 0, got {self.rank}")
        if self.factor < 1.0:
            raise FaultPlanError(
                f"straggler: factor must be >= 1.0 (a slowdown), got {self.factor}"
            )
        _check_window("straggler", self.start, self.duration)


@dataclass(frozen=True)
class JitterFault:
    """Seeded Gaussian compute jitter applied to every rank, every step.

    Each (rank, step) draws ``|N(0, 1)|`` from the plan seed and inflates
    compute by ``1 + sigma * |z|`` — the stochastic-straggler model behind
    the paper's ``sigma`` ablation, made reproducible.  Because the draws
    depend only on the seed (not on ``sigma``), step time is monotone in
    ``sigma`` for a fixed seed.
    """

    sigma: float
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise FaultPlanError(f"jitter: sigma must be >= 0, got {self.sigma}")
        _check_window("jitter", self.start, self.duration)


@dataclass(frozen=True)
class LinkFault:
    """Degradation (and optional flapping) of one physical link class.

    ``kind`` is a :class:`~repro.hardware.links.LinkKind` value string
    (``"nvlink-p2p"``, ``"ib"``, ...) or ``None`` for every link.  While
    active, bandwidth is multiplied by ``bandwidth_factor`` and
    ``latency_add_s`` is added to the link alpha.  ``flap_period_s > 0``
    turns the fault into a square wave: degraded for the first half of each
    period, healthy for the second.
    """

    kind: str | None = None
    bandwidth_factor: float = 1.0
    latency_add_s: float = 0.0
    start: float = 0.0
    duration: float | None = None
    flap_period_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise FaultPlanError(
                "link: bandwidth_factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )
        if self.latency_add_s < 0:
            raise FaultPlanError(
                f"link: latency_add_s must be >= 0, got {self.latency_add_s}"
            )
        if self.flap_period_s < 0:
            raise FaultPlanError(
                f"link: flap_period_s must be >= 0, got {self.flap_period_s}"
            )
        if self.bandwidth_factor == 1.0 and self.latency_add_s == 0.0:
            raise FaultPlanError("link: fault degrades nothing")
        _check_window("link", self.start, self.duration)


@dataclass(frozen=True)
class MessageFault:
    """Dropped and/or delayed point-to-point messages.

    Applies to the event-driven transport path (``transfer_proc`` /
    :class:`~repro.mpi.p2p.P2PFabric`).  ``src``/``dst`` of ``None``
    match any rank.  Drops are decided per attempt from the plan seed, so
    retransmissions re-roll deterministically.
    """

    src: int | None = None
    dst: int | None = None
    drop_prob: float = 0.0
    delay_s: float = 0.0
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise FaultPlanError(
                f"message: drop_prob must be in [0, 1], got {self.drop_prob}"
            )
        if self.delay_s < 0:
            raise FaultPlanError(
                f"message: delay_s must be >= 0, got {self.delay_s}"
            )
        if self.drop_prob == 0.0 and self.delay_s == 0.0:
            raise FaultPlanError("message: fault neither drops nor delays")
        _check_window("message", self.start, self.duration)


@dataclass(frozen=True)
class RankFailure:
    """Loss of one rank at ``time`` (node crash / GPU falls off the bus).

    ``down_s=None`` makes the outage permanent; a finite ``down_s`` means
    the node returns to service that many seconds later, and an elastic
    recovery policy (:class:`~repro.resilience.RecoveryPolicy` with
    ``regrow=True``) may re-admit the rank once the window ends.  How a
    failure is absorbed — shrink, abort, restart-from-checkpoint, regrow —
    is always the consumer's policy, never the plan's.
    """

    rank: int
    time: float = 0.0
    down_s: float | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultPlanError(f"failure: rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise FaultPlanError(f"failure: time must be >= 0, got {self.time}")
        if self.down_s is not None and self.down_s <= 0:
            raise FaultPlanError(
                "failure: down_s must be positive (or None for permanent), "
                f"got {self.down_s}"
            )


@dataclass(frozen=True)
class NodeFailure:
    """Correlated loss of one whole node (PSU trip, kernel panic).

    Every GPU rank hosted on ``node`` fails *simultaneously* at ``time``
    — the blast radius is computed from the cluster topology
    (:class:`~repro.faults.domains.Topology`), so a Lassen node takes its
    4 ranks down in one detection window, not 4 staggered ones.
    ``down_s`` follows :class:`RankFailure` semantics.
    """

    node: int
    time: float = 0.0
    down_s: float | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultPlanError(
                f"node-failure: node must be >= 0, got {self.node}"
            )
        if self.time < 0:
            raise FaultPlanError(
                f"node-failure: time must be >= 0, got {self.time}"
            )
        if self.down_s is not None and self.down_s <= 0:
            raise FaultPlanError(
                "node-failure: down_s must be positive (or None for "
                f"permanent), got {self.down_s}"
            )


@dataclass(frozen=True)
class SwitchFailure:
    """Loss of one leaf (TOR) switch of the fat-tree.

    Every IB path through the switch is severed for the outage window:
    the nodes behind it keep computing but cannot reach the rest of the
    fabric, so from the job's point of view all their ranks drop out at
    once.  Messages attempted across the severed boundary fail the retry
    ladder and raise :class:`~repro.errors.MpiTimeoutError`.
    """

    switch: int
    time: float = 0.0
    down_s: float | None = None

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise FaultPlanError(
                f"switch-failure: switch must be >= 0, got {self.switch}"
            )
        if self.time < 0:
            raise FaultPlanError(
                f"switch-failure: time must be >= 0, got {self.time}"
            )
        if self.down_s is not None and self.down_s <= 0:
            raise FaultPlanError(
                "switch-failure: down_s must be positive (or None for "
                f"permanent), got {self.down_s}"
            )


@dataclass(frozen=True)
class PartitionFault:
    """Network partition: a set of nodes is cut off from the rest.

    ``nodes`` is the severed island; the side holding node 0 (where the
    coordinator lives) keeps running, so node 0 may not be listed.  While
    the window is active every path crossing the cut is severed — the
    survivors see the island's ranks die together, and any message across
    the cut exhausts its retry ladder with
    :class:`~repro.errors.MpiTimeoutError`.  ``duration=None`` makes the
    partition permanent; a finite duration heals it, after which a
    ``regrow`` recovery policy may re-admit the island.
    """

    nodes: tuple[int, ...] = ()
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise FaultPlanError("partition: needs at least one severed node")
        if any(n < 0 for n in self.nodes):
            raise FaultPlanError(
                f"partition: node ids must be >= 0, got {self.nodes}"
            )
        if 0 in self.nodes:
            raise FaultPlanError(
                "partition: node 0 hosts the coordinator and must stay on "
                "the surviving side; list the severed island only"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise FaultPlanError(
                f"partition: duplicate node ids in {self.nodes}"
            )
        _check_window("partition", self.start, self.duration)


@dataclass(frozen=True)
class CorruptionFault:
    """Seeded bit-flip corruption of data in flight or at rest.

    ``target="wire"`` corrupts point-to-point payloads with probability
    ``prob`` per transmission attempt; the transport's CRC32 check
    detects the damage and retransmits through the retry ladder (an
    undetected corruption can never reach optimizer state).
    ``target="checkpoint"`` corrupts snapshot writes with probability
    ``prob`` per save; the restart path's checksum verification skips the
    damaged snapshot and falls back to an older one.
    """

    target: str = "wire"
    prob: float = 0.0
    start: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.target not in ("wire", "checkpoint"):
            raise FaultPlanError(
                "corruption: target must be 'wire' or 'checkpoint', got "
                f"{self.target!r}"
            )
        if not 0.0 < self.prob <= 1.0:
            raise FaultPlanError(
                f"corruption: prob must be in (0, 1], got {self.prob}"
            )
        _check_window("corruption", self.start, self.duration)


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission semantics for dropped messages.

    A lost message costs ``ack_timeout_s`` to detect, then retransmits
    after an exponential backoff (``base_backoff_s * backoff_factor**k``).
    After ``max_retries`` consecutive losses the transport raises
    :class:`~repro.errors.MpiTimeoutError`.

    ``max_retries=0`` is *fail-fast*: the first loss raises immediately
    (no retransmission).  Invalid timing parameters are rejected here
    with :class:`~repro.errors.ConfigError` — a zero ack timeout or a
    negative backoff would otherwise surface as a silent downstream hang
    or a simulation that never advances.
    """

    max_retries: int = 4
    ack_timeout_s: float = 500e-6
    base_backoff_s: float = 100e-6
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"retry: max_retries must be >= 0 (0 means fail-fast on "
                f"the first loss), got {self.max_retries}"
            )
        if self.ack_timeout_s <= 0:
            raise ConfigError(
                "retry: ack_timeout_s must be > 0 (a zero timeout would "
                f"poll a lost message forever), got {self.ack_timeout_s}"
            )
        if self.base_backoff_s < 0:
            raise ConfigError(
                f"retry: base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"retry: backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (1-based)."""
        return self.base_backoff_s * self.backoff_factor ** (attempt - 1)

    def ladder_time(self) -> float:
        """Total wall time of the exhausted retry ladder — what a sender
        waits before declaring a severed path dead: one ack timeout plus
        backoff per retransmission."""
        return sum(
            self.ack_timeout_s + self.backoff(k)
            for k in range(1, self.max_retries + 1)
        )


_FAULT_TYPES = {
    "straggler": StragglerFault,
    "jitter": JitterFault,
    "link": LinkFault,
    "message": MessageFault,
    "failure": RankFailure,
    "node-failure": NodeFailure,
    "switch-failure": SwitchFailure,
    "partition": PartitionFault,
    "corruption": CorruptionFault,
}
_TYPE_NAMES = {cls: name for name, cls in _FAULT_TYPES.items()}

FaultSpec = (
    StragglerFault | JitterFault | LinkFault | MessageFault | RankFailure
    | NodeFailure | SwitchFailure | PartitionFault | CorruptionFault
)

#: fault classes whose blast radius needs the cluster topology to resolve
DOMAIN_FAULTS = (NodeFailure, SwitchFailure, PartitionFault)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered collection of fault specs.

    The empty plan (``FaultPlan(seed=s)``) injects nothing; running under
    it must reproduce a fault-free run exactly.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if type(f) not in _TYPE_NAMES:
                raise FaultPlanError(f"unknown fault spec {f!r}")

    def of_type(self, cls: type) -> list:
        return [f for f in self.faults if isinstance(f, cls)]

    @property
    def failures(self) -> list[RankFailure]:
        return self.of_type(RankFailure)

    # -- serialization (the documented schema) ---------------------------------
    def to_json(self) -> str:
        entries = []
        for f in self.faults:
            entry = {"type": _TYPE_NAMES[type(f)]}
            entry.update(asdict(f))
            entries.append(entry)
        return json.dumps({"seed": self.seed, "faults": entries}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault-plan JSON: {exc}") from exc
        faults = []
        for entry in raw.get("faults", []):
            kind = entry.pop("type", None)
            if kind not in _FAULT_TYPES:
                raise FaultPlanError(f"unknown fault type {kind!r}")
            faults.append(_FAULT_TYPES[kind](**entry))
        return cls(seed=int(raw.get("seed", 0)), faults=tuple(faults))
