"""Failure domains: mapping correlated faults onto the cluster topology.

Real HPC outages are correlated — a PSU takes out a whole node, a leaf
(TOR) switch takes out every node behind it, a mis-pushed routing config
partitions the fabric.  :class:`Topology` is the frozen description the
fault layer needs to compute those blast radii: how ranks map to nodes,
and how nodes map to leaf switches of the fat-tree.

The lowering functions translate domain-level specs
(:class:`~repro.faults.plan.NodeFailure`,
:class:`~repro.faults.plan.SwitchFailure`,
:class:`~repro.faults.plan.PartitionFault`) into per-rank failure windows
tagged with a *domain label* (``"node:2"``, ``"switch:1"``,
``"partition:0"``), so the heartbeat supervisor can declare the whole
domain atomically — one detection window, not N staggered ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FaultPlan,
    NodeFailure,
    PartitionFault,
    RankFailure,
    SwitchFailure,
)


@dataclass(frozen=True)
class Topology:
    """Rank → node → leaf-switch addressing of one job's cluster slice.

    ``nodes_per_switch`` is the leaf-switch failure-domain granularity
    (how many nodes share one TOR switch).  The fat-tree core stays
    non-blocking for performance modelling; switches matter only as
    correlated failure domains.
    """

    num_nodes: int
    gpus_per_node: int = 4
    nodes_per_switch: int = 2

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise FaultPlanError(
                f"topology: num_nodes must be >= 1, got {self.num_nodes}"
            )
        if self.gpus_per_node < 1:
            raise FaultPlanError(
                f"topology: gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if self.nodes_per_switch < 1:
            raise FaultPlanError(
                "topology: nodes_per_switch must be >= 1, got "
                f"{self.nodes_per_switch}"
            )

    @classmethod
    def from_spec(cls, spec, num_nodes: int) -> "Topology":
        """Build from a :class:`~repro.hardware.specs.ClusterSpec`."""
        return cls(
            num_nodes=num_nodes,
            gpus_per_node=spec.node.gpus_per_node,
            nodes_per_switch=spec.nodes_per_switch,
        )

    # -- addressing --------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def num_switches(self) -> int:
        per = self.nodes_per_switch
        return (self.num_nodes + per - 1) // per

    def node_of_rank(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def switch_of_node(self, node: int) -> int:
        return node // self.nodes_per_switch

    def switch_of_rank(self, rank: int) -> int:
        return self.switch_of_node(self.node_of_rank(rank))

    def ranks_of_node(self, node: int) -> tuple[int, ...]:
        base = node * self.gpus_per_node
        return tuple(range(base, base + self.gpus_per_node))

    def nodes_behind_switch(self, switch: int) -> tuple[int, ...]:
        lo = switch * self.nodes_per_switch
        hi = min(lo + self.nodes_per_switch, self.num_nodes)
        return tuple(range(lo, hi))

    def ranks_behind_switch(self, switch: int) -> tuple[int, ...]:
        return tuple(
            r
            for node in self.nodes_behind_switch(switch)
            for r in self.ranks_of_node(node)
        )


@dataclass(frozen=True)
class LoweredFailure:
    """One per-rank failure window produced by domain lowering."""

    rank: int
    time: float
    down_s: float | None
    domain: str  # "" for an independent RankFailure


def lower_domain_faults(plan: FaultPlan, topology: Topology) -> list[LoweredFailure]:
    """Resolve every failure in the plan to per-rank windows with domains.

    Independent :class:`RankFailure` specs pass through with an empty
    domain label; domain specs expand to their full blast radius.  When a
    rank is claimed by more than one spec, the earliest failure wins (it
    is the one the survivors observe first).
    """
    lowered: dict[int, LoweredFailure] = {}

    def claim(entry: LoweredFailure) -> None:
        prior = lowered.get(entry.rank)
        if prior is None or entry.time < prior.time:
            lowered[entry.rank] = entry

    for f in plan.of_type(RankFailure):
        claim(LoweredFailure(f.rank, f.time, f.down_s, ""))
    for i, f in enumerate(plan.of_type(NodeFailure)):
        if f.node >= topology.num_nodes:
            raise FaultPlanError(
                f"node-failure: node {f.node} outside the "
                f"{topology.num_nodes}-node topology"
            )
        for rank in topology.ranks_of_node(f.node):
            claim(LoweredFailure(rank, f.time, f.down_s, f"node:{f.node}"))
    for f in plan.of_type(SwitchFailure):
        if f.switch >= topology.num_switches:
            raise FaultPlanError(
                f"switch-failure: switch {f.switch} outside the "
                f"{topology.num_switches}-switch topology"
            )
        if set(topology.nodes_behind_switch(f.switch)) >= set(
            range(topology.num_nodes)
        ):
            raise FaultPlanError(
                f"switch-failure: switch {f.switch} carries every node — "
                "no surviving side would remain"
            )
        for rank in topology.ranks_behind_switch(f.switch):
            claim(LoweredFailure(rank, f.time, f.down_s, f"switch:{f.switch}"))
    for i, f in enumerate(plan.of_type(PartitionFault)):
        for node in f.nodes:
            if node >= topology.num_nodes:
                raise FaultPlanError(
                    f"partition: node {node} outside the "
                    f"{topology.num_nodes}-node topology"
                )
            for rank in topology.ranks_of_node(node):
                claim(
                    LoweredFailure(rank, f.start, f.duration, f"partition:{i}")
                )
    return sorted(lowered.values(), key=lambda e: e.rank)
