"""Deterministic fault injection (chaos engineering for the simulator).

The scaling results this repo reproduces hinge on mechanisms that only
misbehave under adverse conditions — IPC falling back to host staging,
registration-cache churn, stragglers eroding synchronous allreduce.  This
package makes those conditions first-class and reproducible:

* :class:`FaultPlan` — a frozen, JSON-serializable schedule of faults
  (stragglers, compute jitter, link degradation/flapping, message
  drops/delays, rank failures, correlated node/switch failures, network
  partitions, wire/checkpoint corruption) keyed by a root seed;
* :class:`FaultInjector` — the runtime object every layer consults, which
  records each injection and recovery into a :class:`FaultTrace`;
* :class:`Topology` — rank→node→leaf-switch addressing used to compute
  the blast radius of correlated (domain) faults;
* :class:`RetryPolicy` — retransmission semantics (ack timeout,
  exponential backoff, retry budget) used by the MPI transports.

See ``docs/faults.md`` for the schema and the per-layer injection points.
"""

from repro.faults.domains import Topology, lower_domain_faults
from repro.faults.injector import FaultInjector, MessageVerdict, window_active
from repro.faults.plan import (
    CorruptionFault,
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    NodeFailure,
    PartitionFault,
    RankFailure,
    RetryPolicy,
    StragglerFault,
    SwitchFailure,
)
from repro.faults.trace import FaultEvent, FaultTrace

__all__ = [
    "FaultPlan",
    "StragglerFault",
    "JitterFault",
    "LinkFault",
    "MessageFault",
    "RankFailure",
    "NodeFailure",
    "SwitchFailure",
    "PartitionFault",
    "CorruptionFault",
    "RetryPolicy",
    "FaultInjector",
    "MessageVerdict",
    "window_active",
    "Topology",
    "lower_domain_faults",
    "FaultEvent",
    "FaultTrace",
]
