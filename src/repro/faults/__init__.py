"""Deterministic fault injection (chaos engineering for the simulator).

The scaling results this repo reproduces hinge on mechanisms that only
misbehave under adverse conditions — IPC falling back to host staging,
registration-cache churn, stragglers eroding synchronous allreduce.  This
package makes those conditions first-class and reproducible:

* :class:`FaultPlan` — a frozen, JSON-serializable schedule of faults
  (stragglers, compute jitter, link degradation/flapping, message
  drops/delays, rank failures) keyed by a root seed;
* :class:`FaultInjector` — the runtime object every layer consults, which
  records each injection and recovery into a :class:`FaultTrace`;
* :class:`RetryPolicy` — retransmission semantics (ack timeout,
  exponential backoff, retry budget) used by the MPI transports.

See ``docs/faults.md`` for the schema and the per-layer injection points.
"""

from repro.faults.injector import FaultInjector, MessageVerdict
from repro.faults.plan import (
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    RankFailure,
    RetryPolicy,
    StragglerFault,
)
from repro.faults.trace import FaultEvent, FaultTrace

__all__ = [
    "FaultPlan",
    "StragglerFault",
    "JitterFault",
    "LinkFault",
    "MessageFault",
    "RankFailure",
    "RetryPolicy",
    "FaultInjector",
    "MessageVerdict",
    "FaultEvent",
    "FaultTrace",
]
