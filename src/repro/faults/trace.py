"""Ordered, canonically-serializable record of injected faults and
recoveries.

Because the simulation engine is deterministic, the sequence of injector
consultations — and therefore this trace — is a pure function of (plan,
workload).  ``digest()`` hashes the canonical JSON form, giving the
byte-identity invariant the determinism tests assert.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or recovery action."""

    time: float
    kind: str  # e.g. "msg-drop", "msg-retry", "ring-shrink", "link-degraded"
    rank: int | None = None
    src: int | None = None
    dst: int | None = None
    detail: str = ""


@dataclass
class FaultTrace:
    events: list[FaultEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        time: float,
        *,
        rank: int | None = None,
        src: int | None = None,
        dst: int | None = None,
        detail: str = "",
    ) -> FaultEvent:
        event = FaultEvent(time, kind, rank, src, dst, detail)
        self.events.append(event)
        return event

    def by_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return len(self.by_kind(kind))

    def to_json(self) -> str:
        """Canonical serialization: stable key order, repr-exact floats."""
        return json.dumps([asdict(e) for e in self.events], sort_keys=True)

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
