"""Runtime fault injector: the single object every layer consults.

One :class:`FaultInjector` is built from a :class:`~repro.faults.FaultPlan`
and threaded through the stack:

* :class:`~repro.hardware.links.Link` / ``Cluster.path_cost`` ask
  :meth:`link_state` for bandwidth/latency degradation;
* :class:`~repro.mpi.transports.TransportModel.transfer_proc` asks
  :meth:`message_verdict` per transmission attempt (drop / delay);
* the Horovod coordinator and trainer ask :meth:`failure_time` /
  :meth:`failed_ranks` for membership, and :meth:`compute_factor` for
  straggler/jitter slowdown.

Every injected fault and recovery action is recorded into a
:class:`~repro.faults.trace.FaultTrace` and mirrored to optional timeline
and hvprof sinks, so chaos runs are observable post hoc.  All randomness
derives from the plan seed via :func:`~repro.utils.seeding.derive_seed`;
two runs with identical (plan, workload) produce byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    RankFailure,
    StragglerFault,
)
from repro.faults.trace import FaultTrace
from repro.utils.seeding import derive_seed


@dataclass(frozen=True)
class MessageVerdict:
    """Outcome of consulting the injector for one transmission attempt."""

    drop: bool = False
    delay_s: float = 0.0


def _window_active(start: float, duration: float | None, time: float) -> bool:
    if time < start:
        return False
    return duration is None or time < start + duration


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the simulation clock."""

    def __init__(self, plan: FaultPlan, *, timeline=None, hvprof=None):
        self.plan = plan
        self.trace = FaultTrace()
        self.timeline = timeline
        self.hvprof = hvprof
        self._stragglers = plan.of_type(StragglerFault)
        self._jitters = plan.of_type(JitterFault)
        self._links = plan.of_type(LinkFault)
        self._messages = plan.of_type(MessageFault)
        self._failures = {f.rank: f.time for f in plan.of_type(RankFailure)}
        self._failure_specs = {f.rank: f for f in plan.of_type(RankFailure)}
        self._msg_seq = 0
        # transition keys already recorded (one trace event per onset, not
        # one per query)
        self._noted: set[tuple] = set()

    # -- recording --------------------------------------------------------------
    def record(
        self,
        kind: str,
        time: float,
        *,
        rank: int | None = None,
        src: int | None = None,
        dst: int | None = None,
        detail: str = "",
    ) -> None:
        """Append to the trace and mirror to the observability sinks."""
        self.trace.record(kind, time, rank=rank, src=src, dst=dst, detail=detail)
        if self.timeline is not None:
            self.timeline.record(
                f"fault:{kind}", start=time, duration=0.0, detail=detail
            )
        if self.hvprof is not None:
            self.hvprof.record_fault(kind, time, detail=detail)

    def _note(self, key: tuple, kind: str, time: float, **fields) -> None:
        if key in self._noted:
            return
        self._noted.add(key)
        self.record(kind, time, **fields)

    # -- compute (stragglers / jitter) ------------------------------------------
    def compute_factor(self, rank: int, time: float, step: int = 0) -> float:
        """Slowdown multiplier for one rank's compute at (time, step)."""
        factor = 1.0
        for i, f in enumerate(self._stragglers):
            if f.rank != rank:
                continue
            if _window_active(f.start, f.duration, time):
                factor *= f.factor
                self._note(
                    ("straggler", i), "straggler-on", time,
                    rank=rank, detail=f"factor={f.factor:g}",
                )
            elif ("straggler", i) in self._noted:
                self._note(
                    ("straggler-off", i), "straggler-off", time, rank=rank
                )
        for f in self._jitters:
            if f.sigma > 0 and _window_active(f.start, f.duration, time):
                z = abs(
                    float(
                        np.random.default_rng(
                            derive_seed(self.plan.seed, "jitter", rank, step)
                        ).standard_normal()
                    )
                )
                factor *= 1.0 + f.sigma * z
        return factor

    # -- links ------------------------------------------------------------------
    def link_state(self, kind, time: float) -> tuple[float, float]:
        """(bandwidth multiplier, extra latency seconds) for a link class.

        ``kind`` is a :class:`~repro.hardware.links.LinkKind` (or its value
        string).  Flapping faults alternate degraded/healthy half-periods.
        """
        kind_value = getattr(kind, "value", kind)
        bw_factor = 1.0
        extra = 0.0
        for i, f in enumerate(self._links):
            if f.kind is not None and f.kind != kind_value:
                continue
            if not _window_active(f.start, f.duration, time):
                continue
            if f.flap_period_s > 0:
                phase = (time - f.start) % f.flap_period_s
                cycle = int((time - f.start) // f.flap_period_s)
                if phase >= f.flap_period_s / 2:
                    self._note(
                        ("link-up", i, cycle), "link-restored", time,
                        detail=kind_value,
                    )
                    continue
                self._note(
                    ("link-down", i, cycle), "link-degraded", time,
                    detail=f"{kind_value} bw*{f.bandwidth_factor:g} cycle={cycle}",
                )
            else:
                self._note(
                    ("link-down", i), "link-degraded", time,
                    detail=f"{kind_value} bw*{f.bandwidth_factor:g}",
                )
            bw_factor *= f.bandwidth_factor
            extra += f.latency_add_s
        return bw_factor, extra

    # -- messages ---------------------------------------------------------------
    def message_verdict(self, src: int, dst: int, time: float) -> MessageVerdict:
        """Drop/delay decision for one transmission attempt.

        Each consultation advances a sequence counter, so retransmissions
        re-roll the (seeded) drop decision deterministically.
        """
        drop = False
        delay = 0.0
        for f in self._messages:
            if f.src is not None and f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if not _window_active(f.start, f.duration, time):
                continue
            delay += f.delay_s
            if f.drop_prob > 0 and not drop:
                seq = self._msg_seq
                self._msg_seq += 1
                u = float(
                    np.random.default_rng(
                        derive_seed(self.plan.seed, "drop", src, dst, seq)
                    ).random()
                )
                drop = u < f.drop_prob
        if drop:
            self.record("msg-drop", time, src=src, dst=dst)
        elif delay > 0:
            self.record("msg-delay", time, src=src, dst=dst,
                        detail=f"{delay:g}s")
        return MessageVerdict(drop=drop, delay_s=delay)

    # -- rank failures ----------------------------------------------------------
    def failure_time(self, rank: int) -> float | None:
        """When ``rank`` permanently fails, or None if it never does."""
        return self._failures.get(rank)

    def failed_ranks(self, time: float) -> set[int]:
        return {r for r, t in self._failures.items() if t <= time}

    def failure_down_s(self, rank: int) -> float | None:
        """Outage duration for ``rank``'s failure (None: permanent or no
        failure scheduled)."""
        spec = self._failure_specs.get(rank)
        return spec.down_s if spec is not None else None

    @property
    def any_faults(self) -> bool:
        return bool(self.plan.faults)
