"""Runtime fault injector: the single object every layer consults.

One :class:`FaultInjector` is built from a :class:`~repro.faults.FaultPlan`
and threaded through the stack:

* :class:`~repro.hardware.links.Link` / ``Cluster.path_cost`` ask
  :meth:`link_state` for bandwidth/latency degradation;
* :class:`~repro.mpi.transports.TransportModel.transfer_proc` asks
  :meth:`message_verdict` per transmission attempt (drop / delay);
* the Horovod coordinator and trainer ask :meth:`failure_time` /
  :meth:`failed_ranks` for membership, and :meth:`compute_factor` for
  straggler/jitter slowdown.

Every injected fault and recovery action is recorded into a
:class:`~repro.faults.trace.FaultTrace` and mirrored to optional timeline
and hvprof sinks, so chaos runs are observable post hoc.  All randomness
derives from the plan seed via :func:`~repro.utils.seeding.derive_seed`;
two runs with identical (plan, workload) produce byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultPlanError
from repro.faults.plan import (
    DOMAIN_FAULTS,
    CorruptionFault,
    FaultPlan,
    JitterFault,
    LinkFault,
    MessageFault,
    PartitionFault,
    RankFailure,
    StragglerFault,
    SwitchFailure,
)
from repro.faults.trace import FaultTrace
from repro.utils.seeding import derive_seed


@dataclass(frozen=True)
class MessageVerdict:
    """Outcome of consulting the injector for one transmission attempt.

    ``severed=True`` marks a drop caused by a partition or switch outage:
    the path is *gone*, not lossy — every retransmission attempt will
    drop too, so the sender is guaranteed to exhaust its retry ladder.
    """

    drop: bool = False
    delay_s: float = 0.0
    severed: bool = False


def window_active(start: float, duration: float | None, time: float) -> bool:
    """End-exclusive fault-window membership: ``start <= time < start +
    duration`` (``duration=None`` never ends).

    The window is half-open — a fault is active *at* its start instant
    and inactive at exactly ``start + duration``, so back-to-back windows
    ``[a, b)`` and ``[b, c)`` tile the timeline without double-firing and
    a zero-length window is empty (plan validation rejects
    ``duration=0`` for that reason).
    """
    if time < start:
        return False
    return duration is None or time < start + duration


# backwards-compatible alias (pre-dates the public export)
_window_active = window_active


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the simulation clock.

    ``topology`` (a :class:`~repro.faults.domains.Topology`) is required
    when the plan contains domain faults — node/switch failures and
    partitions resolve their blast radius through it.  Plans made of
    per-rank faults only work without one.
    """

    def __init__(
        self, plan: FaultPlan, *, topology=None, timeline=None, hvprof=None
    ):
        self.plan = plan
        self.topology = topology
        self.trace = FaultTrace()
        self.timeline = timeline
        self.hvprof = hvprof
        self._stragglers = plan.of_type(StragglerFault)
        self._jitters = plan.of_type(JitterFault)
        self._links = plan.of_type(LinkFault)
        self._messages = plan.of_type(MessageFault)
        self._partitions = plan.of_type(PartitionFault)
        self._switch_failures = plan.of_type(SwitchFailure)
        corruptions = plan.of_type(CorruptionFault)
        self._wire_corruptions = [c for c in corruptions if c.target == "wire"]
        self._ckpt_corruptions = [
            c for c in corruptions if c.target == "checkpoint"
        ]
        if topology is None:
            if any(isinstance(f, DOMAIN_FAULTS) for f in plan.faults):
                raise FaultPlanError(
                    "plan contains domain faults (node/switch/partition) "
                    "but no topology was given; pass "
                    "FaultInjector(plan, topology=Topology(...))"
                )
            self._lowered = {
                f.rank: f for f in plan.of_type(RankFailure)
            }
            self._failures = {f.rank: f.time for f in plan.of_type(RankFailure)}
            self._domains = {}
        else:
            from repro.faults.domains import lower_domain_faults

            lowered = lower_domain_faults(plan, topology)
            self._lowered = {e.rank: e for e in lowered}
            self._failures = {e.rank: e.time for e in lowered}
            self._domains = {e.rank: e.domain for e in lowered if e.domain}
        self._msg_seq = 0
        self._corrupt_seq = 0
        # transition keys already recorded (one trace event per onset, not
        # one per query)
        self._noted: set[tuple] = set()

    # -- recording --------------------------------------------------------------
    def record(
        self,
        kind: str,
        time: float,
        *,
        rank: int | None = None,
        src: int | None = None,
        dst: int | None = None,
        detail: str = "",
    ) -> None:
        """Append to the trace and mirror to the observability sinks."""
        self.trace.record(kind, time, rank=rank, src=src, dst=dst, detail=detail)
        if self.timeline is not None:
            self.timeline.record(
                f"fault:{kind}", start=time, duration=0.0, detail=detail
            )
        if self.hvprof is not None:
            self.hvprof.record_fault(kind, time, detail=detail)

    def _note(self, key: tuple, kind: str, time: float, **fields) -> None:
        if key in self._noted:
            return
        self._noted.add(key)
        self.record(kind, time, **fields)

    # -- compute (stragglers / jitter) ------------------------------------------
    def compute_factor(self, rank: int, time: float, step: int = 0) -> float:
        """Slowdown multiplier for one rank's compute at (time, step)."""
        factor = 1.0
        for i, f in enumerate(self._stragglers):
            if f.rank != rank:
                continue
            if _window_active(f.start, f.duration, time):
                factor *= f.factor
                self._note(
                    ("straggler", i), "straggler-on", time,
                    rank=rank, detail=f"factor={f.factor:g}",
                )
            elif ("straggler", i) in self._noted:
                self._note(
                    ("straggler-off", i), "straggler-off", time, rank=rank
                )
        for f in self._jitters:
            if f.sigma > 0 and _window_active(f.start, f.duration, time):
                z = abs(
                    float(
                        np.random.default_rng(
                            derive_seed(self.plan.seed, "jitter", rank, step)
                        ).standard_normal()
                    )
                )
                factor *= 1.0 + f.sigma * z
        return factor

    # -- links ------------------------------------------------------------------
    def link_state(self, kind, time: float) -> tuple[float, float]:
        """(bandwidth multiplier, extra latency seconds) for a link class.

        ``kind`` is a :class:`~repro.hardware.links.LinkKind` (or its value
        string).  Flapping faults alternate degraded/healthy half-periods.
        """
        kind_value = getattr(kind, "value", kind)
        bw_factor = 1.0
        extra = 0.0
        for i, f in enumerate(self._links):
            if f.kind is not None and f.kind != kind_value:
                continue
            if not _window_active(f.start, f.duration, time):
                continue
            if f.flap_period_s > 0:
                phase = (time - f.start) % f.flap_period_s
                cycle = int((time - f.start) // f.flap_period_s)
                if phase >= f.flap_period_s / 2:
                    self._note(
                        ("link-up", i, cycle), "link-restored", time,
                        detail=kind_value,
                    )
                    continue
                self._note(
                    ("link-down", i, cycle), "link-degraded", time,
                    detail=f"{kind_value} bw*{f.bandwidth_factor:g} cycle={cycle}",
                )
            else:
                self._note(
                    ("link-down", i), "link-degraded", time,
                    detail=f"{kind_value} bw*{f.bandwidth_factor:g}",
                )
            bw_factor *= f.bandwidth_factor
            extra += f.latency_add_s
        return bw_factor, extra

    # -- severed paths (partitions / switch outages) -----------------------------
    def path_severed(self, src: int, dst: int, time: float) -> bool:
        """True when no fabric path exists between two ranks right now.

        A partition severs every path crossing the cut (the island keeps
        its internal fabric); a dead leaf switch severs every inter-node
        path touching a node behind it.  Same-node pairs ride NVLink and
        are never severed.
        """
        topo = self.topology
        if topo is None or src == dst:
            return False
        src_node = topo.node_of_rank(src)
        dst_node = topo.node_of_rank(dst)
        if src_node == dst_node:
            return False
        for f in self._partitions:
            if not window_active(f.start, f.duration, time):
                continue
            if (src_node in f.nodes) != (dst_node in f.nodes):
                return True
        for f in self._switch_failures:
            if not window_active(f.time, f.down_s, time):
                continue
            behind = set(topo.nodes_behind_switch(f.switch))
            if src_node in behind or dst_node in behind:
                return True
        return False

    # -- messages ---------------------------------------------------------------
    def message_verdict(self, src: int, dst: int, time: float) -> MessageVerdict:
        """Drop/delay decision for one transmission attempt.

        Each consultation advances a sequence counter, so retransmissions
        re-roll the (seeded) drop decision deterministically.  A severed
        path returns a guaranteed drop *without* consuming the sequence
        counter — topology verdicts are deterministic, so they must not
        perturb the seeded stream of probabilistic drops.
        """
        if self.path_severed(src, dst, time):
            self._note(
                ("severed", src, dst), "msg-severed", time, src=src, dst=dst,
                detail="no fabric path (partition/switch outage)",
            )
            return MessageVerdict(drop=True, severed=True)
        drop = False
        delay = 0.0
        for f in self._messages:
            if f.src is not None and f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if not _window_active(f.start, f.duration, time):
                continue
            delay += f.delay_s
            if f.drop_prob > 0 and not drop:
                seq = self._msg_seq
                self._msg_seq += 1
                u = float(
                    np.random.default_rng(
                        derive_seed(self.plan.seed, "drop", src, dst, seq)
                    ).random()
                )
                drop = u < f.drop_prob
        if drop:
            self.record("msg-drop", time, src=src, dst=dst)
        elif delay > 0:
            self.record("msg-delay", time, src=src, dst=dst,
                        detail=f"{delay:g}s")
        return MessageVerdict(drop=drop, delay_s=delay)

    # -- corruption --------------------------------------------------------------
    def corruption_verdict(self, src: int, dst: int, time: float) -> bool:
        """True when this transmission attempt's payload is corrupted.

        Rolled per attempt from the plan seed on a sequence counter
        separate from the drop stream, so corruption plans never perturb
        drop decisions (and vice versa).  Every hit is recorded —
        downstream CRC detection must pair each ``wire-corrupt`` event
        with a ``crc-detected`` one.
        """
        for f in self._wire_corruptions:
            if not window_active(f.start, f.duration, time):
                continue
            seq = self._corrupt_seq
            self._corrupt_seq += 1
            u = float(
                np.random.default_rng(
                    derive_seed(self.plan.seed, "corrupt", src, dst, seq)
                ).random()
            )
            if u < f.prob:
                self.record("wire-corrupt", time, src=src, dst=dst)
                return True
        return False

    def wire_corruption_active(self, time: float) -> bool:
        """True while any wire-corruption window covers ``time``.

        Steady-state extrapolation must not skip engine steps inside an
        active window — an extrapolated step sends no messages, so the
        corruption (and its CRC retransmit cost) would silently vanish.
        """
        return any(
            window_active(f.start, f.duration, time)
            for f in self._wire_corruptions
        )

    def checkpoint_corrupt(self, save_index: int, time: float) -> bool:
        """True when snapshot number ``save_index`` is written corrupt
        (torn write / bit rot caught later by checksum verification)."""
        for f in self._ckpt_corruptions:
            if not window_active(f.start, f.duration, time):
                continue
            u = float(
                np.random.default_rng(
                    derive_seed(self.plan.seed, "ckpt-corrupt", save_index)
                ).random()
            )
            if u < f.prob:
                self.record(
                    "ckpt-corrupt", time, detail=f"save_index={save_index}"
                )
                return True
        return False

    # -- rank failures ----------------------------------------------------------
    def failure_time(self, rank: int) -> float | None:
        """When ``rank`` permanently fails, or None if it never does."""
        return self._failures.get(rank)

    def failed_ranks(self, time: float) -> set[int]:
        return {r for r, t in self._failures.items() if t <= time}

    def failure_down_s(self, rank: int) -> float | None:
        """Outage duration for ``rank``'s failure (None: permanent or no
        failure scheduled)."""
        spec = self._lowered.get(rank)
        return spec.down_s if spec is not None else None

    def domain_of(self, rank: int) -> str:
        """Failure-domain label of ``rank``'s scheduled failure
        (``"node:2"``, ``"switch:1"``, ``"partition:0"``) or ``""`` for
        an independent failure / no failure at all."""
        return self._domains.get(rank, "")

    @property
    def any_faults(self) -> bool:
        return bool(self.plan.faults)
