"""CUDA inter-process communication handles.

Mirrors the three-step protocol in the paper's §II-A:

1. owner calls ``get_ipc_handle`` (``cuIpcGetMemHandle``) on its buffer;
2. the handle crosses process boundaries via host communication (free in
   simulation);
3. the peer calls ``open_ipc_handle`` (``cuIpcOpenMemHandle``), mapping the
   buffer so it can ``cuMemcpy`` directly.

Whether step 3 is legal depends on runtime version and visibility — that
check lives in :meth:`repro.cuda.runtime.CudaRuntime.can_open_ipc`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.memory import DeviceAllocation
from repro.hardware.node import DeviceRef


@dataclass(frozen=True)
class IpcMemHandle:
    """Opaque handle naming a device buffer owned by another process."""

    allocation_id: int
    device: DeviceRef
    nbytes: int
    owner_pid: int

    @classmethod
    def for_allocation(cls, alloc: DeviceAllocation) -> "IpcMemHandle":
        return cls(
            allocation_id=alloc.buffer_id,
            device=alloc.device,
            nbytes=alloc.nbytes,
            owner_pid=alloc.owner_pid,
        )
