"""CUDA streams: in-order work queues per device.

In analytic mode we only need the stream's *busy-until* horizon: enqueueing
work of duration ``d`` at time ``t`` completes at ``max(t, busy_until) + d``.
This reproduces serialization of kernels and copies on one stream without
event-engine overhead, and is exact for in-order queues.
"""

from __future__ import annotations

import itertools

from repro.hardware.node import DeviceRef


class Stream:
    """In-order execution queue attached to one device."""

    _ids = itertools.count()

    def __init__(self, device: DeviceRef, name: str = ""):
        self.device = device
        self.stream_id = next(self._ids)
        self.name = name or f"stream{self.stream_id}"
        self.busy_until = 0.0
        self.work_items = 0
        self.busy_time = 0.0

    def enqueue(self, now: float, duration: float) -> float:
        """Enqueue work of ``duration`` at wall-time ``now``; return finish time."""
        if duration < 0:
            raise ValueError(f"negative work duration {duration}")
        start = max(now, self.busy_until)
        self.busy_until = start + duration
        self.work_items += 1
        self.busy_time += duration
        return self.busy_until

    def synchronize(self, now: float) -> float:
        """Return the time at which all enqueued work has drained."""
        return max(now, self.busy_until)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.work_items = 0
        self.busy_time = 0.0

    def __repr__(self) -> str:
        return f"<Stream {self.name!r} on {self.device} busy_until={self.busy_until:.6f}>"
