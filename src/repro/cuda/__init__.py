"""Simulated CUDA runtime.

Models exactly the runtime semantics the paper's optimization exploits:

* ``CUDA_VISIBLE_DEVICES``-style visibility masks that remap logical device
  ordinals per process (:mod:`repro.cuda.env`);
* per-device contexts whose creation consumes real HBM — the "overhead
  kernels" of the paper's Fig. 6a (:mod:`repro.cuda.runtime`);
* CUDA IPC handles with the version-dependent visibility rule: before CUDA
  10.1 an IPC mapping required both devices in the process's visible set,
  from 10.1 onwards it does not (:mod:`repro.cuda.ipc`);
* ``cudaMemcpy`` costed on the simulated NVLink/X-Bus topology and kernel
  launches costed by a roofline model (:mod:`repro.cuda.kernels`).
"""

from repro.cuda.env import VisibilityMask
from repro.cuda.runtime import CudaContext, CudaRuntime, CudaVersion
from repro.cuda.memory import DeviceAllocation
from repro.cuda.ipc import IpcMemHandle
from repro.cuda.stream import Stream
from repro.cuda.kernels import KernelCostModel, KernelLaunch

__all__ = [
    "VisibilityMask",
    "CudaRuntime",
    "CudaContext",
    "CudaVersion",
    "DeviceAllocation",
    "IpcMemHandle",
    "Stream",
    "KernelCostModel",
    "KernelLaunch",
]
