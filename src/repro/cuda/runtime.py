"""Simulated CUDA runtime and per-process contexts.

The two behaviours from the paper's §III-C live here:

* **Overhead kernels (Fig. 6a).**  Creating a context on a device consumes
  ``GpuSpec.context_overhead_bytes`` of HBM.  Undisciplined Python libraries
  "aggressively allocate GPU memory on all available devices" — modelled by
  :meth:`CudaContext.touch_all_visible`, which instantiates a context on
  every device in the process's mask.  With 4 processes per node each seeing
  4 GPUs, every GPU carries 4 contexts instead of 1.

* **IPC visibility rule (Fig. 6b / §III-C).**  Before CUDA 10.1, a process
  could only open an IPC handle for a device *in its own visible set*; i.e.
  ``CUDA_VISIBLE_DEVICES=local_rank`` made IPC between distinct GPUs
  impossible and forced MPI to stage through host memory.  From 10.1 the
  restriction is lifted: :meth:`CudaRuntime.can_open_ipc` implements both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    CudaError,
    CudaInvalidDeviceError,
    CudaIpcError,
    CudaOutOfMemoryError,
)
from repro.cuda.env import VisibilityMask
from repro.cuda.ipc import IpcMemHandle
from repro.cuda.kernels import KernelCostModel
from repro.cuda.memory import DeviceAllocation
from repro.cuda.stream import Stream
from repro.hardware.cluster import Cluster
from repro.hardware.memory import PoolExhaustedError
from repro.hardware.node import DeviceRef

#: one-time cost of cuIpcOpenMemHandle (cached per buffer by transports)
IPC_OPEN_OVERHEAD_S = 35e-6


@dataclass(frozen=True, order=True)
class CudaVersion:
    """CUDA toolkit/driver version, e.g. ``CudaVersion(10, 2)``."""

    major: int
    minor: int = 0

    @classmethod
    def parse(cls, text: str) -> "CudaVersion":
        parts = text.strip().split(".")
        try:
            major = int(parts[0])
            minor = int(parts[1]) if len(parts) > 1 else 0
        except (ValueError, IndexError) as exc:
            raise CudaError(f"bad CUDA version string {text!r}") from exc
        return cls(major, minor)

    @property
    def supports_cross_visibility_ipc(self) -> bool:
        """CUDA >= 10.1: IPC works even if the peer device is masked out."""
        return (self.major, self.minor) >= (10, 1)

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"


#: the paper's software stack uses CUDA 10.2
DEFAULT_CUDA_VERSION = CudaVersion(10, 2)


class CudaRuntime:
    """Node-level runtime: owns physical devices and the IPC legality rule."""

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        version: CudaVersion = DEFAULT_CUDA_VERSION,
    ):
        self.cluster = cluster
        self.node = cluster.nodes[node_id]
        self.node_id = node_id
        self.version = version
        self.kernel_model = KernelCostModel(cluster.spec.node.gpu)
        self._contexts: list["CudaContext"] = []

    @property
    def physical_device_count(self) -> int:
        return len(self.node.gpu_refs)

    def physical_ref(self, physical: int) -> DeviceRef:
        if not 0 <= physical < self.physical_device_count:
            raise CudaInvalidDeviceError(
                f"physical device {physical} out of range on node {self.node_id}"
            )
        return self.node.gpu_refs[physical]

    def create_context(self, pid: int, mask: VisibilityMask) -> "CudaContext":
        for physical in mask.physical:
            if physical >= self.physical_device_count:
                raise CudaInvalidDeviceError(
                    f"mask {mask} references physical device {physical}, node has "
                    f"{self.physical_device_count}"
                )
        ctx = CudaContext(self, pid, mask)
        self._contexts.append(ctx)
        return ctx

    def can_open_ipc(self, opener: "CudaContext", handle: IpcMemHandle) -> bool:
        """May ``opener`` map the buffer named by ``handle``?"""
        if handle.device.node != self.node_id:
            return False  # IPC is intra-node only
        if handle.owner_pid == opener.pid:
            return False  # IPC is for *inter*-process sharing
        if self.version.supports_cross_visibility_ipc:
            return True
        # Legacy rule: the target device must be visible to the opener.
        return opener.mask.sees(handle.device.index)

    def __repr__(self) -> str:
        return f"<CudaRuntime node={self.node_id} CUDA {self.version}>"


class CudaContext:
    """Per-process view of a node's GPUs under a visibility mask."""

    _pids = itertools.count(1)

    def __init__(self, runtime: CudaRuntime, pid: int, mask: VisibilityMask):
        self.runtime = runtime
        self.pid = pid
        self.mask = mask
        self._current_logical: Optional[int] = 0 if mask.count else None
        # physical ordinal -> HBM block for this process's context
        self._context_blocks: dict[int, object] = {}
        self._live: set[DeviceAllocation] = set()
        self._opened_handles: set[int] = set()
        self._streams: dict[int, Stream] = {}

    # -- device selection --------------------------------------------------
    def device_count(self) -> int:
        return self.mask.count

    def set_device(self, logical: int) -> None:
        self.mask.to_physical(logical)  # validates
        self._current_logical = logical

    @property
    def current_physical(self) -> int:
        if self._current_logical is None:
            raise CudaInvalidDeviceError(
                f"process {self.pid} has no visible devices (mask={self.mask})"
            )
        return self.mask.to_physical(self._current_logical)

    @property
    def current_ref(self) -> DeviceRef:
        return self.runtime.physical_ref(self.current_physical)

    def default_stream(self) -> Stream:
        phys = self.current_physical
        if phys not in self._streams:
            self._streams[phys] = Stream(
                self.current_ref, name=f"pid{self.pid}:dev{phys}:default"
            )
        return self._streams[phys]

    # -- context creation (overhead kernels) --------------------------------
    def ensure_context(self, physical: int) -> None:
        """Create the CUDA context on a device, consuming HBM (Fig. 6a)."""
        if physical in self._context_blocks:
            return
        ref = self.runtime.physical_ref(physical)
        pool = self.runtime.node.gpu_memory[ref]
        try:
            block = pool.alloc(
                self.runtime.cluster.spec.node.gpu.context_overhead_bytes,
                tag=f"cuda-context:pid{self.pid}",
            )
        except PoolExhaustedError as exc:
            raise CudaOutOfMemoryError(str(exc)) from exc
        self._context_blocks[physical] = block

    def touch_all_visible(self) -> int:
        """Aggressive-library behaviour: spawn a context on *every* visible GPU.

        Returns the number of overhead contexts created.  This is what
        PyTorch/Horovod do absent ``CUDA_VISIBLE_DEVICES`` discipline and is
        the memory-pressure mechanism of the paper's Fig. 6a.
        """
        created = 0
        for physical in self.mask.physical:
            if physical not in self._context_blocks:
                self.ensure_context(physical)
                created += 1
        return created

    def context_device_ordinals(self) -> tuple[int, ...]:
        return tuple(sorted(self._context_blocks))

    # -- memory --------------------------------------------------------------
    def malloc(self, nbytes: int, tag: str = "tensor") -> DeviceAllocation:
        physical = self.current_physical
        self.ensure_context(physical)
        ref = self.runtime.physical_ref(physical)
        pool = self.runtime.node.gpu_memory[ref]
        try:
            block = pool.alloc(nbytes, tag=f"{tag}:pid{self.pid}")
        except PoolExhaustedError as exc:
            raise CudaOutOfMemoryError(str(exc)) from exc
        alloc = DeviceAllocation(
            device=ref, nbytes=nbytes, tag=tag, block=block, owner_pid=self.pid
        )
        self._live.add(alloc)
        return alloc

    def free(self, alloc: DeviceAllocation) -> None:
        if alloc.freed or alloc not in self._live:
            raise CudaError(f"invalid free of {alloc!r} by pid {self.pid}")
        pool = self.runtime.node.gpu_memory[alloc.device]
        pool.free_block(alloc.block)
        alloc.freed = True
        self._live.discard(alloc)

    def free_device_memory(self) -> int:
        """Bytes still allocatable on the current device."""
        return self.runtime.node.gpu_memory[self.current_ref].free

    # -- IPC -------------------------------------------------------------------
    def get_ipc_handle(self, alloc: DeviceAllocation) -> IpcMemHandle:
        if alloc.owner_pid != self.pid:
            raise CudaIpcError(
                f"pid {self.pid} cannot export buffer owned by pid {alloc.owner_pid}"
            )
        if alloc.freed:
            raise CudaIpcError("cannot export a freed buffer")
        return IpcMemHandle.for_allocation(alloc)

    def open_ipc_handle(self, handle: IpcMemHandle) -> IpcMemHandle:
        if not self.runtime.can_open_ipc(self, handle):
            raise CudaIpcError(
                f"pid {self.pid} (mask={self.mask}, CUDA {self.runtime.version}) "
                f"cannot open IPC handle on {handle.device}"
            )
        self._opened_handles.add(handle.allocation_id)
        return handle

    def has_open_handle(self, handle: IpcMemHandle) -> bool:
        return handle.allocation_id in self._opened_handles

    # -- copies ------------------------------------------------------------------
    def memcpy_time(self, src: DeviceRef, dst: DeviceRef, nbytes: int) -> float:
        """Uncontended duration of a cudaMemcpy between two device refs."""
        return self.runtime.cluster.path_cost(src, dst, nbytes)

    def d2h_time(self, nbytes: int) -> float:
        """Device-to-host copy time for the current device."""
        gpu = self.current_ref
        node = self.runtime.node
        cpu = node.cpu_refs[node.socket_of_gpu(gpu.index)]
        return self.runtime.cluster.path_cost(gpu, cpu, nbytes)

    def h2d_time(self, nbytes: int) -> float:
        return self.d2h_time(nbytes)  # symmetric links

    # -- teardown -------------------------------------------------------------
    def destroy(self) -> None:
        """Release all live allocations and contexts (process exit)."""
        for alloc in list(self._live):
            self.free(alloc)
        for physical, block in self._context_blocks.items():
            ref = self.runtime.physical_ref(physical)
            self.runtime.node.gpu_memory[ref].free_block(block)
        self._context_blocks.clear()

    def __repr__(self) -> str:
        return f"<CudaContext pid={self.pid} mask={self.mask} node={self.runtime.node_id}>"
