"""Device-visibility masks (``CUDA_VISIBLE_DEVICES`` semantics).

A mask maps *logical* device ordinals (what the process sees) to *physical*
ordinals on the node.  ``CUDA_VISIBLE_DEVICES=2,0`` gives a process two
logical devices where logical 0 is physical 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CudaInvalidDeviceError, ConfigError


@dataclass(frozen=True)
class VisibilityMask:
    """An ordered subset of a node's physical GPUs."""

    physical: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.physical)) != len(self.physical):
            raise ConfigError(f"duplicate device in visibility mask {self.physical}")
        if any(p < 0 for p in self.physical):
            raise ConfigError(f"negative device ordinal in mask {self.physical}")

    @classmethod
    def parse(cls, text: str) -> "VisibilityMask":
        """Parse a ``CUDA_VISIBLE_DEVICES`` string like ``"2,0,3"``."""
        text = text.strip()
        if not text:
            return cls(())
        try:
            ordinals = tuple(int(tok) for tok in text.split(","))
        except ValueError as exc:
            raise ConfigError(f"bad visibility string {text!r}") from exc
        return cls(ordinals)

    @classmethod
    def all_devices(cls, count: int) -> "VisibilityMask":
        return cls(tuple(range(count)))

    @classmethod
    def single(cls, physical: int) -> "VisibilityMask":
        return cls((physical,))

    @property
    def count(self) -> int:
        return len(self.physical)

    def to_physical(self, logical: int) -> int:
        if not 0 <= logical < len(self.physical):
            raise CudaInvalidDeviceError(
                f"logical device {logical} out of range; mask exposes "
                f"{len(self.physical)} device(s)"
            )
        return self.physical[logical]

    def sees(self, physical: int) -> bool:
        return physical in self.physical

    def __str__(self) -> str:
        return ",".join(str(p) for p in self.physical)
