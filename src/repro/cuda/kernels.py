"""Roofline kernel cost model.

Kernel duration is the max of the compute-bound and memory-bound estimates
plus a fixed launch overhead:

``t = overhead + max(flops / sustained_flops, bytes / hbm_bandwidth)``

``sustained_flops`` is the GPU's peak derated by ``sustained_efficiency``
and further by a per-launch ``utilization`` in [0, 1] supplied by the model
costing layer (small batches under-fill the SMs; see Fig. 9's low-batch
regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cost import FLOAT32_BYTES, reduce_elements
from repro.errors import ConfigError
from repro.hardware.specs import GpuSpec


@dataclass(frozen=True)
class KernelLaunch:
    """Work description for one kernel."""

    name: str
    flops: float
    bytes_accessed: float
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_accessed < 0:
            raise ConfigError(f"kernel {self.name!r} has negative work")
        if not 0 < self.utilization <= 1:
            raise ConfigError(
                f"kernel {self.name!r} utilization must be in (0,1], got {self.utilization}"
            )


class KernelCostModel:
    """Maps :class:`KernelLaunch` descriptions to durations on a GPU."""

    def __init__(self, gpu: GpuSpec):
        self.gpu = gpu

    def duration(self, launch: KernelLaunch) -> float:
        effective_flops = self.gpu.sustained_fp32_flops * launch.utilization
        compute_bound = launch.flops / effective_flops if launch.flops else 0.0
        # Memory-bound side does not scale with occupancy the same way;
        # assume bandwidth is achievable at any utilization we model.
        memory_bound = (
            launch.bytes_accessed / self.gpu.hbm_bandwidth if launch.bytes_accessed else 0.0
        )
        return self.gpu.kernel_launch_overhead_s + max(compute_bound, memory_bound)

    def device_reduce_time(
        self, nbytes: int, dtype_bytes: int = FLOAT32_BYTES
    ) -> float:
        """Elementwise sum of two device buffers (used by IPC allreduce)."""
        elements = reduce_elements(nbytes, dtype_bytes)
        # 1 FLOP per element; 3 memory ops per element (2 loads, 1 store).
        launch = KernelLaunch("reduce", flops=elements, bytes_accessed=3 * nbytes)
        return self.duration(launch)
