"""Device memory allocations (``cudaMalloc`` handles)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.hardware.memory import MemoryBlock
from repro.hardware.node import DeviceRef


@dataclass
class DeviceAllocation:
    """A live device buffer: physical location plus backing pool block.

    ``buffer_id`` identifies the *logical* buffer for registration-cache
    keying: reallocating at the same simulated address is modelled by reusing
    an allocation object, matching how MPI registration caches key on
    (address, length) in reality.
    """

    _ids = itertools.count(1)

    device: DeviceRef
    nbytes: int
    tag: str
    block: MemoryBlock
    owner_pid: int
    buffer_id: int = field(default_factory=lambda: next(DeviceAllocation._ids))
    freed: bool = False

    def __hash__(self) -> int:
        return hash(self.buffer_id)

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return (
            f"<DeviceAllocation #{self.buffer_id} {self.nbytes}B on {self.device} "
            f"({self.tag}, {state})>"
        )
