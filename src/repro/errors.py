"""Exception hierarchy for the ``repro`` package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch simulation-level failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """Invalid user-supplied configuration (bad parameter values, etc.)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class HardwareError(ReproError):
    """Hardware-model violation (unknown device, bad topology, ...)."""


class CudaError(HardwareError):
    """Simulated CUDA runtime error (mirrors ``cudaError_t`` failures)."""


class CudaOutOfMemoryError(CudaError):
    """Device memory allocation failed (``cudaErrorMemoryAllocation``)."""


class CudaInvalidDeviceError(CudaError):
    """Device ordinal is invalid or not visible to the calling context."""


class CudaIpcError(CudaError):
    """CUDA IPC handle could not be created or opened."""


class FaultError(ReproError):
    """Base class for errors surfaced by the fault-injection subsystem."""


class FaultPlanError(FaultError):
    """A :class:`~repro.faults.FaultPlan` is malformed or inconsistent."""


class RankFailedError(FaultError):
    """A rank failed and the resilience policy does not allow recovery."""


class CheckpointError(FaultError):
    """No usable checkpoint: missing, corrupt, or torn beyond retention."""


class MpiError(ReproError):
    """Simulated MPI error (mirrors ``MPI_ERR_*``)."""


class MessageDroppedError(MpiError):
    """A message was lost in transit (injected fault, no retry budget)."""


class MpiTimeoutError(MpiError):
    """A communication operation exhausted its retry/timeout budget."""


class MpiTruncateError(MpiError):
    """Receive buffer is smaller than the incoming message."""


class MpiRankError(MpiError):
    """Rank out of range for the communicator."""


class NcclError(ReproError):
    """Simulated NCCL error."""


class CommError(ReproError):
    """Backend-agnostic communication layer error (``repro.comm``)."""


class HorovodError(ReproError):
    """Horovod middleware error (mismatched submissions, bad state, ...)."""


class TensorError(ReproError):
    """DL-framework tensor/autograd error."""


class ShapeError(TensorError):
    """Operands have incompatible shapes."""


class GradError(TensorError):
    """Autograd misuse (backward on non-scalar, double backward, ...)."""


class DataError(ReproError):
    """Data-pipeline error (bad patch size, empty dataset, ...)."""
