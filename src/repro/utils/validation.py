"""Tiny argument-validation helpers used across configuration objects."""

from __future__ import annotations

from typing import Container, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigError(f"{name} must be a power of two, got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Container[T]) -> T:
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
