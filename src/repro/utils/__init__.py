"""Shared utilities: units, seeding, tables, validation."""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    format_bytes,
    format_rate,
    format_time,
    parse_bytes,
)
from repro.utils.seeding import SeedSequenceFactory, derive_seed
from repro.utils.tables import TextTable
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_power_of_two,
    check_in,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_rate",
    "format_time",
    "parse_bytes",
    "SeedSequenceFactory",
    "derive_seed",
    "TextTable",
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in",
]
