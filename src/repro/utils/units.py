"""Byte/time/rate unit helpers.

Networking literature mixes decimal (MB) and binary (MiB) units; the paper's
message-size bins ("16 MB - 32 MB") follow MPI convention and are binary.
We expose both and keep all internal accounting in plain bytes (int) and
seconds (float).
"""

from __future__ import annotations

from repro.errors import ConfigError

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KB = 1000
MB = 1000**2
GB = 1000**3

_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "k": KIB,
    "m": MIB,
    "g": GIB,
}


def parse_bytes(text: str | int | float) -> int:
    """Parse a human byte count like ``"64MiB"`` or ``"128 KB"`` into bytes.

    Bare ``K``/``M``/``G`` suffixes are binary, matching MPI tuning-variable
    convention (e.g. ``MV2_IBA_EAGER_THRESHOLD=128K``).
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"byte count must be non-negative, got {text}")
        return int(text)
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    if idx == 0:
        raise ConfigError(f"cannot parse byte count {text!r}")
    number, suffix = s[:idx], s[idx:]
    if suffix and suffix not in _SUFFIXES:
        raise ConfigError(f"unknown byte suffix {suffix!r} in {text!r}")
    return int(float(number) * _SUFFIXES.get(suffix, 1))


def format_bytes(nbytes: float, *, binary: bool = True) -> str:
    """Render a byte count with an adaptive unit (binary by default)."""
    if nbytes < 0:
        return "-" + format_bytes(-nbytes, binary=binary)
    base = 1024.0 if binary else 1000.0
    units = ["B", "KiB", "MiB", "GiB", "TiB"] if binary else ["B", "KB", "MB", "GB", "TB"]
    value = float(nbytes)
    for unit in units:
        if value < base or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= base
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (ns..s)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal GB/s (networking convention)."""
    return f"{bytes_per_second / GB:.2f} GB/s"
