"""Deterministic seed derivation.

Every stochastic component (data generator, compute-jitter model, sampler)
draws its own :class:`numpy.random.Generator` from a root seed plus a string
key, so simulations are reproducible and adding a new consumer never
perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *keys: str | int) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a key path."""
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for key in keys:
        h.update(b"/")
        h.update(str(key).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


class SeedSequenceFactory:
    """Hands out independent RNGs keyed by name.

    >>> f = SeedSequenceFactory(1234)
    >>> a = f.generator("data")
    >>> b = f.generator("jitter", 3)
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def seed(self, *keys: str | int) -> int:
        return derive_seed(self.root_seed, *keys)

    def generator(self, *keys: str | int) -> np.random.Generator:
        return np.random.default_rng(self.seed(*keys))
