"""Minimal fixed-width text tables for benchmark/report output."""

from __future__ import annotations

from typing import Iterable, Sequence


class TextTable:
    """Accumulates rows and renders an aligned ASCII table.

    Used by hvprof reports and every benchmark harness so the printed
    output mirrors the paper's tables (e.g. Table I).
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_render(c) for c in cells])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
