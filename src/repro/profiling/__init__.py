"""hvprof: the Horovod/MPI communication profiler the paper relies on.

Reimplements the tool from the paper's reference [9]: it attaches to the
communication backend (framework- and backend-agnostic — any communicator
exposing the observer hook), buckets every collective by message size, and
reports per-bucket counts and total times.  The outputs regenerate the
paper's Fig. 14 and Table I.
"""

from repro.profiling.bins import PAPER_BINS, SizeBin, bin_for
from repro.profiling.hvprof import FaultRecord, Hvprof
from repro.profiling.report import comparison_table, improvement_summary
from repro.profiling.trace_export import (
    TraceEvent,
    chrome_trace,
    hvprof_trace_events,
    write_chrome_trace,
)

__all__ = [
    "SizeBin",
    "PAPER_BINS",
    "bin_for",
    "Hvprof",
    "FaultRecord",
    "comparison_table",
    "improvement_summary",
    "TraceEvent",
    "chrome_trace",
    "hvprof_trace_events",
    "write_chrome_trace",
]
